"""TinyC source motifs for the synthetic SPEC workloads.

The paper's Tables 1-3 are distributions over source-level features:
C1-violation patterns (UC/DC/MF/SU/NF/K1/K2), indirect branches, and
indirect-branch targets.  Each generator below emits a self-contained
TinyC fragment that contributes an *exact, analyzer-verified* number of
instances of one pattern, plus driver functions (``<prefix>_run``) so
the emitted code actually executes in the benchmark — nothing here is
dead filler.

The per-benchmark builders in :mod:`repro.workloads.spec` compose these
with a handwritten compute kernel to match the paper's per-benchmark
counts (scaled where the paper's numbers are in the thousands; see
EXPERIMENTS.md for the scaling table).
"""

from __future__ import annotations

from typing import List


def gen_dispatch(prefix: str, n_funcs: int, n_sigs: int = 3,
                 calls_per_run: int = 4) -> str:
    """``n_funcs`` small address-taken functions spread over ``n_sigs``
    distinct signatures, dispatched through per-signature tables.

    Contributes: ``n_funcs`` returns (IBs), ``n_sigs`` indirect calls
    (IBs), ``n_funcs`` AT entries (IBTs), and — because the signatures
    differ — ``n_sigs`` separate icall equivalence classes.
    """
    sigs = [
        ("long", ["long"], "x + {k}"),
        ("long", ["long", "long"], "x * y + {k}"),
        ("long", ["long", "long", "long"], "x + y * z - {k}"),
        ("int", ["int"], "x * 2 + {k}"),
        ("int", ["int", "int"], "(x ^ y) + {k}"),
        ("long", ["long", "int"], "x - y + {k}"),
    ][:max(1, min(n_sigs, 6))]
    out: List[str] = []
    tables: List[str] = []
    params = "xyzw"
    by_sig: List[List[str]] = [[] for _ in sigs]
    for index in range(n_funcs):
        sig_index = index % len(sigs)
        ret, ptypes, body = sigs[sig_index]
        name = f"{prefix}_op{index}"
        by_sig[sig_index].append(name)
        arglist = ", ".join(f"{t} {params[i]}"
                            for i, t in enumerate(ptypes))
        expr = body.format(k=index + 1)
        # Guard against referencing params the signature lacks.
        for missing in params[len(ptypes):]:
            expr = expr.replace(missing, "1")
        out.append(f"{ret} {name}({arglist}) {{ return {expr}; }}")
    for sig_index, (ret, ptypes, _) in enumerate(sigs):
        names = by_sig[sig_index]
        if not names:
            continue
        ptr = f"{ret} (*{prefix}_tab{sig_index}[{len(names)}])" \
              f"({', '.join(ptypes)})"
        tables.append(f"{ptr} = {{{', '.join(names)}}};")
    out.extend(tables)

    calls = []
    for sig_index, (ret, ptypes, _) in enumerate(sigs):
        names = by_sig[sig_index]
        if not names:
            continue
        args = ", ".join(["(%s)(seed + %d)" % (t, j)
                          for j, t in enumerate(ptypes)])
        calls.append(
            f"    for (i = 0; i < {len(names)}; i++) {{\n"
            f"        acc += (long){prefix}_tab{sig_index}"
            f"[i % {len(names)}]({args});\n"
            f"    }}")
    body = "\n".join(calls * max(1, calls_per_run // len(sigs) or 1))
    out.append(
        f"long {prefix}_run(long seed) {{\n"
        f"    long acc = 0;\n    int i;\n{body}\n"
        f"    acc += {prefix}_tails(seed);\n    return acc;\n}}")

    # Tail-call wrappers over the unary-signature table: ``return f(x)``
    # compiles to a jump under x64 (LLVM's tail-call optimization),
    # which merges return equivalence classes — the reason Table 3
    # shows fewer EQCs on x86-64 than x86-32.
    unary = by_sig[0]
    n_wrappers = max(2, len(unary) // 2)
    for w in range(n_wrappers):
        callee = unary[w % len(unary)]
        out.append(f"long {prefix}_tail{w}(long x) "
                   f"{{ return {callee}(x + {w}); }}")
    out.append(
        f"long {prefix}_tailchain(long x) {{\n"
        f"    return {prefix}_tab0[x % {len(unary)}](x);   /* indirect "
        f"tail call */\n}}")
    tail_calls = "\n".join(
        f"    acc += {prefix}_tail{w}(seed + {w});"
        for w in range(n_wrappers))
    out.append(
        f"long {prefix}_tails(long seed) {{\n    long acc = 0;\n"
        f"{tail_calls}\n    acc += {prefix}_tailchain(seed);\n"
        f"    return acc;\n}}")
    return "\n".join(out) + "\n"


def gen_switches(prefix: str, n_switches: int, n_cases: int = 6) -> str:
    """``n_switches`` dense-switch functions (jump-table indirect jumps)."""
    out: List[str] = []
    for index in range(n_switches):
        cases = "\n".join(
            f"        case {c}: return {index + 1} * {c + 2};"
            for c in range(n_cases))
        out.append(
            f"int {prefix}_sw{index}(int v) {{\n"
            f"    switch (v) {{\n{cases}\n"
            f"        default: return -1;\n    }}\n}}")
    loops = "\n".join(
        f"    for (i = 0; i < {n_cases + 2}; i++) "
        f"{{ acc += {prefix}_sw{index}(i); }}"
        for index in range(n_switches))
    out.append(
        f"long {prefix}_swrun(void) {{\n"
        f"    long acc = 0;\n    int i;\n{loops}\n    return acc;\n}}")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# C1-violation motifs.  Each site is one analyzer-classified cast.
# ---------------------------------------------------------------------------


def gen_uc(prefix: str, n: int) -> str:
    """``n`` Upcast (UC) sites: concrete -> abstract physical supertype."""
    out = [
        f"typedef struct {prefix}_abase {{",
        f"    void (*vop)(void);",
        f"    long rc;",
        f"}} {prefix}_abase;",
        f"typedef struct {prefix}_aconc {{",
        f"    void (*vop)(void);",
        f"    long rc;",
        f"    long extra;",
        f"}} {prefix}_aconc;",
        f"void {prefix}_vnop(void) {{ }}",
        f"long {prefix}_touch_base({prefix}_abase *b) {{ return b->rc; }}",
    ]
    lines = []
    for index in range(n):
        lines.append(f"    c.rc = {index};")
        lines.append(f"    acc += {prefix}_touch_base"
                     f"(({prefix}_abase *)&c);   /* UC */")
    out.append(
        f"long {prefix}_uc_run(void) {{\n"
        f"    {prefix}_aconc c;\n    long acc = 0;\n"
        f"    c.vop = {prefix}_vnop;\n    c.extra = 7;\n"
        + "\n".join(lines) + "\n    return acc;\n}}".replace("}}", "}"))
    return "\n".join(out) + "\n"


def gen_dc(prefix: str, n: int) -> str:
    """``n`` safe Downcast (DC) sites: tagged abstract -> concrete."""
    out = [
        f"typedef struct {prefix}_tbase {{",
        f"    int tag;",
        f"    void (*top)(void);",
        f"}} {prefix}_tbase;",
        f"typedef struct {prefix}_tconc {{",
        f"    int tag;",
        f"    void (*top)(void);",
        f"    long payload;",
        f"}} {prefix}_tconc;",
        f"void {prefix}_tnop(void) {{ }}",
    ]
    lines = []
    for index in range(n):
        lines.append(
            f"    if (b->tag == 1) {{ acc += "
            f"(({prefix}_tconc *)b)->payload + {index}; }}   /* DC */")
    out.append(
        f"long {prefix}_dc_run(void) {{\n"
        f"    {prefix}_tconc c;\n    {prefix}_tbase *b;\n    long acc = 0;\n"
        f"    c.tag = 1;\n    c.top = {prefix}_tnop;\n    c.payload = 3;\n"
        f"    b = ({prefix}_tbase *)&c;   /* UC pairing the downcasts */\n"
        + "\n".join(lines) + "\n    return acc;\n}")
    return "\n".join(out) + "\n"


def gen_mf(prefix: str, n_alloc: int, n_free: int = 0) -> str:
    """``n_alloc`` malloc-result casts + ``n_free`` free-argument casts.

    The allocated struct carries a function-pointer field, so the
    ``void *`` conversions involve function-pointer types (MF sites).
    """
    out = [
        f"typedef struct {prefix}_obj {{",
        f"    long value;",
        f"    void (*dtor)(void *);",
        f"}} {prefix}_obj;",
        f"void {prefix}_dtor(void *p) {{ }}",
    ]
    lines = [f"    {prefix}_obj *o;"]
    frees_left = n_free
    for index in range(n_alloc):
        lines.append(f"    o = ({prefix}_obj *)malloc(sizeof({prefix}_obj))"
                     f";   /* MF */")
        lines.append(f"    o->value = {index};")
        lines.append(f"    o->dtor = {prefix}_dtor;")
        lines.append(f"    acc += o->value;")
        if frees_left > 0:
            lines.append(f"    free(o);   /* MF (free arg) */")
            frees_left -= 1
    out.append(
        f"long {prefix}_mf_run(void) {{\n    long acc = 0;\n"
        + "\n".join(lines) + "\n    return acc;\n}")
    return "\n".join(out) + "\n"


def gen_su(prefix: str, n: int) -> str:
    """``n`` Safe Update (SU) sites: function pointers set to NULL."""
    out = [f"typedef void (*{prefix}_cb)(int);",
           f"void {prefix}_cb_real(int x) {{ }}"]
    decls = [f"{prefix}_cb {prefix}_slot{i};" for i in range(min(n, 8))]
    out.extend(decls)
    lines = []
    for index in range(n):
        slot = index % min(n, 8)
        lines.append(f"    {prefix}_slot{slot} = 0;   /* SU */")
    lines.append(f"    {prefix}_slot0 = {prefix}_cb_real;")
    lines.append(f"    if ({prefix}_slot0) {{ {prefix}_slot0(1); }}")
    out.append(
        f"void {prefix}_su_run(void) {{\n" + "\n".join(lines) + "\n}")
    return "\n".join(out) + "\n"


def gen_nf(prefix: str, n: int) -> str:
    """``n`` Non-Fptr-access (NF) sites: cast used only to read a plain
    field of a struct that also contains function pointers (the
    perlbench ``XPVLV`` pattern)."""
    out = [
        f"typedef struct {prefix}_xpv {{",
        f"    long len;",
        f"    void (*magic)(void);",
        f"}} {prefix}_xpv;",
        f"typedef struct {prefix}_sv {{ void *any; }} {prefix}_sv;",
        f"void {prefix}_magic(void) {{ }}",
    ]
    lines = [
        f"    {prefix}_xpv x;",
        f"    {prefix}_sv s;",
        f"    x.len = 11;",
        f"    x.magic = {prefix}_magic;",
        f"    s.any = (void *)&x;",
    ]
    for index in range(n):
        lines.append(
            f"    if ((({prefix}_xpv *)(s.any))->len > {index}) "
            f"{{ acc += {index + 1}; }}   /* NF */")
    out.append(
        f"long {prefix}_nf_run(void) {{\n    long acc = 0;\n"
        + "\n".join(lines) + "\n    return acc;\n}")
    return "\n".join(out) + "\n"


def gen_k1(prefix: str, n_fixed: int, n_dead: int) -> str:
    """K1 sites: function pointers initialized with type-incompatible
    functions (the paper's gcc splay-tree/strcmp case).

    ``n_fixed`` sites use a pointer type that *is* dispatched through
    (the pointer would break the program, so — as the paper did — a
    correctly-typed wrapper performs the real call).  ``n_dead`` sites
    initialize pointers that are never called (gcc's 14 unpatched
    cases).
    """
    out = [
        f"int {prefix}_strcmpish(char *a, char *b) "
        f"{{ return (int)(a - b); }}",
        f"typedef int (*{prefix}_k1cmp)(unsigned long, unsigned long);",
        # the paper's fix: an equivalently-typed wrapper
        f"int {prefix}_cmp_wrap(unsigned long a, unsigned long b) "
        f"{{ return {prefix}_strcmpish((char *)a, (char *)b); }}",
    ]
    lines = [f"    {prefix}_k1cmp cmp;", "    long acc = 0;"]
    for index in range(n_fixed):
        lines.append(
            f"    cmp = ({prefix}_k1cmp){prefix}_strcmpish;   /* K1 */")
        lines.append(f"    cmp = {prefix}_cmp_wrap;   /* the fix */")
        lines.append(f"    acc += cmp({index}u, {index + 1}u);")
    out.append(
        f"long {prefix}_k1_run(void) {{\n" + "\n".join(lines)
        + "\n    return acc;\n}")
    if n_dead:
        dead_lines = []
        out.append(f"typedef long (*{prefix}_deadfp)(double);")
        for index in range(n_dead):
            dead_lines.append(
                f"    {prefix}_deadfp d{index} = "
                f"({prefix}_deadfp){prefix}_strcmpish;   /* K1, dead */")
            dead_lines.append(f"    if (d{index}) {{ acc += 1; }}")
        out.append(
            f"long {prefix}_k1_dead(void) {{\n    long acc = 0;\n"
            + "\n".join(dead_lines) + "\n    return acc;\n}")
    return "\n".join(out) + "\n"


def gen_k2(prefix: str, n: int) -> str:
    """``n`` K2 sites: function pointers cast away (to ``void *``) and
    back, as perlbench stores handlers in untyped slots.  None require
    source fixes.  Exactly ``n`` casts are emitted — an odd remainder
    is a lone escape cast whose round trip never completes."""
    out = [
        f"typedef void (*{prefix}_fn)(int);",
        f"void {prefix}_fn_real(int x) {{ }}",
    ]
    lines = [f"    void *store;", f"    {prefix}_fn back;",
             "    long acc = 0;"]
    emitted = 0
    index = 0
    while emitted < n:
        if n - emitted >= 2:
            lines.append(f"    store = (void *){prefix}_fn_real;   /* K2 */")
            lines.append(f"    back = ({prefix}_fn)store;   /* K2 */")
            lines.append(f"    back({index});")
            emitted += 2
        else:
            lines.append(f"    store = (void *){prefix}_fn_real;   /* K2 "
                         f"(one-way escape) */")
            emitted += 1
        lines.append(f"    acc += {index};")
        index += 1
    out.append(
        f"long {prefix}_k2_run(void) {{\n" + "\n".join(lines)
        + "\n    return acc;\n}")
    return "\n".join(out) + "\n"


def gen_untagged_dc(prefix: str, n: int) -> str:
    """``n`` untagged downcasts (K2) plus the single pairing upcast (UC):
    developers who "decided those downcasts are safe through code
    inspection" (perlbench/gcc)."""
    out = [
        f"typedef struct {prefix}_ub {{ void (*f)(int); }} {prefix}_ub;",
        f"typedef struct {prefix}_ud {{ void (*f)(int); long z; }} "
        f"{prefix}_ud;",
        f"void {prefix}_ud_real(int x) {{ }}",
    ]
    lines = [f"    {prefix}_ud cc;", f"    {prefix}_ub *bb;",
             f"    cc.f = {prefix}_ud_real;", f"    cc.z = 1;",
             f"    bb = ({prefix}_ub *)&cc;   /* UC pair */"]
    for index in range(n):
        lines.append(f"    (({prefix}_ud *)bb)->f({index});   /* K2 "
                     f"untagged downcast */")
    out.append(
        f"void {prefix}_udc_run(void) {{\n" + "\n".join(lines) + "\n}")
    return "\n".join(out) + "\n"
