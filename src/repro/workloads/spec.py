"""The twelve SPECCPU2006-shaped synthetic workloads.

Each workload pairs a handwritten compute kernel in the spirit of its
SPEC namesake (perlbench = interpreter, bzip2 = compressor, gcc =
expression compiler, mcf = network flow, ...) with motif blocks from
:mod:`repro.workloads.motifs` calibrated so the C1 analyzer reproduces
the paper's Table 1/2 per-benchmark counts — exactly for the benchmarks
whose counts are small, scaled 1/20 (perlbench) and 1/10 (gcc) for the
two whose counts are in the hundreds/thousands (the scaling is recorded
per workload and surfaced in EXPERIMENTS.md).

Every motif block is *executed* by ``main`` and folded into the printed
checksum: the workloads contain no dead filler, so Fig. 5/6 overheads,
Table 3 CFG statistics, AIR and gadget counts all measure live code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workloads import motifs as m


@dataclass
class Workload:
    """One benchmark: source text plus the paper's reference numbers."""

    name: str
    source: str
    #: paper's Table 1 row (absolute numbers from the paper)
    paper_table1: Dict[str, int]
    #: expected analyzer counts for *this* (scaled) source
    expected_table1: Dict[str, int]
    #: scale factor applied to the paper's violation counts
    scale: int = 1
    #: paper's Table 3 rows: (IBs, IBTs, EQCs)
    paper_table3_x32: Tuple[int, int, int] = (0, 0, 0)
    paper_table3_x64: Tuple[int, int, int] = (0, 0, 0)
    #: expected K1/K2 classification for this source
    expected_table2: Dict[str, int] = field(default_factory=dict)


def _driver(calls: List[str]) -> str:
    body = "\n".join(f"    acc += (long)({call});" for call in calls)
    return (
        "int main(void) {\n"
        "    long acc = 0;\n"
        f"{body}\n"
        "    print_str(\"checksum \");\n"
        "    print_int(acc);\n"
        "    print_char('\\n');\n"
        "    return (int)(acc & 63);\n"
        "}\n")


# ---------------------------------------------------------------------------
# 400.perlbench -- bytecode interpreter with dispatch tables
# ---------------------------------------------------------------------------

_PERL_KERNEL = r"""
/* A register bytecode machine: the interpreter loop dispatches opcodes
   through a dense switch (jump table) and string ops through a
   function-pointer table, like perl's PP dispatch. */

enum { OP_HALT, OP_LOADI, OP_ADD, OP_SUB, OP_MUL, OP_JNZ, OP_HASH,
       OP_PRINTACC };

long pl_regs[8];

long pl_hash_str(char *s) {
    long h = 5381;
    unsigned long i;
    for (i = 0; i < strlen(s); i++) {
        h = h * 33 + s[i];
    }
    return h & 0xffffff;
}

long pl_arith(int kind, long a, long b) {
    if (kind == 2) { return a + b; }
    if (kind == 3) { return a - b; }
    return a * b;
}

int pl_operand(int *code, int pc, int k) {
    return code[pc + k] & 7;
}

long pl_interp(int *code, int len) {
    int pc = 0;
    long acc = 0;
    while (pc < len) {
        int op = code[pc];
        switch (op) {
            case 0: return acc;
            case 1: pl_regs[pl_operand(code, pc, 1)] = code[pc + 2]; pc += 3;
                    break;
            case 2: pl_regs[pl_operand(code, pc, 1)] = pl_arith(2,
                        pl_regs[pl_operand(code, pc, 1)],
                        pl_regs[pl_operand(code, pc, 2)]); pc += 3; break;
            case 3: pl_regs[pl_operand(code, pc, 1)] = pl_arith(3,
                        pl_regs[pl_operand(code, pc, 1)],
                        pl_regs[pl_operand(code, pc, 2)]); pc += 3; break;
            case 4: pl_regs[pl_operand(code, pc, 1)] = pl_arith(4,
                        pl_regs[pl_operand(code, pc, 1)],
                        pl_regs[pl_operand(code, pc, 2)]); pc += 3; break;
            case 5: if (pl_regs[code[pc + 1] & 7]) { pc = code[pc + 2]; }
                    else { pc += 3; } break;
            case 6: acc += pl_hash_str("perlish"); pc += 1; break;
            case 7: acc += pl_regs[0]; pc += 1; break;
            default: pc += 1; break;
        }
    }
    return acc;
}

int pl_program[32] = {1, 0, 100, 1, 1, 1, 3, 0, 1, 5, 0, 3, 7, 6, 0};

long pl_kernel(void) {
    long total = 0;
    int round;
    for (round = 0; round < 16; round++) {
        pl_program[2] = 60 + round;
        total += pl_interp(pl_program, 32);
    }
    return total;
}
"""


def build_perlbench() -> Workload:
    source = (
        _PERL_KERNEL
        + m.gen_dispatch("pl", 24, 4, calls_per_run=16)
        + m.gen_switches("pl", 4, 8)
        + m.gen_uc("pl", 25)
        + m.gen_dc("pl", 48)
        + m.gen_mf("pl", 8, n_free=4)
        + m.gen_su("pl", 32)
        + m.gen_nf("pl", 16)
        + m.gen_k1("pl", 3, 0)
        + m.gen_k2("pl", 7)
        + _driver(["pl_kernel()", "pl_run(3)", "pl_swrun()", "pl_uc_run()",
                   "pl_dc_run()", "pl_mf_run()", "pl_nf_run()",
                   "pl_k1_run()", "pl_k2_run()"])
        + "\n")
    return Workload(
        name="perlbench", source=source, scale=20,
        paper_table1={"SLOC": 126345, "VBE": 2878, "UC": 510, "DC": 957,
                      "MF": 234, "SU": 633, "NF": 318, "VAE": 226},
        expected_table1={"VBE": 145, "UC": 26, "DC": 48, "MF": 12,
                         "SU": 32, "NF": 16, "VAE": 11},
        expected_table2={"K1": 3, "K2": 8, "K1-fixed": 3},
        paper_table3_x32=(2250, 15492, 930),
        paper_table3_x64=(2081, 15273, 737))


# ---------------------------------------------------------------------------
# 401.bzip2 -- RLE + move-to-front compressor round trip
# ---------------------------------------------------------------------------

_BZIP2_KERNEL = r"""
/* Run-length + move-to-front coding round trip over a synthetic
   buffer, verified byte for byte. */

unsigned char bz_input[256];
unsigned char bz_coded[1200];
unsigned char bz_output[256];
unsigned char bz_mtf[256];

void bz_fill_input(void) {
    int i;
    long x = 12345;
    for (i = 0; i < 256; i++) {
        x = x * 1103515245 + 12345;
        bz_input[i] = (unsigned char)((x >> 16) & 7);  /* runs likely */
    }
}

void bz_mtf_init(void) {
    int i;
    for (i = 0; i < 256; i++) { bz_mtf[i] = (unsigned char)i; }
}

int bz_mtf_encode(int c) {
    int i = 0;
    int j;
    while (bz_mtf[i] != c) { i++; }
    for (j = i; j > 0; j--) { bz_mtf[j] = bz_mtf[j - 1]; }
    bz_mtf[0] = (unsigned char)c;
    return i;
}

int bz_mtf_decode(int rank) {
    int c = bz_mtf[rank];
    int j;
    for (j = rank; j > 0; j--) { bz_mtf[j] = bz_mtf[j - 1]; }
    bz_mtf[0] = (unsigned char)c;
    return c;
}

int bz_compress(void) {
    int out = 0;
    int i = 0;
    bz_mtf_init();
    while (i < 256) {
        int c = bz_input[i];
        int run = 1;
        while (i + run < 256 && bz_input[i + run] == c && run < 255) {
            run++;
        }
        bz_coded[out] = (unsigned char)run;
        bz_coded[out + 1] = (unsigned char)bz_mtf_encode(c);
        out += 2;
        i += run;
    }
    return out;
}

int bz_decompress(int coded_len) {
    int i;
    int pos = 0;
    bz_mtf_init();
    for (i = 0; i < coded_len; i += 2) {
        int run = bz_coded[i];
        int c = bz_mtf_decode(bz_coded[i + 1]);
        int j;
        for (j = 0; j < run; j++) {
            bz_output[pos] = (unsigned char)c;
            pos++;
        }
    }
    return pos;
}

long bz_kernel(void) {
    int coded;
    int n;
    int i;
    long errors = 0;
    bz_fill_input();
    coded = bz_compress();
    n = bz_decompress(coded);
    if (n != 256) { return -1; }
    for (i = 0; i < 256; i++) {
        if (bz_input[i] != bz_output[i]) { errors++; }
    }
    return errors * 1000 + coded;
}
"""


def build_bzip2() -> Workload:
    source = (
        _BZIP2_KERNEL
        + m.gen_dispatch("bz", 4, 2)
        + m.gen_mf("bz", 4, n_free=2)
        + m.gen_su("bz", 4)
        + m.gen_k2("bz", 17)
        + _driver(["bz_kernel()", "bz_run(1)", "bz_mf_run()",
                   "bz_k2_run()"])
        + "\n")
    return Workload(
        name="bzip2", source=source, scale=1,
        paper_table1={"SLOC": 5731, "VBE": 27, "UC": 0, "DC": 0, "MF": 6,
                      "SU": 4, "NF": 0, "VAE": 17},
        expected_table1={"VBE": 27, "UC": 0, "DC": 0, "MF": 6, "SU": 4,
                         "NF": 0, "VAE": 17},
        expected_table2={"K1": 0, "K2": 17, "K1-fixed": 0},
        paper_table3_x32=(220, 515, 110),
        paper_table3_x64=(217, 544, 93))


# ---------------------------------------------------------------------------
# 403.gcc -- mini expression compiler (tokenize, parse, fold, emit, run)
# ---------------------------------------------------------------------------

_GCC_KERNEL = r"""
/* A miniature compiler: tokenize an arithmetic expression, compile it
   to stack code with constant folding, interpret the code; plus the
   paper's splay-tree-with-comparator shape. */

char *cc_src;
int cc_pos;

int cc_peek(void) { return cc_src[cc_pos]; }

long cc_stack_code[128];
int cc_emitted;

void cc_emit(long op, long arg) {
    cc_stack_code[cc_emitted] = op * 1000000 + arg;
    cc_emitted++;
}

long cc_parse_expr(void);

long cc_parse_atom(void) {
    long v = 0;
    if (cc_peek() == '(') {
        cc_pos++;
        v = cc_parse_expr();
        cc_pos++;   /* ')' */
        return v;
    }
    while (cc_peek() >= '0' && cc_peek() <= '9') {
        v = v * 10 + (cc_peek() - '0');
        cc_pos++;
    }
    cc_emit(1, v);
    return v;
}

long cc_parse_term(void) {
    long v = cc_parse_atom();
    while (cc_peek() == '*') {
        cc_pos++;
        v = v * cc_parse_atom();
        cc_emit(3, 0);
    }
    return v;
}

long cc_parse_expr(void) {
    long v = cc_parse_term();
    while (cc_peek() == '+') {
        cc_pos++;
        v = v + cc_parse_term();
        cc_emit(2, 0);
    }
    return v;
}

long cc_eval_code(void) {
    long stack[32];
    int sp = 0;
    int i;
    for (i = 0; i < cc_emitted; i++) {
        long op = cc_stack_code[i] / 1000000;
        long arg = cc_stack_code[i] % 1000000;
        if (op == 1) { stack[sp] = arg; sp++; }
        if (op == 2) { sp--; stack[sp - 1] += stack[sp]; }
        if (op == 3) { sp--; stack[sp - 1] *= stack[sp]; }
    }
    if (sp != 1) { return -1; }
    return stack[0];
}

typedef struct cc_node {
    unsigned long key;
    long value;
    struct cc_node *left;
    struct cc_node *right;
} cc_node;

typedef int (*cc_keycmp)(unsigned long, unsigned long);

int cc_cmp_ul(unsigned long a, unsigned long b) {
    if (a < b) { return -1; }
    if (a > b) { return 1; }
    return 0;
}

cc_node *cc_insert(cc_node *root, cc_node *fresh, cc_keycmp cmp) {
    if (!root) { return fresh; }
    if (cmp(fresh->key, root->key) < 0) {
        root->left = cc_insert(root->left, fresh, cmp);
    } else {
        root->right = cc_insert(root->right, fresh, cmp);
    }
    return root;
}

long cc_sum_tree(cc_node *root) {
    if (!root) { return 0; }
    return root->value + cc_sum_tree(root->left) + cc_sum_tree(root->right);
}

long cc_kernel(void) {
    long total = 0;
    int round;
    cc_node nodes[24];
    cc_node *root = 0;
    for (round = 0; round < 40; round++) {
        cc_src = "(1+2)*(3+4)+5*6+78";
        cc_pos = 0;
        cc_emitted = 0;
        cc_parse_expr();
        total += cc_eval_code();
    }
    for (round = 0; round < 24; round++) {
        nodes[round].key = (unsigned long)((round * 7) % 24);
        nodes[round].value = round;
        nodes[round].left = 0;
        nodes[round].right = 0;
        root = cc_insert(root, &nodes[round], cc_cmp_ul);
    }
    return total + cc_sum_tree(root);
}
"""


def build_gcc() -> Workload:
    source = (
        _GCC_KERNEL
        + m.gen_dispatch("cc", 52, 6, calls_per_run=30)
        + m.gen_switches("cc", 6, 10)
        + m.gen_mf("cc", 2, n_free=0)
        + m.gen_su("cc", 74)
        + m.gen_nf("cc", 3)
        + m.gen_k1("cc", 2, 1)
        + _driver(["cc_kernel()", "cc_run(5)", "cc_swrun()", "cc_mf_run()",
                   "cc_nf_run()", "cc_su_run(), 0", "cc_k1_run()",
                   "cc_k1_dead()"])
        + "\n")
    return Workload(
        name="gcc", source=source, scale=10,
        paper_table1={"SLOC": 235884, "VBE": 822, "UC": 0, "DC": 0,
                      "MF": 15, "SU": 737, "NF": 27, "VAE": 43},
        expected_table1={"VBE": 83, "UC": 0, "DC": 0, "MF": 2, "SU": 74,
                         "NF": 3, "VAE": 4},
        expected_table2={"K1": 3, "K2": 1, "K1-fixed": 2},
        paper_table3_x32=(5215, 48634, 2779),
        paper_table3_x64=(4796, 46943, 1991))


# ---------------------------------------------------------------------------
# 429.mcf -- Bellman-Ford network optimization (no violations)
# ---------------------------------------------------------------------------

_MCF_KERNEL = r"""
/* Single-source shortest paths over a synthetic scheduling network --
   the spirit of mcf's network simplex, with zero C1 violations. */

int mc_from[120];
int mc_to[120];
long mc_cost[120];
long mc_dist[32];

void mc_build(void) {
    int e;
    long x = 777;
    for (e = 0; e < 120; e++) {
        x = x * 6364136223846793005 + 1442695040888963407;
        mc_from[e] = (int)((x >> 33) & 31) % 32;
        mc_to[e] = (int)((x >> 17) & 31) % 32;
        mc_cost[e] = ((x >> 5) & 63) + 1;
        if (mc_from[e] == mc_to[e]) { mc_to[e] = (mc_to[e] + 1) % 32; }
    }
}

long mc_bellman_ford(int source) {
    int i;
    int e;
    long reach = 0;
    for (i = 0; i < 32; i++) { mc_dist[i] = 1000000000; }
    mc_dist[source] = 0;
    for (i = 0; i < 31; i++) {
        for (e = 0; e < 120; e++) {
            long cand = mc_dist[mc_from[e]] + mc_cost[e];
            if (mc_dist[mc_from[e]] < 1000000000 &&
                    cand < mc_dist[mc_to[e]]) {
                mc_dist[mc_to[e]] = cand;
            }
        }
    }
    for (i = 0; i < 32; i++) {
        if (mc_dist[i] < 1000000000) { reach += mc_dist[i]; }
    }
    return reach;
}

long mc_kernel(void) {
    long total = 0;
    int s;
    mc_build();
    for (s = 0; s < 3; s++) {
        total += mc_bellman_ford(s * 7 % 32);
    }
    return total;
}
"""


def build_mcf() -> Workload:
    source = _MCF_KERNEL + _driver(["mc_kernel()"]) + "\n"
    return Workload(
        name="mcf", source=source, scale=1,
        paper_table1={"SLOC": 1574, "VBE": 0, "UC": 0, "DC": 0, "MF": 0,
                      "SU": 0, "NF": 0, "VAE": 0},
        expected_table1={"VBE": 0, "UC": 0, "DC": 0, "MF": 0, "SU": 0,
                         "NF": 0, "VAE": 0},
        expected_table2={"K1": 0, "K2": 0, "K1-fixed": 0},
        paper_table3_x32=(170, 468, 119),
        paper_table3_x64=(174, 445, 106))


# ---------------------------------------------------------------------------
# 445.gobmk -- board influence + pattern dispatch (no violations)
# ---------------------------------------------------------------------------

_GOBMK_KERNEL = r"""
/* Influence propagation on a 13x13 board plus tactical pattern
   evaluators dispatched through a table, like gobmk's owl patterns. */

int gb_board[169];
int gb_influence[169];

void gb_seed_board(void) {
    int i;
    long x = 4242;
    for (i = 0; i < 169; i++) {
        x = x * 25214903917 + 11;
        gb_board[i] = (int)((x >> 24) % 3);  /* 0 empty, 1 black, 2 white */
    }
}

int gb_mix(int n, int s, int w, int e) {
    return (n + s + w + e) / 8;
}

void gb_propagate(void) {
    int pass;
    int i;
    for (i = 0; i < 169; i++) {
        gb_influence[i] = gb_board[i] == 1 ? 64 :
                          (gb_board[i] == 2 ? -64 : 0);
    }
    for (pass = 0; pass < 5; pass++) {
        for (i = 13; i < 156; i++) {
            gb_influence[i] += gb_mix(gb_influence[i - 13],
                                      gb_influence[i + 13],
                                      gb_influence[i - 1],
                                      gb_influence[i + 1])
                               - gb_influence[i] / 16;
        }
    }
}

long gb_score(void) {
    long black = 0;
    int i;
    for (i = 0; i < 169; i++) {
        if (gb_influence[i] > 4) { black++; }
        if (gb_influence[i] < -4) { black--; }
    }
    return black;
}

long gb_kernel(void) {
    long total = 0;
    int round;
    gb_seed_board();
    for (round = 0; round < 4; round++) {
        gb_propagate();
        total += gb_score();
        gb_board[(round * 31) % 169] = 1 + (round & 1);
    }
    return total;
}
"""


def build_gobmk() -> Workload:
    source = (
        _GOBMK_KERNEL
        + m.gen_dispatch("gb", 30, 5, calls_per_run=15)
        + m.gen_switches("gb", 4, 8)
        + _driver(["gb_kernel()", "gb_run(2)", "gb_swrun()"])
        + "\n")
    return Workload(
        name="gobmk", source=source, scale=1,
        paper_table1={"SLOC": 157649, "VBE": 0, "UC": 0, "DC": 0, "MF": 0,
                      "SU": 0, "NF": 0, "VAE": 0},
        expected_table1={"VBE": 0, "UC": 0, "DC": 0, "MF": 0, "SU": 0,
                         "NF": 0, "VAE": 0},
        expected_table2={"K1": 0, "K2": 0, "K1-fixed": 0},
        paper_table3_x32=(2734, 11073, 709),
        paper_table3_x64=(2487, 10667, 579))


# ---------------------------------------------------------------------------
# 456.hmmer -- profile HMM Viterbi DP
# ---------------------------------------------------------------------------

_HMMER_KERNEL = r"""
/* Viterbi decoding of a toy profile HMM over a synthetic residue
   sequence: triple-state DP with transition penalties. */

long hm_match[20][16];
long hm_vm[64][16];
long hm_vi[64][16];
long hm_vd[64][16];
int hm_seq[64];

long hm_max2(long a, long b) { return a > b ? a : b; }
long hm_max3(long a, long b, long c) { return hm_max2(hm_max2(a, b), c); }

void hm_setup(void) {
    int i;
    int j;
    long x = 99;
    for (i = 0; i < 20; i++) {
        for (j = 0; j < 16; j++) {
            x = x * 69069 + 1;
            hm_match[i][j] = ((x >> 8) % 17) - 8;
        }
    }
    for (i = 0; i < 64; i++) {
        x = x * 69069 + 1;
        hm_seq[i] = (int)((x >> 16) % 20);
    }
}

long hm_viterbi(void) {
    int i;
    int j;
    for (i = 0; i < 64; i++) {
        for (j = 0; j < 16; j++) {
            long em = hm_match[hm_seq[i]][j];
            long prev_m = (i > 0 && j > 0) ? hm_vm[i - 1][j - 1] : -3;
            long prev_i = i > 0 ? hm_vi[i - 1][j] : -5;
            long prev_d = j > 0 ? hm_vd[i][j - 1] : -5;
            hm_vm[i][j] = em + hm_max3(prev_m, prev_i - 2, prev_d - 2);
            hm_vi[i][j] = hm_max2(prev_m - 3, prev_i - 1);
            hm_vd[i][j] = hm_max2((j > 0 ? hm_vm[i][j - 1] : -3) - 3,
                                  prev_d - 1);
        }
    }
    return hm_vm[63][15];
}

long hm_kernel(void) {
    long total = 0;
    int round;
    hm_setup();
    for (round = 0; round < 2; round++) {
        hm_seq[round % 64] = round % 20;
        total += hm_viterbi();
    }
    return total;
}
"""


def build_hmmer() -> Workload:
    source = (
        _HMMER_KERNEL
        + m.gen_dispatch("hm", 8, 3)
        + m.gen_mf("hm", 12, n_free=8)
        + _driver(["hm_kernel()", "hm_run(4)", "hm_mf_run()"])
        + "\n")
    return Workload(
        name="hmmer", source=source, scale=1,
        paper_table1={"SLOC": 20658, "VBE": 20, "UC": 0, "DC": 0, "MF": 20,
                      "SU": 0, "NF": 0, "VAE": 0},
        expected_table1={"VBE": 20, "UC": 0, "DC": 0, "MF": 20, "SU": 0,
                         "NF": 0, "VAE": 0},
        expected_table2={"K1": 0, "K2": 0, "K1-fixed": 0},
        paper_table3_x32=(726, 4464, 401),
        paper_table3_x64=(715, 4369, 353))


# ---------------------------------------------------------------------------
# 458.sjeng -- negamax game-tree search with switches
# ---------------------------------------------------------------------------

_SJENG_KERNEL = r"""
/* Negamax with alpha-beta over a deterministic abstract game: each
   position offers a handful of moves whose values come from a mixing
   function -- the control-flow shape of a chess searcher. */

long sj_nodes;

long sj_move_value(long pos, int move) {
    long v = pos * 2654435761 + move * 40503;
    v = (v >> 13) ^ v;
    return v;
}

long sj_negamax(long pos, int depth, long alpha, long beta) {
    int move;
    long best = -1000000000;
    sj_nodes++;
    if (depth == 0) {
        return (sj_move_value(pos, 0) % 2001) - 1000;
    }
    for (move = 0; move < 5; move++) {
        long child = sj_move_value(pos, move);
        long score = -sj_negamax(child, depth - 1, -beta, -alpha);
        if (score > best) { best = score; }
        if (best > alpha) { alpha = best; }
        if (alpha >= beta) { break; }
    }
    return best;
}

int sj_phase(int depth) {
    switch (depth) {
        case 0: return 1;
        case 1: return 2;
        case 2: return 4;
        case 3: return 8;
        case 4: return 16;
        default: return 32;
    }
}

long sj_kernel(void) {
    long total = 0;
    int root;
    sj_nodes = 0;
    for (root = 0; root < 4; root++) {
        total += sj_negamax(root * 977, 4, -1000000000, 1000000000);
        total += sj_phase(root);
    }
    return total + sj_nodes;
}
"""


def build_sjeng() -> Workload:
    source = (
        _SJENG_KERNEL
        + m.gen_dispatch("sj", 4, 2, calls_per_run=8)
        + m.gen_switches("sj", 3, 7)
        + _driver(["sj_kernel()", "sj_run(1)", "sj_swrun()"])
        + "\n")
    return Workload(
        name="sjeng", source=source, scale=1,
        paper_table1={"SLOC": 10544, "VBE": 0, "UC": 0, "DC": 0, "MF": 0,
                      "SU": 0, "NF": 0, "VAE": 0},
        expected_table1={"VBE": 0, "UC": 0, "DC": 0, "MF": 0, "SU": 0,
                         "NF": 0, "VAE": 0},
        expected_table2={"K1": 0, "K2": 0, "K1-fixed": 0},
        paper_table3_x32=(305, 1457, 207),
        paper_table3_x64=(337, 1435, 184))


# ---------------------------------------------------------------------------
# 462.libquantum -- gate simulation with one K1 case
# ---------------------------------------------------------------------------

_LIBQUANTUM_KERNEL = r"""
/* Toffoli/Hadamard-ish transforms over a small amplitude vector; the
   gate pipeline is a function-pointer table (libquantum dispatches
   gates similarly). */

double lq_re[32];
double lq_im[32];

void lq_init(void) {
    int i;
    for (i = 0; i < 32; i++) {
        lq_re[i] = i == 0 ? 1.0 : 0.0;
        lq_im[i] = 0.0;
    }
}

void lq_gate_not(int bit) {
    int i;
    for (i = 0; i < 32; i++) {
        int j = i ^ (1 << bit);
        if (i < j) {
            double tr = lq_re[i];
            double ti = lq_im[i];
            lq_re[i] = lq_re[j];
            lq_im[i] = lq_im[j];
            lq_re[j] = tr;
            lq_im[j] = ti;
        }
    }
}

void lq_gate_phase(int bit) {
    int i;
    for (i = 0; i < 32; i++) {
        if (i & (1 << bit)) {
            double tr = lq_re[i];
            lq_re[i] = 0.0 - lq_im[i];
            lq_im[i] = tr;
        }
    }
}

void lq_gate_mix(int bit) {
    int i;
    for (i = 0; i < 32; i++) {
        int j = i ^ (1 << bit);
        if (i < j) {
            double a = lq_re[i];
            double b = lq_re[j];
            lq_re[i] = (a + b) / 2.0;
            lq_re[j] = (a - b) / 2.0;
        }
    }
}

typedef void (*lq_gate)(int);
lq_gate lq_pipeline[3] = {lq_gate_not, lq_gate_phase, lq_gate_mix};

long lq_kernel(void) {
    int round;
    int g;
    double norm = 0.0;
    long scaled;
    lq_init();
    for (round = 0; round < 12; round++) {
        for (g = 0; g < 3; g++) {
            lq_pipeline[g](round % 5);
        }
    }
    for (g = 0; g < 32; g++) {
        norm = norm + lq_re[g] * lq_re[g] + lq_im[g] * lq_im[g];
    }
    scaled = (long)(norm * 1000.0);
    return scaled;
}
"""


def build_libquantum() -> Workload:
    source = (
        _LIBQUANTUM_KERNEL
        + m.gen_dispatch("lq", 3, 2)
        + m.gen_k1("lq", 1, 0)
        + _driver(["lq_kernel()", "lq_run(2)", "lq_k1_run()"])
        + "\n")
    return Workload(
        name="libquantum", source=source, scale=1,
        paper_table1={"SLOC": 2606, "VBE": 1, "UC": 0, "DC": 0, "MF": 0,
                      "SU": 0, "NF": 0, "VAE": 1},
        expected_table1={"VBE": 1, "UC": 0, "DC": 0, "MF": 0, "SU": 0,
                         "NF": 0, "VAE": 1},
        expected_table2={"K1": 1, "K2": 0, "K1-fixed": 1},
        paper_table3_x32=(246, 754, 161),
        paper_table3_x64=(258, 702, 121))


# ---------------------------------------------------------------------------
# 464.h264ref -- integer transform + SAD motion search
# ---------------------------------------------------------------------------

_H264_KERNEL = r"""
/* 4x4 integer DCT-ish transform and sum-of-absolute-differences motion
   search over synthetic frames. */

int hv_frame[256];
int hv_ref[256];

void hv_fill(void) {
    int i;
    long x = 31337;
    for (i = 0; i < 256; i++) {
        x = x * 1103515245 + 12345;
        hv_frame[i] = (int)((x >> 16) & 255);
        hv_ref[i] = (int)((x >> 24) & 255);
    }
}

long hv_transform4x4(int *block) {
    int tmp[16];
    int i;
    long energy = 0;
    for (i = 0; i < 4; i++) {
        int a = block[i * 4] + block[i * 4 + 3];
        int b = block[i * 4 + 1] + block[i * 4 + 2];
        int c = block[i * 4 + 1] - block[i * 4 + 2];
        int d = block[i * 4] - block[i * 4 + 3];
        tmp[i * 4] = a + b;
        tmp[i * 4 + 1] = 2 * d + c;
        tmp[i * 4 + 2] = a - b;
        tmp[i * 4 + 3] = d - 2 * c;
    }
    for (i = 0; i < 16; i++) {
        energy += (long)(tmp[i] > 0 ? tmp[i] : -tmp[i]);
    }
    return energy;
}

int hv_absdiff(int a, int b) {
    return a > b ? a - b : b - a;
}

long hv_sad(int bx, int dx) {
    long sad = 0;
    int i;
    for (i = 0; i < 16; i++) {
        sad += hv_absdiff(hv_frame[(bx + i) & 255],
                          hv_ref[(bx + dx + i) & 255]);
    }
    return sad;
}

long hv_kernel(void) {
    long total = 0;
    int block;
    hv_fill();
    for (block = 0; block < 16; block++) {
        long best = 1 << 30;
        int dx;
        for (dx = -8; dx <= 8; dx++) {
            long sad = hv_sad(block * 16, dx);
            if (sad < best) { best = sad; }
        }
        total += best + hv_transform4x4(hv_frame + block * 16);
    }
    return total;
}
"""


def build_h264ref() -> Workload:
    source = (
        _H264_KERNEL
        + m.gen_dispatch("hv", 12, 4)
        + m.gen_switches("hv", 2, 6)
        + m.gen_mf("hv", 5, n_free=3)
        + _driver(["hv_kernel()", "hv_run(3)", "hv_swrun()", "hv_mf_run()"])
        + "\n")
    return Workload(
        name="h264ref", source=source, scale=1,
        paper_table1={"SLOC": 36098, "VBE": 8, "UC": 0, "DC": 0, "MF": 8,
                      "SU": 0, "NF": 0, "VAE": 0},
        expected_table1={"VBE": 8, "UC": 0, "DC": 0, "MF": 8, "SU": 0,
                         "NF": 0, "VAE": 0},
        expected_table2={"K1": 0, "K2": 0, "K1-fixed": 0},
        paper_table3_x32=(1099, 3677, 493),
        paper_table3_x64=(1096, 3604, 432))


# ---------------------------------------------------------------------------
# 433.milc -- SU(2)-ish complex matrix products (floating point)
# ---------------------------------------------------------------------------

_MILC_KERNEL = r"""
/* Complex 2x2 matrix products over a lattice of links -- milc's
   su3-multiply inner loop in miniature. */

double ml_lat_re[64][4];
double ml_lat_im[64][4];

void ml_init(void) {
    int s;
    int k;
    for (s = 0; s < 64; s++) {
        for (k = 0; k < 4; k++) {
            ml_lat_re[s][k] = (double)((s * 5 + k * 3) % 7) / 7.0;
            ml_lat_im[s][k] = (double)((s * 3 + k * 5) % 5) / 5.0;
        }
    }
}

void ml_mult(double *are, double *aim, double *bre, double *bim,
             double *cre, double *cim) {
    int i;
    int j;
    int k;
    for (i = 0; i < 2; i++) {
        for (j = 0; j < 2; j++) {
            double sum_re = 0.0;
            double sum_im = 0.0;
            for (k = 0; k < 2; k++) {
                double ar = are[i * 2 + k];
                double ai = aim[i * 2 + k];
                double br = bre[k * 2 + j];
                double bi = bim[k * 2 + j];
                sum_re = sum_re + ar * br - ai * bi;
                sum_im = sum_im + ar * bi + ai * br;
            }
            cre[i * 2 + j] = sum_re;
            cim[i * 2 + j] = sum_im;
        }
    }
}

long ml_kernel(void) {
    double acc_re[4];
    double acc_im[4];
    double out_re[4];
    double out_im[4];
    double trace = 0.0;
    int s;
    int k;
    ml_init();
    for (k = 0; k < 4; k++) { acc_re[k] = k == 0 || k == 3 ? 1.0 : 0.0; }
    for (k = 0; k < 4; k++) { acc_im[k] = 0.0; }
    for (s = 0; s < 64; s++) {
        ml_mult(acc_re, acc_im, ml_lat_re[s], ml_lat_im[s],
                out_re, out_im);
        for (k = 0; k < 4; k++) {
            acc_re[k] = out_re[k] * 0.5 + (k == 0 || k == 3 ? 0.5 : 0.0);
            acc_im[k] = out_im[k] * 0.5;
        }
    }
    trace = acc_re[0] + acc_re[3];
    return (long)(trace * 100000.0);
}
"""


def build_milc() -> Workload:
    source = (
        _MILC_KERNEL
        + m.gen_dispatch("ml", 5, 3)
        + m.gen_mf("ml", 2, n_free=1)
        + m.gen_k2("ml", 5)
        + _driver(["ml_kernel()", "ml_run(2)", "ml_mf_run()",
                   "ml_k2_run()"])
        + "\n")
    return Workload(
        name="milc", source=source, scale=1,
        paper_table1={"SLOC": 9575, "VBE": 8, "UC": 0, "DC": 0, "MF": 3,
                      "SU": 0, "NF": 0, "VAE": 5},
        expected_table1={"VBE": 8, "UC": 0, "DC": 0, "MF": 3, "SU": 0,
                         "NF": 0, "VAE": 5},
        expected_table2={"K1": 0, "K2": 5, "K1-fixed": 0},
        paper_table3_x32=(441, 2443, 312),
        paper_table3_x64=(432, 2356, 264))


# ---------------------------------------------------------------------------
# 470.lbm -- lattice-Boltzmann stream/collide stencil
# ---------------------------------------------------------------------------

_LBM_KERNEL = r"""
/* 1D three-velocity lattice Boltzmann: stream + BGK collide, double
   precision, no indirect control flow beyond returns. */

double lb_f0[128];
double lb_fp[128];
double lb_fm[128];
double lb_nf0[128];
double lb_nfp[128];
double lb_nfm[128];

void lb_init(void) {
    int i;
    for (i = 0; i < 128; i++) {
        double rho = 1.0 + (i >= 48 && i < 80 ? 0.2 : 0.0);
        lb_f0[i] = rho * 4.0 / 6.0;
        lb_fp[i] = rho / 6.0;
        lb_fm[i] = rho / 6.0;
    }
}

void lb_step(void) {
    int i;
    for (i = 0; i < 128; i++) {
        int left = i == 0 ? 127 : i - 1;
        int right = i == 127 ? 0 : i + 1;
        double f0 = lb_f0[i];
        double fp = lb_fp[left];
        double fm = lb_fm[right];
        double rho = f0 + fp + fm;
        double vel = (fp - fm) / rho;
        double eq0 = rho * 4.0 / 6.0 * (1.0 - 1.5 * vel * vel);
        double eqp = rho / 6.0 * (1.0 + 3.0 * vel + 3.0 * vel * vel);
        double eqm = rho / 6.0 * (1.0 - 3.0 * vel + 3.0 * vel * vel);
        lb_nf0[i] = f0 + 0.6 * (eq0 - f0);
        lb_nfp[i] = fp + 0.6 * (eqp - fp);
        lb_nfm[i] = fm + 0.6 * (eqm - fm);
    }
    for (i = 0; i < 128; i++) {
        lb_f0[i] = lb_nf0[i];
        lb_fp[i] = lb_nfp[i];
        lb_fm[i] = lb_nfm[i];
    }
}

long lb_kernel(void) {
    double mass = 0.0;
    int t;
    int i;
    lb_init();
    for (t = 0; t < 10; t++) { lb_step(); }
    for (i = 0; i < 128; i++) {
        mass = mass + lb_f0[i] + lb_fp[i] + lb_fm[i];
    }
    return (long)(mass * 1000.0);
}
"""


def build_lbm() -> Workload:
    source = _LBM_KERNEL + _driver(["lb_kernel()"]) + "\n"
    return Workload(
        name="lbm", source=source, scale=1,
        paper_table1={"SLOC": 904, "VBE": 0, "UC": 0, "DC": 0, "MF": 0,
                      "SU": 0, "NF": 0, "VAE": 0},
        expected_table1={"VBE": 0, "UC": 0, "DC": 0, "MF": 0, "SU": 0,
                         "NF": 0, "VAE": 0},
        expected_table2={"K1": 0, "K2": 0, "K1-fixed": 0},
        paper_table3_x32=(161, 455, 112),
        paper_table3_x64=(161, 426, 96))


# ---------------------------------------------------------------------------
# 482.sphinx3 -- gaussian mixture acoustic scoring
# ---------------------------------------------------------------------------

_SPHINX_KERNEL = r"""
/* Gaussian-mixture log-likelihood scoring of synthetic feature frames
   followed by a best-state search -- sphinx3's senone scoring shape. */

double sp_mean[8][8];
double sp_var[8][8];
double sp_feat[24][8];

void sp_init(void) {
    int s;
    int d;
    int t;
    for (s = 0; s < 8; s++) {
        for (d = 0; d < 8; d++) {
            sp_mean[s][d] = (double)((s * 3 + d) % 5) - 2.0;
            sp_var[s][d] = 0.5 + (double)((s + d) % 3) * 0.25;
        }
    }
    for (t = 0; t < 24; t++) {
        for (d = 0; d < 8; d++) {
            sp_feat[t][d] = (double)((t * 7 + d * 5) % 9) / 3.0 - 1.0;
        }
    }
}

double sp_score(int state, int frame) {
    double ll = 0.0;
    int d;
    for (d = 0; d < 8; d++) {
        double diff = sp_feat[frame][d] - sp_mean[state][d];
        ll = ll - diff * diff / (2.0 * sp_var[state][d]);
    }
    return ll;
}

long sp_kernel(void) {
    long path = 0;
    int t;
    sp_init();
    for (t = 0; t < 24; t++) {
        int best_state = 0;
        double best = -1000000.0;
        int s;
        for (s = 0; s < 8; s++) {
            double ll = sp_score(s, t);
            if (ll > best) { best = ll; best_state = s; }
        }
        path = path * 8 + best_state;
        path = path % 100000007;
    }
    return path;
}
"""


def build_sphinx3() -> Workload:
    source = (
        _SPHINX_KERNEL
        + m.gen_dispatch("sp", 7, 3)
        + m.gen_switches("sp", 2, 6)
        + m.gen_mf("sp", 7, n_free=4)
        + m.gen_su("sp", 1)
        + _driver(["sp_kernel()", "sp_run(2)", "sp_swrun()", "sp_mf_run()",
                   "sp_su_run(), 0"])
        + "\n")
    return Workload(
        name="sphinx3", source=source, scale=1,
        paper_table1={"SLOC": 13128, "VBE": 12, "UC": 0, "DC": 0, "MF": 11,
                      "SU": 1, "NF": 0, "VAE": 0},
        expected_table1={"VBE": 12, "UC": 0, "DC": 0, "MF": 11, "SU": 1,
                         "NF": 0, "VAE": 0},
        expected_table2={"K1": 0, "K2": 0, "K1-fixed": 0},
        paper_table3_x32=(585, 2963, 380),
        paper_table3_x64=(589, 2895, 321))


_BUILDERS = {
    "perlbench": build_perlbench,
    "bzip2": build_bzip2,
    "gcc": build_gcc,
    "mcf": build_mcf,
    "gobmk": build_gobmk,
    "hmmer": build_hmmer,
    "sjeng": build_sjeng,
    "libquantum": build_libquantum,
    "h264ref": build_h264ref,
    "milc": build_milc,
    "lbm": build_lbm,
    "sphinx3": build_sphinx3,
}

#: SPEC-order benchmark names (9 integer + 3 floating point).
BENCHMARKS = ("perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer",
              "sjeng", "libquantum", "h264ref", "milc", "lbm", "sphinx3")

_CACHE: Dict[str, Workload] = {}


def workload(name: str) -> Workload:
    """Build (and cache) one workload by benchmark name."""
    if name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]


def all_workloads() -> List[Workload]:
    return [workload(name) for name in BENCHMARKS]


def workload_digest(name: str) -> str:
    """SHA-256 of a workload's source text — the provenance component
    the :mod:`repro.infra` artifact cache keys compilations by."""
    import hashlib
    return hashlib.sha256(workload(name).source.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Named benchmark sets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchmarkSet:
    """A named, closed collection of corpus members.

    Sets exist so reports cannot cherry-pick: a set run must produce
    one verdict per member (see ``repro.workloads.corpus``). ``kind``
    is ``"fixed"`` (members are workload names from ``BENCHMARKS``)
    or ``"generated"`` (members are ``gen<seed>`` programs from
    :mod:`repro.workloads.generate`).
    """

    name: str
    description: str
    kind: str                       # "fixed" | "generated"
    members: Tuple[str, ...]
    seeds: Tuple[int, ...] = ()     # generated sets only
    quick: bool = False             # GenConfig.quick() for members

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "generated"):
            raise ValueError(f"unknown set kind {self.kind!r}")
        if not self.members:
            raise ValueError(f"set {self.name!r} has no members")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"set {self.name!r} has duplicate members")
        if self.kind == "generated" and \
                len(self.seeds) != len(self.members):
            raise ValueError(
                f"set {self.name!r}: seeds/members length mismatch")


_SETS: Dict[str, BenchmarkSet] = {}


def register_set(spec: BenchmarkSet) -> BenchmarkSet:
    """Register a set under its name; re-registration must be
    identical (idempotent) or it is an error."""
    existing = _SETS.get(spec.name)
    if existing is not None:
        if existing != spec:
            raise ValueError(
                f"benchmark set {spec.name!r} already registered "
                f"with different members")
        return existing
    _SETS[spec.name] = spec
    return spec


def benchmark_set(name: str) -> BenchmarkSet:
    """Resolve a registered set by name."""
    try:
        return _SETS[name]
    except KeyError:
        known = ", ".join(sorted(_SETS))
        raise KeyError(
            f"unknown benchmark set {name!r} (known: {known})"
        ) from None


def all_sets() -> List[BenchmarkSet]:
    """Every registered set, in deterministic (name) order."""
    return [_SETS[name] for name in sorted(_SETS)]


def _generated_set(name: str, description: str, seeds: range,
                   quick: bool) -> BenchmarkSet:
    seed_tuple = tuple(seeds)
    return BenchmarkSet(
        name=name, description=description, kind="generated",
        members=tuple(f"gen{s}" for s in seed_tuple),
        seeds=seed_tuple, quick=quick)


#: the twelve hand-written SPEC-shaped workloads
register_set(BenchmarkSet(
    name="fixed12",
    description="the twelve SPEC-shaped fixed workloads",
    kind="fixed", members=BENCHMARKS))

#: small, fast generated corpus for CI smoke (fixed seeds)
register_set(_generated_set(
    "gen-smoke",
    "20 quick generated programs, fixed seeds 1000-1019 (CI smoke)",
    range(1000, 1020), quick=True))

#: the ISSUE-10 campaign corpus: >= 500 seeded programs
register_set(_generated_set(
    "gen-deep",
    "500 generated programs, seeds 1-500 (full differential sweep)",
    range(1, 501), quick=False))
