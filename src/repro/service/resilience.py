"""The self-healing service plane: quarantine, recovery, chaos hardening.

:class:`ResilientServiceLoop` upgrades the PR 6
:class:`~repro.service.loop.ServiceLoop` from *fault-oblivious* to
*self-healing*:

* **Parity-spaced IDs.**  Tenants are placed with
  :func:`~repro.core.idencoding.parity_ecn`-encoded classes, so any
  single bit flip in a stored ID either fails validity or fails
  parity — it can never alias another in-use equivalence class.  A
  forged edge therefore requires evidence the campaign can count.
* **Health monitoring.**  A :class:`~repro.service.health
  .ShardHealthMonitor` runs one circuit breaker per shard on the
  scheduler's logical clock, fed by batch commit/rollback outcomes,
  TxCheck escalations and a background integrity-scrub task.
* **Quarantine.**  A tripped shard is *fenced* (the shared
  :class:`~repro.vm.memory.TableMemory` generation stamp is bumped, so
  the PR 5 dispatch plane drops every fused check sequence cached
  against the poisoned bands) and stops serving updates; the coalescer
  parks its requests.  Checks stay readable — degradation, not outage.
  Parked requests keep their deadline budgets: if recovery cannot land
  in time they fail with ``deadline`` instead of hanging forever.
* **Recovery.**  After the breaker cooldown, the recovery task rebuilds
  the shard from the service's own load journal (the committed request
  log restricted to the shard's bands — the
  :class:`~repro.linker.dynamic_linker.LoadJournal` discipline applied
  service-side), re-installs it under a fresh per-shard update
  transaction, runs a parity-checked full-band
  :meth:`~repro.core.tables.IdTables.sweep`, verifies the band is
  byte-identical to a clean rebuild, probes one permitted pair through
  a real check transaction, and only then re-admits the shard and
  unparks its queue.  A failed probe re-quarantines with an escalated
  cooldown.
* **Negative checks.**  Tenants interleave forbidden (site, target)
  pairs with their normal load; an ALLOWED verdict on one is a forged
  edge — ``forged_allows`` is the campaign's undetected-corruption
  count and must be zero.

Requests are *parked*, never migrated: the co-residency invariant pins
a tenant's sites and targets to one shard's bands, so its update can
only ever land there.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.core.idencoding import pack_id, parity_ecn, parity_ecn_ok
from repro.core.tables import bary_index
from repro.core.transactions import (
    CheckResult,
    UpdateTransaction,
    tx_check_gen,
)
from repro.errors import TableIntegrityError
from repro.faults.plane import NULL_PLANE, FaultPlane
from repro.faults.service_injectors import (
    shard_bit_flip_storm,
    version_gap_storm,
)
from repro.obs import OBS
from repro.service.coalescer import COMMITTED
from repro.service.health import HealthPolicy, ShardHealthMonitor
from repro.service.loop import (
    ServiceLoop,
    ServiceReport,
    TenantSpec,
    WritesetTemplate,
)


@dataclass(frozen=True)
class ParityWritesetTemplate(WritesetTemplate):
    """A write-set template that installs parity-spaced ECNs.

    Same shape as the base template; only the encoding differs —
    ``ecn_base + cls`` is pushed through :func:`parity_ecn` so every
    installed class ID is Hamming-distance >= 2 from every other.
    """

    def instantiate(self, tary_base: int, site_base: int, ecn_base: int,
                    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        set_tary = {tary_base + offset: parity_ecn(ecn_base + cls)
                    for offset, cls in self.tary}
        set_bary = {site_base + offset: parity_ecn(ecn_base + cls)
                    for offset, cls in self.bary}
        return set_tary, set_bary


@dataclass
class ResilienceReport(ServiceReport):
    """A :class:`ServiceReport` plus the self-healing outcome."""

    parked: int = 0
    deadline_missed: int = 0
    invalid_requests: int = 0
    quarantines: int = 0
    recoveries: int = 0
    probes_failed: int = 0
    mttr_mean: float = 0.0
    mttr_max: int = 0
    #: Fraction of commit rounds in which every participating shard
    #: committed cleanly (quarantined shards don't participate — their
    #: requests park — so this measures the *serving* plane).
    availability: float = 1.0
    detected_corruptions: int = 0
    #: Corrupt words found and repaired by the final teardown sweep
    #: (landed after the last scrub pass; detected, never exploited).
    teardown_repairs: int = 0
    repaired_entries: int = 0
    negative_checks: int = 0
    forged_allows: int = 0
    rebuild_mismatches: int = 0
    rebuilds_verified: int = 0
    faults_injected: int = 0
    health_transitions: int = 0
    health_states: Dict[str, str] = field(default_factory=dict)

    @property
    def undetected_corruptions(self) -> int:
        """Forged edges admitted by a check transaction: must be 0.

        Every other corruption path is detected by construction —
        audits compare stored words against the trusted assignment,
        the teardown sweep zeroes strays, and parity-spaced ECNs turn
        single flips into invalid IDs.
        """
        return self.forged_allows

    def to_dict(self) -> dict:
        out = super().to_dict()
        out["undetected_corruptions"] = self.undetected_corruptions
        return out


class ResilientServiceLoop(ServiceLoop):
    """A :class:`ServiceLoop` wearing the self-healing plane.

    Everything still runs on the one seeded scheduler, so a chaos
    campaign — storms, quarantines, rebuilds and all — is a pure
    function of ``(seed, parameters)`` and replays byte-for-byte.
    """

    def __init__(self, tenants: int = 10, shards: int = 8,
                 seed: int = 0, churn: int = 2,
                 policy: Optional[HealthPolicy] = None,
                 deadline: Optional[int] = None,
                 negative_checks_per_gap: int = 1,
                 check_retry_budget: int = 64,
                 bitflip_storm: Optional[dict] = None,
                 stale_storm: Optional[dict] = None,
                 template: Optional[WritesetTemplate] = None,
                 fault_plane: FaultPlane = NULL_PLANE,
                 **kwargs) -> None:
        # The policy is consulted by _estimate_ticks() during the base
        # __init__, so it must exist first.
        self.policy = policy or HealthPolicy()
        template = template or WritesetTemplate.default()
        if not isinstance(template, ParityWritesetTemplate):
            template = ParityWritesetTemplate(
                template.tary, template.bary, template.checks,
                template.n_classes)
        super().__init__(tenants=tenants, shards=shards, seed=seed,
                         churn=churn, template=template,
                         fault_plane=fault_plane, **kwargs)
        self.check_retry_budget = check_retry_budget
        self.negative_checks_per_gap = negative_checks_per_gap
        self.request_retries = 2
        self.bitflip_storm = bitflip_storm
        self.stale_storm = stale_storm
        self.monitor = ShardHealthMonitor(
            self.sharded, clock=lambda: self.scheduler.ticks,
            policy=self.policy, seed=seed, fence=self._fence)
        self.coalescer.monitor = self.monitor
        # Always budget requests: a parked request must either commit
        # after recovery or fail its deadline — never hang the drain.
        self.coalescer.default_deadline = (
            deadline if deadline is not None
            else 6 * self.policy.cooldown_ticks)
        self.counters.update(negative_checks=0, forged_allows=0)
        self.fenced = 0
        self.repaired_entries = 0
        self.teardown_repairs = 0
        self.rebuild_mismatches = 0
        self.rebuilds_verified = 0

    def _estimate_ticks(self) -> int:
        # Room for every shard to ride out an escalated quarantine
        # cooldown (plus the rebuild itself) on top of the base load.
        policy = self.policy
        recovery = (policy.cooldown_ticks + policy.max_cooldown_ticks
                    + policy.jitter_ticks + 2000)
        return (super()._estimate_ticks()
                + 4 * recovery * len(self.sharded))

    # -- fencing -----------------------------------------------------------

    def _fence(self, index: int) -> None:
        """Invalidate every cached fast path against a poisoned shard.

        The PR 5 dispatch plane fuses check sequences against the
        current :class:`~repro.vm.memory.TableMemory` generation; a
        quarantined shard's bands can no longer back any of them.
        """
        self.memory.generation += 1
        self.fenced += 1
        if OBS.enabled:
            OBS.metrics.counter("service.health.fenced").inc()

    # -- negative check load ----------------------------------------------

    def _forbidden_pairs(self, spec: TenantSpec) -> List[Tuple[int, int]]:
        """(site, target) pairs of this tenant the CFG does *not* permit."""
        template = spec.template
        return [(spec.site_base + s_off, spec.tary_base + t_off)
                for s_off, s_cls in template.bary
                for t_off, t_cls in template.tary
                if s_cls != t_cls]

    def _extra_checks(self, spec: TenantSpec, rng: random.Random,
                      shard) -> Generator[None, None, None]:
        forbidden = self._forbidden_pairs(spec)
        if not forbidden:
            return
        for _ in range(self.negative_checks_per_gap):
            site, target = forbidden[rng.randrange(len(forbidden))]
            try:
                result, _ = yield from tx_check_gen(
                    shard.tables, site, target,
                    max_retries=self.check_retry_budget)
            except TableIntegrityError:
                self.counters["escalations"] += 1
                self.monitor.note_escalation(spec.shard)
            else:
                self.counters["negative_checks"] += 1
                if result == CheckResult.ALLOWED:
                    # A forged edge got through: the one inadmissible
                    # outcome.  Count it; the campaign gate is zero.
                    self.counters["forged_allows"] += 1
                    if OBS.enabled:
                        OBS.metrics.counter(
                            "service.forged_allows").inc()
            yield

    # -- co-scheduled resilience tasks ------------------------------------

    def _extra_tasks(self, tenant_tasks: list) -> list:
        def tenants_active() -> bool:
            return any(task.alive for task in tenant_tasks)

        def plane_active() -> bool:
            # Recovery (and the drain) must outlive the tenants while
            # queued or parked requests remain.
            return (tenants_active() or bool(self.coalescer.queue)
                    or bool(self.coalescer.parked_count))

        tasks = [
            (self.monitor.scrub_task(plane_active), "health/scrub"),
            (self._recovery_task(plane_active), "health/recovery"),
        ]
        storm_seed = self.seed * 0x9E3779B1 + 0xC2B2AE35
        if self.bitflip_storm is not None:
            opts = dict(seed=storm_seed & 0xFFFFFFFF)
            opts.update(self.bitflip_storm)
            tasks.append((shard_bit_flip_storm(
                self.sharded, self.fault_plane, tenants_active, **opts),
                "chaos/bitflip"))
        if self.stale_storm is not None:
            opts = dict(seed=(storm_seed ^ 0x5BD1E995) & 0xFFFFFFFF)
            opts.update(self.stale_storm)
            tasks.append((version_gap_storm(
                self.sharded, self.fault_plane, tenants_active, **opts),
                "chaos/stale"))
        return tasks

    # -- recovery ----------------------------------------------------------

    def _recovery_task(self, active: Callable[[], bool],
                       ) -> Generator[None, None, None]:
        """Scheduler task: rebuild quarantined shards after cooldown."""
        while active():
            for shard in self.sharded.shards:
                if self.monitor.ready_to_recover(shard.index) and \
                        self.monitor.begin_recovery(shard.index):
                    yield from self._recover_shard(shard)
            yield

    def _fold_committed(self, index: int,
                        ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Journal-driven rebuild: fold the committed request log.

        The coalescer's log is the service's load journal; replaying
        every *committed* delta restricted to this shard's bands
        reconstructs the trusted assignment from scratch, independent
        of the (possibly corrupted) in-memory bookkeeping.
        """
        shard = self.sharded.shards[index]
        tary: Dict[int, int] = {}
        bary: Dict[int, int] = {}
        for request in self.coalescer.log:
            if request.status != COMMITTED:
                continue
            for address, ecn in request.set_tary.items():
                if shard.owns_address(address):
                    tary[address] = ecn
            for address in request.clear_tary:
                if shard.owns_address(address):
                    tary.pop(address, None)
            for site, ecn in request.set_bary.items():
                if shard.owns_site(site):
                    bary[site] = ecn
            for site in request.clear_bary:
                if shard.owns_site(site):
                    bary.pop(site, None)
        return tary, bary

    def _recover_shard(self, shard) -> Generator[None, None, None]:
        index = shard.index
        span = OBS.tracer.begin("service.recovery", shard=index)
        # 1. Rebuild the trusted assignment from the load journal and
        #    cross-check the live bookkeeping against it (the journal
        #    wins: bookkeeping could have been corrupted too).
        tary, bary = self._fold_committed(index)
        if (tary != shard.tables.tary_ecns
                or bary != shard.tables.bary_ecns):
            self.rebuild_mismatches += 1
        yield
        # 2. Re-install it under a fresh per-shard update transaction:
        #    a version bump plus a rewrite of every tracked word, so
        #    any corrupt-but-tracked entry is overwritten.
        transaction = UpdateTransaction(
            shard.tables, shard.lock, new_tary=tary, new_bary=bary,
            batch=self.coalescer.batch, owner=f"recovery/shard{index}")
        for _ in transaction.run():
            yield
        # 3. Parity-checked sweep of the whole band: repairs anything
        #    the rewrite missed and zeroes forged strays in untracked
        #    words (invisible to a plain scrub).
        swept = shard.tables.sweep(
            tary_range=(shard.tary_lo, shard.tary_hi),
            site_range=(shard.site_lo, shard.site_hi))
        self.repaired_entries += swept["repaired"] + swept["strays"]
        yield
        # 4. Verify: audit clean, parity consistent, band byte-identical
        #    to a clean rebuild, and one permitted pair passes a real
        #    check transaction.
        ok = self._verify_band(shard)
        pair = self._probe_pair(shard)
        if ok and pair is not None:
            site, target = pair
            try:
                result, _ = yield from tx_check_gen(
                    shard.tables, site, target,
                    max_retries=self.check_retry_budget)
            except TableIntegrityError:
                ok = False
            else:
                ok = result == CheckResult.ALLOWED
        self.monitor.record_probe(index, ok)
        if ok:
            self.rebuilds_verified += 1
            requeued = self.coalescer.unpark(index)
            span.end(status="recovered", requeued=requeued,
                     repaired=swept["repaired"], strays=swept["strays"])
        else:
            span.end(status="probe-failed")

    def _verify_band(self, shard) -> bool:
        findings = shard.tables.audit()
        if findings["tary"] or findings["bary"]:
            return False
        tables = shard.tables
        for ecn in list(tables.tary_ecns.values()) + \
                list(tables.bary_ecns.values()):
            if not parity_ecn_ok(ecn):
                return False
        return self.band_bytes(shard) == self.expected_band_bytes(shard)

    def band_bytes(self, shard) -> Tuple[bytes, bytes]:
        """The shard's live (tary, bary) band bytes."""
        memory = shard.tables.memory
        return (bytes(memory.tary[shard.tary_lo:shard.tary_hi]),
                bytes(memory.bary[bary_index(shard.site_lo):
                                  bary_index(shard.site_hi)]))

    def expected_band_bytes(self, shard) -> Tuple[bytes, bytes]:
        """Band bytes a clean rebuild of the trusted assignment yields."""
        tables = shard.tables
        tary = bytearray(shard.tary_hi - shard.tary_lo)
        for address, ecn in tables.tary_ecns.items():
            word = pack_id(ecn, tables.version)
            offset = address - shard.tary_lo
            tary[offset:offset + 4] = word.to_bytes(4, "little")
        bary = bytearray(4 * (shard.site_hi - shard.site_lo))
        for site, ecn in tables.bary_ecns.items():
            word = pack_id(ecn, tables.version)
            offset = 4 * (site - shard.site_lo)
            bary[offset:offset + 4] = word.to_bytes(4, "little")
        return bytes(tary), bytes(bary)

    def _probe_pair(self, shard) -> Optional[Tuple[int, int]]:
        """First installed permitted pair on this shard, if any."""
        tables = shard.tables
        for spec in self.specs:
            if spec.shard != shard.index:
                continue
            for site, target in spec.template.check_pairs(
                    spec.tary_base, spec.site_base):
                if tables.bary_ecns.get(site) is not None and \
                        tables.bary_ecns.get(site) == \
                        tables.tary_ecns.get(target):
                    return site, target
        return None

    # -- reporting ---------------------------------------------------------

    def _availability(self) -> float:
        """Fraction of per-shard round commits that succeeded.

        Per shard-record, not per whole round: one torn shard must not
        mark its siblings' clean service unavailable — the guarantee is
        that *non-quarantined shards keep serving* (quarantined shards
        park their requests and never appear in a round at all).
        """
        records = [record for entry in self.coalescer.trace
                   for record in entry["shards"]]
        if not records:
            return 1.0
        ok = sum(1 for record in records if record["status"] == "ok")
        return ok / len(records)

    def _teardown_sweep(self) -> int:
        """Final full sweep: any corruption that landed after the last
        scrub pass is detected (and repaired) here, never silently
        carried out of the run."""
        repaired = 0
        for shard in self.sharded.shards:
            swept = shard.tables.sweep(
                tary_range=(shard.tary_lo, shard.tary_hi),
                site_range=(shard.site_lo, shard.site_hi))
            repaired += swept["repaired"] + swept["strays"]
        return repaired

    def _build_report(self, ticks: int) -> ServiceReport:
        base = super()._build_report(ticks)
        self.teardown_repairs = self._teardown_sweep()
        monitor = self.monitor
        mttrs = monitor.mttr_ticks()
        report = ResilienceReport(
            **base.__dict__,
            parked=self.coalescer.parked_total,
            deadline_missed=self.coalescer.deadline_missed,
            invalid_requests=self.coalescer.invalid,
            quarantines=monitor.quarantines,
            recoveries=len(monitor.recoveries),
            probes_failed=monitor.probes_failed,
            mttr_mean=(sum(mttrs) / len(mttrs)) if mttrs else 0.0,
            mttr_max=max(mttrs) if mttrs else 0,
            availability=self._availability(),
            detected_corruptions=(monitor.detected_corruptions
                                  + self.teardown_repairs),
            teardown_repairs=self.teardown_repairs,
            repaired_entries=self.repaired_entries,
            negative_checks=self.counters["negative_checks"],
            forged_allows=self.counters["forged_allows"],
            rebuild_mismatches=self.rebuild_mismatches,
            rebuilds_verified=self.rebuilds_verified,
            faults_injected=len(self.fault_plane.events),
            health_transitions=len(monitor.transitions),
            health_states={str(k): v for k, v in
                           sorted(monitor.states().items())})
        return report
