"""``repro.service`` — the multi-tenant CFI table service.

The paper's runtime serves exactly one process: a single Bary/Tary
table pair, one global update lock, one dlopen at a time.  This
subsystem turns that into a *table service* shared by many concurrent
tenants:

* :mod:`repro.service.shards` — :class:`ShardedIdTables`, the Bary/Tary
  tables partitioned by address range into shards, each with its own
  version counter and update lock, so updates to disjoint shards never
  serialize against each other;
* :mod:`repro.service.coalescer` — :class:`UpdateCoalescer`, a bounded
  queue of dlopen/dlclose write-sets that commits **one** batched
  update transaction per shard per round, with backpressure and
  snapshot rollback on partial failure;
* :mod:`repro.service.loop` — :class:`ServiceLoop`, a cooperative
  (seeded, deterministic, thread-free) admission loop that runs many
  tenants — each modeled on a :mod:`repro.infra` instance — issuing
  dlopen/dlclose churn and Fig.-4 check-transaction load against the
  shared shards.

``python -m repro service`` and ``benchmarks/bench_service.py`` drive
the loop at 10/100/1000 tenants and compare the sharded/batched path
against the paper's global-lock baseline.  See ``docs/SERVICE.md``.
"""

from repro.service.coalescer import (  # noqa: F401
    UpdateCoalescer,
    UpdateRequest,
)
from repro.service.health import (  # noqa: F401
    HealthPolicy,
    ShardHealthMonitor,
)
from repro.service.loop import (  # noqa: F401
    ServiceLoop,
    ServiceReport,
    TenantSpec,
    WritesetTemplate,
)
from repro.service.resilience import (  # noqa: F401
    ParityWritesetTemplate,
    ResilienceReport,
    ResilientServiceLoop,
)
from repro.service.shards import ShardedIdTables, TableShard  # noqa: F401
from repro.service.tenancy import (  # noqa: F401
    TenantChurn,
    churn_compile_latencies,
    tenant_source,
    writeset_from_program,
)

__all__ = [
    "ShardedIdTables", "TableShard",
    "UpdateCoalescer", "UpdateRequest",
    "ServiceLoop", "ServiceReport", "TenantSpec", "WritesetTemplate",
    "HealthPolicy", "ShardHealthMonitor",
    "ParityWritesetTemplate", "ResilienceReport", "ResilientServiceLoop",
    "TenantChurn", "churn_compile_latencies", "tenant_source",
    "writeset_from_program",
]
