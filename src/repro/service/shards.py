"""Sharded Bary/Tary tables: per-shard versions and update locks.

The paper serializes every update transaction on one global update
lock and one global version counter — its admitted scalability
ceiling.  :class:`ShardedIdTables` partitions the table address space
into ``shards`` contiguous bands; each :class:`TableShard` owns

* a Tary address range ``[tary_lo, tary_hi)``,
* a Bary site range ``[site_lo, site_hi)``,
* its **own** :class:`~repro.core.tables.IdTables` bookkeeping view
  (version counter, trusted ECN assignment, ABA update counter) over
  the *shared* :class:`~repro.vm.memory.TableMemory`, and
* its **own** :class:`~repro.core.transactions.UpdateLock`.

Because a shard's ``IdTables`` holds only the entries of its bands, an
unmodified :class:`~repro.core.transactions.UpdateTransaction` run
against it is exactly a per-shard Fig. 3 update: it bumps the shard's
version, rewrites the shard's entries, and zeroes the shard's stale
entries — never touching a neighbouring shard.  Every store still goes
through ``write_tary``/``write_bary`` on the shared memory, so the
PR 5 dispatch plane's ``TableMemory.generation`` stamp keeps
invalidating fused check sequences correctly no matter which shard
committed.

**Co-residency invariant.**  IDs packed in different shards carry
different version counters, so full-ID equality (a check transaction)
is only meaningful when a branch site and its permitted targets live
in the *same* shard.  The service therefore places each tenant's
entire band — branch sites and target addresses — inside one shard
(:meth:`ShardedIdTables.place`), and :meth:`split_writes` rejects a
write-set whose site/target pair would straddle shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.tables import IdTables, TableSnapshot
from repro.core.transactions import UpdateLock
from repro.errors import RuntimeError_
from repro.vm.memory import TableMemory


class TableShard:
    """One address-range shard of the shared ID tables."""

    def __init__(self, index: int, memory: TableMemory,
                 tary_lo: int, tary_hi: int,
                 site_lo: int, site_hi: int) -> None:
        self.index = index
        self.tary_lo = tary_lo
        self.tary_hi = tary_hi
        self.site_lo = site_lo
        self.site_hi = site_hi
        #: Per-shard bookkeeping over the shared table memory: its
        #: version counter and ECN dicts cover only this shard's bands,
        #: which is what makes a stock UpdateTransaction shard-local.
        self.tables = IdTables(memory)
        self.lock = UpdateLock()
        self.commits = 0
        self.rollbacks = 0

    def owns_address(self, address: int) -> bool:
        return self.tary_lo <= address < self.tary_hi

    def owns_site(self, site: int) -> bool:
        return self.site_lo <= site < self.site_hi

    def snapshot(self) -> TableSnapshot:
        """Byte-exact pre-commit snapshot of this shard's bands only."""
        return TableSnapshot(self.tables,
                             tary_range=(self.tary_lo, self.tary_hi),
                             site_range=(self.site_lo, self.site_hi))

    def stats(self) -> Dict[str, int]:
        out = self.tables.stats()
        out["shard"] = self.index
        out["commits"] = self.commits
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TableShard({self.index}, tary=[{self.tary_lo:#x},"
                f"{self.tary_hi:#x}), sites=[{self.site_lo},"
                f"{self.site_hi}), v{self.tables.version})")


@dataclass
class ShardDelta:
    """One shard's slice of a request's write-set."""

    set_tary: Dict[int, int]
    clear_tary: List[int]
    set_bary: Dict[int, int]
    clear_bary: List[int]

    @classmethod
    def empty(cls) -> "ShardDelta":
        return cls(set_tary={}, clear_tary=[], set_bary={},
                   clear_bary=[])

    @property
    def touched(self) -> int:
        return (len(self.set_tary) + len(self.clear_tary)
                + len(self.set_bary) + len(self.clear_bary))


class ShardedIdTables:
    """Facade over a :class:`TableMemory` partitioned into shards.

    The Tary byte range ``[0, tary_size)`` and the Bary site range
    ``[0, bary_entries)`` are each split into ``shards`` contiguous,
    equally sized bands; shard *i* owns band *i* of both.  Tenants are
    placed wholly inside one shard, so the per-shard version counters
    can advance independently without ever producing a cross-shard
    version mismatch in a check transaction.
    """

    def __init__(self, memory: Optional[TableMemory] = None,
                 shards: int = 8, bary_entries: int = 65536) -> None:
        if memory is None:
            memory = TableMemory(bary_entries=bary_entries)
        if shards < 1:
            raise RuntimeError_("shard count must be >= 1")
        if memory.tary_size // 4 < shards or \
                memory.bary_entries < shards:
            raise RuntimeError_(
                f"{shards} shards do not fit the table geometry")
        self.memory = memory
        # Band strides, 4-aligned for Tary so entries never straddle.
        self._tary_stride = (memory.tary_size // shards) & ~3
        self._site_stride = memory.bary_entries // shards
        self.shards: List[TableShard] = []
        for i in range(shards):
            tary_hi = (memory.tary_size if i == shards - 1
                       else (i + 1) * self._tary_stride)
            site_hi = (memory.bary_entries if i == shards - 1
                       else (i + 1) * self._site_stride)
            self.shards.append(TableShard(
                i, memory,
                tary_lo=i * self._tary_stride, tary_hi=tary_hi,
                site_lo=i * self._site_stride, site_hi=site_hi))

    def __len__(self) -> int:
        return len(self.shards)

    # -- placement ---------------------------------------------------------

    def shard_for_address(self, address: int) -> TableShard:
        if not 0 <= address < self.memory.tary_size:
            raise RuntimeError_(
                f"address {address:#x} outside the Tary table")
        return self.shards[min(address // self._tary_stride,
                               len(self.shards) - 1)]

    def shard_for_site(self, site: int) -> TableShard:
        if not 0 <= site < self.memory.bary_entries:
            raise RuntimeError_(f"site {site} outside the Bary table")
        return self.shards[min(site // self._site_stride,
                               len(self.shards) - 1)]

    def place(self, slot: int, tary_span: int,
              site_span: int) -> Tuple[int, int, int]:
        """Allocate tenant band ``slot`` wholly inside one shard.

        Tenants are striped round-robin across shards; within a shard,
        successive tenants stack at ``tary_span``/``site_span``
        intervals from the shard base.  Returns ``(shard_index,
        tary_base, site_base)`` or raises when the shard is full.
        """
        shard = self.shards[slot % len(self.shards)]
        level = slot // len(self.shards)
        tary_base = shard.tary_lo + level * _align4(tary_span)
        site_base = shard.site_lo + level * site_span
        if tary_base + tary_span > shard.tary_hi or \
                site_base + site_span > shard.site_hi:
            raise RuntimeError_(
                f"shard {shard.index} bands exhausted placing tenant "
                f"slot {slot}")
        return shard.index, tary_base, site_base

    # -- write-set splitting ----------------------------------------------

    def split_writes(self, set_tary: Mapping[int, int],
                     clear_tary: Iterable[int],
                     set_bary: Mapping[int, int],
                     clear_bary: Iterable[int],
                     ) -> Dict[int, ShardDelta]:
        """Partition one request's write-set into per-shard deltas.

        A single request *may* touch several shards (each slice commits
        in that shard's batched transaction), but its branch sites and
        target addresses must pairwise co-reside — the service layout
        guarantees this by construction, and a one-shard-per-request
        write-set is the common case.
        """
        out: Dict[int, ShardDelta] = {}

        def delta(shard: TableShard) -> ShardDelta:
            return out.setdefault(shard.index, ShardDelta.empty())

        for address, ecn in set_tary.items():
            delta(self.shard_for_address(address)).set_tary[address] = ecn
        for address in clear_tary:
            delta(self.shard_for_address(address)).clear_tary.append(
                address)
        for site, ecn in set_bary.items():
            delta(self.shard_for_site(site)).set_bary[site] = ecn
        for site in clear_bary:
            delta(self.shard_for_site(site)).clear_bary.append(site)
        return out

    # -- aggregate views ---------------------------------------------------

    def permitted(self, site: int, address: int) -> bool:
        """Would a quiescent check transaction allow site -> address?

        Reads the shared memory exactly like
        :meth:`repro.core.tables.IdTables.permitted`; meaningful only
        for co-resident pairs (cross-shard IDs never compare equal).
        """
        return self.shard_for_site(site).tables.permitted(site, address)

    def versions(self) -> List[int]:
        return [shard.tables.version for shard in self.shards]

    def decoded_state(self) -> Dict[str, Dict[int, int]]:
        """Version-independent view: every installed ECN by entry.

        The canonical "workload observable" for equivalence checks:
        two table states that decode identically admit exactly the
        same set of branches once quiescent, regardless of how many
        version bumps produced them.
        """
        tary: Dict[int, int] = {}
        bary: Dict[int, int] = {}
        for shard in self.shards:
            tary.update(shard.tables.tary_ecns)
            bary.update(shard.tables.bary_ecns)
        return {"tary": tary, "bary": bary}

    def audit(self) -> Dict[str, list]:
        """Cross-shard integrity audit (fault detection)."""
        bad_tary: list = []
        bad_bary: list = []
        for shard in self.shards:
            findings = shard.tables.audit()
            bad_tary.extend(findings["tary"])
            bad_bary.extend(findings["bary"])
        return {"tary": bad_tary, "bary": bad_bary}

    def stats(self) -> Dict[str, int]:
        out = {"shards": len(self.shards), "targets": 0,
               "branch_sites": 0, "commits": 0}
        for shard in self.shards:
            stats = shard.stats()
            out["targets"] += stats["targets"]
            out["branch_sites"] += stats["branch_sites"]
            out["commits"] += stats["commits"]
        return out


def _align4(value: int) -> int:
    return (value + 3) & ~3
