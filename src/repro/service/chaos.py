"""Chaos campaigns: the self-healing plane vs. the fault-oblivious one.

A campaign cell runs the *same* seeded fault schedule twice:

* the **resilient** leg — :class:`~repro.service.resilience
  .ResilientServiceLoop` with parity-spaced IDs, shard health breakers,
  quarantine/recovery and deadline budgets;
* the **baseline** leg — the plain PR 6 :class:`~repro.service.loop
  .ServiceLoop` wearing the same storms but no healing (no monitor, no
  scrub, no recovery, plain ECNs).

Both legs face five fault families, armed on one
:class:`~repro.faults.plane.FaultPlane` per leg with identical specs:

==========================  ==============================================
``service.commit``          torn batches: a shard's whole round dropped
``service.fault.bitflip``   single-bit flips in live stored IDs (storm)
``service.fault.stale``     version-gap storms (stuck retry signatures)
``service.request.poison``  malformed dlopen write-sets
``service.tenant.crash``    tenants dying mid-round, entries left behind
==========================  ==============================================

The cell reports availability (fraction of clean commit rounds), MTTR
(ticks from quarantine to verified recovery), the detected-corruption
ledger, and the campaign's one hard gate: **zero undetected
corruptions** (no forged edge ever admitted; every corrupt word
accounted for by an audit, a sweep, or the teardown pass).  The
baseline leg reports the corruption *residue* its oblivious tables
carry out of the run — the number the self-healing plane drives to
zero.

Everything is a pure function of ``(seed, parameters)``: two runs of
the same cell produce byte-identical tables, traces and artifacts.
``benchmarks/bench_service_chaos.py`` and ``python -m repro service
chaos`` consume this module; the artifact lands in
``benchmarks/results/service_chaos.txt``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.faults.plane import FaultPlane
from repro.faults.service_injectors import (
    shard_bit_flip_storm,
    version_gap_storm,
)
from repro.service.health import HealthPolicy
from repro.service.loop import ServiceLoop
from repro.service.resilience import ResilientServiceLoop

#: Health policy every campaign cell runs: quick quarantines (two
#: consecutive rollbacks), short first cooldown, tight scrub cadence.
CAMPAIGN_POLICY = HealthPolicy(rollback_threshold=2, cooldown_ticks=150,
                               cooldown_factor=2.0,
                               max_cooldown_ticks=2400,
                               scrub_interval=24)

#: Storm cadences (scheduler ticks between corruption attempts).
BITFLIP_INTERVAL = 20
STALE_INTERVAL = 35

#: TxCheck retry budget both legs run under (a deadline budget for
#: checks: a stuck retry signature must escalate, not spin for 4096
#: ticks).
CHECK_RETRY_BUDGET = 64

#: Availability floor a healing cell must clear (fraction of clean
#: per-shard commits, quarantined shards' parked rounds included).
AVAILABILITY_FLOOR = 0.90


def round_cap(tenants: int) -> int:
    """Blast-radius bound: max requests one commit round may carry.

    A torn batch drops at most one round per shard, so capping the
    round size caps how much offered load a single fault can take
    down — the campaign's main graceful-degradation lever."""
    return max(8, tenants // 8)


def fault_spec(tenants: int, churn: int) -> Dict[str, dict]:
    """Arm counts for one leg, scaled to the offered load."""
    return {
        "service.commit": dict(skip=2, count=max(2, tenants // 16)),
        "service.fault.bitflip": dict(count=max(2, tenants // 10)),
        "service.fault.stale": dict(count=max(1, tenants // 20)),
        "service.request.poison": dict(skip=3,
                                       count=max(1, tenants // 10)),
        "service.tenant.crash": dict(skip=5,
                                     count=max(1, tenants // 12)),
    }


def arm_chaos(plane: FaultPlane, tenants: int, churn: int) -> FaultPlane:
    for point, spec in sorted(fault_spec(tenants, churn).items()):
        plane.arm(point, **spec)
    return plane


class BaselineChaosLoop(ServiceLoop):
    """The no-resilience leg: same storms, no healing machinery."""

    def __init__(self, *args, bitflip_storm: Optional[dict] = None,
                 stale_storm: Optional[dict] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bitflip_storm = bitflip_storm
        self.stale_storm = stale_storm
        self.check_retry_budget = CHECK_RETRY_BUDGET

    def _extra_tasks(self, tenant_tasks: list) -> list:
        def tenants_active() -> bool:
            return any(task.alive for task in tenant_tasks)

        tasks = []
        storm_seed = self.seed * 0x9E3779B1 + 0xC2B2AE35
        if self.bitflip_storm is not None:
            opts = dict(seed=storm_seed & 0xFFFFFFFF)
            opts.update(self.bitflip_storm)
            tasks.append((shard_bit_flip_storm(
                self.sharded, self.fault_plane, tenants_active, **opts),
                "chaos/bitflip"))
        if self.stale_storm is not None:
            opts = dict(seed=(storm_seed ^ 0x5BD1E995) & 0xFFFFFFFF)
            opts.update(self.stale_storm)
            tasks.append((version_gap_storm(
                self.sharded, self.fault_plane, tenants_active, **opts),
                "chaos/stale"))
        return tasks


def _availability(loop: ServiceLoop) -> float:
    """Fraction of per-shard round commits that succeeded (the same
    metric :meth:`ResilientServiceLoop._availability` reports)."""
    records = [record for entry in loop.coalescer.trace
               for record in entry["shards"]]
    if not records:
        return 1.0
    ok = sum(1 for record in records if record["status"] == "ok")
    return ok / len(records)


def _baseline_residue(loop: ServiceLoop) -> int:
    """Corrupt words the oblivious leg carries out of the run."""
    residue = 0
    for shard in loop.sharded.shards:
        findings = shard.tables.audit()
        residue += len(findings["tary"]) + len(findings["bary"])
        swept = shard.tables.sweep(
            tary_range=(shard.tary_lo, shard.tary_hi),
            site_range=(shard.site_lo, shard.site_hi))
        residue += swept["strays"]
    return residue


def run_chaos_cell(tenants: int, shards: int = 4, seed: int = 0,
                   churn: int = 2,
                   policy: Optional[HealthPolicy] = None) -> dict:
    """One campaign cell: resilient and baseline legs, same faults."""
    policy = policy or CAMPAIGN_POLICY
    storms = dict(bitflip_storm=dict(interval=BITFLIP_INTERVAL),
                  stale_storm=dict(interval=STALE_INTERVAL))

    plane_r = arm_chaos(FaultPlane(seed=seed), tenants, churn)
    resilient = ResilientServiceLoop(
        tenants=tenants, shards=shards, seed=seed, churn=churn,
        policy=policy, check_retry_budget=CHECK_RETRY_BUDGET,
        max_round_requests=round_cap(tenants),
        fault_plane=plane_r, **storms)
    report = resilient.run()
    oracle_ok = (resilient.sharded.decoded_state()
                 == resilient.replay_serial())
    bands_ok = all(
        resilient.band_bytes(shard)
        == resilient.expected_band_bytes(shard)
        for shard in resilient.sharded.shards)

    plane_b = arm_chaos(FaultPlane(seed=seed), tenants, churn)
    baseline = BaselineChaosLoop(
        tenants=tenants, shards=shards, seed=seed, churn=churn,
        max_round_requests=round_cap(tenants),
        fault_plane=plane_b, **storms)
    base_report = baseline.run()

    cell = {
        "tenants": tenants, "shards": shards, "seed": seed,
        "churn": churn,
        "resilient": report.to_dict(),
        "resilient_oracle_ok": oracle_ok,
        "resilient_bands_ok": bands_ok,
        "baseline": {
            "committed": base_report.committed,
            "failed": base_report.failed,
            "rejected": base_report.rejected,
            "rounds": base_report.rounds,
            "escalations": base_report.escalations,
            "availability": _availability(baseline),
            "residual_corruptions": _baseline_residue(baseline),
            "faults_injected": len(plane_b.events),
            "ticks": base_report.ticks,
        },
        "events": [event.to_dict() for event in plane_r.events],
        "transitions": resilient.monitor.transitions,
    }
    return cell


def chaos_rows(tenant_counts: Sequence[int], seed: int,
               shards: int = 4, churn: int = 2) -> List[dict]:
    return [run_chaos_cell(tenants, shards=shards, seed=seed,
                           churn=churn)
            for tenants in tenant_counts]


def chaos_trace_jsonl(cells: List[dict]) -> str:
    """The campaign as canonical JSONL (sorted keys, one object per
    line): a config header, then per cell its fault events, health
    transitions and both legs' summaries.  Byte-identical across runs
    of the same seed and parameters — the CI golden artifact."""
    lines = []
    for cell in cells:
        header = {k: cell[k] for k in
                  ("tenants", "shards", "seed", "churn")}
        lines.append(json.dumps({"kind": "cell", **header},
                                sort_keys=True))
        for event in cell["events"]:
            lines.append(json.dumps({"kind": "fault", **event},
                                    sort_keys=True))
        for transition in cell["transitions"]:
            lines.append(json.dumps({"kind": "health", **transition},
                                    sort_keys=True))
        lines.append(json.dumps(
            {"kind": "resilient", **cell["resilient"],
             "oracle_ok": cell["resilient_oracle_ok"],
             "bands_ok": cell["resilient_bands_ok"]}, sort_keys=True))
        lines.append(json.dumps({"kind": "baseline",
                                 **cell["baseline"]}, sort_keys=True))
    return "\n".join(lines)


def cell_checks(cell: dict) -> List[tuple]:
    """The acceptance gates one cell must clear, as (name, ok) pairs."""
    r = cell["resilient"]
    return [
        ("undetected == 0", r["undetected_corruptions"] == 0),
        ("forged allows == 0", r["forged_allows"] == 0),
        (f"availability >= {AVAILABILITY_FLOOR:.2f}",
         r["availability"] >= AVAILABILITY_FLOOR),
        ("serial-replay oracle", cell["resilient_oracle_ok"]),
        ("bands byte-identical to clean rebuild",
         cell["resilient_bands_ok"]),
        ("recoveries verified",
         r["rebuilds_verified"] == r["recoveries"]),
    ]


def render_chaos_table(cells: List[dict], seed: int) -> str:
    """The ``service_chaos.txt`` artifact body."""
    lines = [
        f"Service chaos campaign: self-healing vs fault-oblivious "
        f"(seed {seed})",
        "Both legs face the same seeded faults: torn batches, bit-flip "
        "and stale-",
        "version storms, poisoned dlopens, mid-round tenant crashes.  "
        "avail is the",
        "fraction of clean per-shard commits (non-quarantined shards "
        "keep serving);",
        "mttr is quarantine-to-verified-recovery in",
        "scheduler ticks; undet is corruption admitted or missed "
        "(hard gate: 0);",
        "residue is corrupt words the oblivious baseline carries out "
        "of the run.",
        "",
        f"{'tenants':>7s} {'leg':>9s} {'avail':>6s} {'commit':>7s} "
        f"{'fail':>5s} {'ddl':>4s} {'quar':>5s} {'recov':>6s} "
        f"{'mttr':>11s} {'det':>4s} {'undet':>6s} {'residue':>8s}",
    ]
    for cell in cells:
        r = cell["resilient"]
        b = cell["baseline"]
        mttr = (f"{r['mttr_mean']:.0f}/{r['mttr_max']}"
                if r["recoveries"] else "-")
        lines.append(
            f"{cell['tenants']:7d} {'healing':>9s} "
            f"{r['availability']:6.2f} {r['committed']:7d} "
            f"{r['failed']:5d} {r['deadline_missed']:4d} "
            f"{r['quarantines']:5d} {r['recoveries']:6d} "
            f"{mttr:>11s} {r['detected_corruptions']:4d} "
            f"{r['undetected_corruptions']:6d} {'0':>8s}")
        lines.append(
            f"{cell['tenants']:7d} {'baseline':>9s} "
            f"{b['availability']:6.2f} {b['committed']:7d} "
            f"{b['failed']:5d} {'-':>4s} {'-':>5s} {'-':>6s} "
            f"{'-':>11s} {'-':>4s} {'-':>6s} "
            f"{b['residual_corruptions']:8d}")
    lines.append("")
    for cell in cells:
        checks = cell_checks(cell)
        verdict = "PASS" if all(ok for _, ok in checks) else "FAIL"
        failed = [name for name, ok in checks if not ok]
        suffix = "" if not failed else f"  ({', '.join(failed)})"
        lines.append(f"{cell['tenants']} tenants: {verdict}{suffix}")
    return "\n".join(lines)
