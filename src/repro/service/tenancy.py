"""Tenant compilation: dlopen churn wired through :mod:`repro.build`.

The service loop models each tenant as a stream of dlopen/dlclose
write-sets; this module closes the loop back to the *toolchain*: a
tenant's module is real TinyC source, its write-set template is derived
from the actually-compiled program's type-matching CFG, and each churn
event re-compiles the (slightly edited) module before its dlopen — the
paper's §5 assumption that re-instrumentation keeps up with TxUpdate,
made measurable.

Two compile paths are compared by ``bench_service.py``:

* **legacy** — every churn event pays a cold
  :func:`repro.build.build_program` (what ``compile_and_link`` did);
* **session** — every tenant owns a :class:`repro.build.BuildSession`
  (optionally sharing one unit cache), so a churn edit is an
  incremental single-unit rebuild spliced into the previous link.

:class:`TenantChurn` is one tenant's compile stream;
:func:`churn_compile_latencies` drives a fleet of them and returns the
per-event latencies the benchmark cell reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.build import BuildResult, BuildSession, build_program
from repro.obs import clock
from repro.service.loop import WritesetTemplate

#: One tenant's module: a tiny library with two equivalence classes of
#: address-taken functions (``long(long)`` and ``int(int)``), a
#: dispatcher exercising both indirect-call sites, and a ``version``
#: body that churn events edit — the single dirty unit per event.
TENANT_MODULE_TEMPLATE = """
long t{tenant}_scale(long x) {{ return x * {tenant} + 1; }}
long t{tenant}_shift(long x) {{ return x + {tenant}; }}
int t{tenant}_pos(int k) {{ return k > 0; }}
int t{tenant}_neg(int k) {{ return k < 0; }}

long t{tenant}_version(void) {{ return {version}; }}

int main(void) {{
    long (*op)(long);
    int (*cmp)(int);
    if (t{tenant}_version() > 0) {{ op = t{tenant}_scale; }}
    else {{ op = t{tenant}_shift; }}
    if (op(2) > 2) {{ cmp = t{tenant}_pos; }}
    else {{ cmp = t{tenant}_neg; }}
    return cmp((int) op(1));
}}
"""


def tenant_source(tenant: int, version: int = 1) -> str:
    """The tenant's module text at one churn version."""
    return TENANT_MODULE_TEMPLATE.format(tenant=tenant, version=version)


def writeset_from_program(program) -> WritesetTemplate:
    """Derive a :class:`WritesetTemplate` from a compiled program.

    Target entries come from the CFG's Tary classes (address-taken
    function entries, re-based to offset 0), branch sites from its Bary
    classes, and the permitted check pairs from ECN equality — the
    tenant's dlopen installs exactly what its compiled module's
    type-matching CFG says it should.
    """
    from repro.cfg.generator import generate_cfg
    cfg = generate_cfg(program.module.aux)
    ecns = sorted({*cfg.tary_ecns.values(), *cfg.bary_ecns.values()})
    renumber = {ecn: index for index, ecn in enumerate(ecns)}
    base = program.module.base
    tary = tuple(sorted((addr - base, renumber[ecn])
                        for addr, ecn in cfg.tary_ecns.items()))
    bary = tuple(sorted((site, renumber[ecn])
                        for site, ecn in cfg.bary_ecns.items()))
    checks = tuple(sorted(
        (site, addr - base)
        for site, site_ecn in cfg.bary_ecns.items()
        for addr, target_ecn in cfg.tary_ecns.items()
        if site_ecn == target_ecn))
    return WritesetTemplate(tary=tary, bary=bary, checks=checks,
                            n_classes=len(ecns))


class TenantChurn:
    """One tenant's compile stream: an edit per churn event.

    ``session=None`` selects the legacy path (a cold
    :func:`build_program` per event); otherwise every event goes
    through the shared-state session and lands as a warm or
    incremental rebuild.
    """

    def __init__(self, tenant: int, arch: str = "x64",
                 cache=None, legacy: bool = False):
        self.tenant = tenant
        self.name = f"tenant{tenant}"
        self.arch = arch
        self.cache = cache
        self.session: Optional[BuildSession] = None
        if not legacy:
            self.session = BuildSession(arch=arch, mcfi=True, cache=cache)
        self._version = 0

    def churn_once(self) -> BuildResult:
        """Compile the next version of this tenant's module."""
        self._version += 1
        source = tenant_source(self.tenant, self._version)
        if self.session is None:
            return build_program({self.name: source}, arch=self.arch,
                                 cache=self.cache)
        return self.session.build({self.name: source})


def churn_compile_latencies(tenants: int, rounds: int,
                            cache=None, legacy: bool = False,
                            ) -> Dict[str, object]:
    """Per-event compile latencies for a fleet of churning tenants.

    Returns ``{"seconds": [...], "kinds": {...}}`` over
    ``tenants * rounds`` churn events, in tenant-major order.
    """
    fleet = [TenantChurn(tenant, cache=cache, legacy=legacy)
             for tenant in range(tenants)]
    seconds: List[float] = []
    kinds: Dict[str, int] = {}
    for _ in range(rounds):
        for churn in fleet:
            start = clock.now()
            result = churn.churn_once()
            seconds.append(clock.now() - start)
            kinds[result.kind] = kinds.get(result.kind, 0) + 1
    return {"seconds": seconds, "kinds": kinds}
