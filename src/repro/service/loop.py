"""The multi-tenant admission loop: N tenants, shared sharded tables.

:class:`ServiceLoop` is the subsystem's top level.  It models the
paper's runtime as a *service*: many tenants — each standing in for one
:mod:`repro.infra` registry instance churning dlopen/dlclose — share
one :class:`~repro.vm.memory.TableMemory` behind a
:class:`~repro.service.shards.ShardedIdTables`, and every table
mutation goes through one :class:`~repro.service.coalescer
.UpdateCoalescer`.

Everything runs on the seeded cooperative
:class:`~repro.vm.scheduler.Scheduler` — no threads, one atomic action
per step — so a run is a pure function of ``(seed, parameters)``:
latencies, retry counts, shard versions and the coalescer trace are all
replayable bit-for-bit.

Each tenant task loops ``churn`` times:

1. *think* for a seeded number of steps,
2. submit a **dlopen** write-set (install its band's ECNs), yielding
   under :class:`~repro.errors.ServiceBackpressure` until accepted,
3. wait for the batched commit, then issue ``checks_per_gap`` Fig.-4
   check transactions (:func:`~repro.core.transactions.tx_check_gen`)
   against its shard — the TxCheck retry load of the benchmark,
4. submit the matching **dlclose** (clear the band) and wait again.

``mode="global"`` collapses the service to the paper's baseline: one
shard (a single global version counter and update lock) and one
transaction per request, no batching — the comparison leg for
``bench_service.py``.

:func:`ServiceLoop.replay_serial` is the correctness oracle: it
re-applies the committed request log one-transaction-per-request on a
fresh identical geometry and returns the version-independent decoded
state, which must equal the live tables' — batching and sharding may
change *when* updates land, never *what* they install.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.transactions import (
    DEFAULT_CHECK_RETRIES,
    CheckResult,
    UpdateTransaction,
    tx_check_gen,
)
from repro.errors import (
    RuntimeError_,
    ServiceBackpressure,
    TableIntegrityError,
)
from repro.faults.plane import NULL_PLANE, FaultPlane
from repro.obs import OBS
from repro.service.coalescer import COMMITTED, UpdateCoalescer, UpdateRequest
from repro.service.shards import ShardedIdTables
from repro.vm.memory import TableMemory
from repro.vm.scheduler import Scheduler


@dataclass(frozen=True)
class WritesetTemplate:
    """The shape of one tenant's module: entries relative to its band.

    ``tary`` lists ``(byte_offset, class_index)`` target entries,
    ``bary`` lists ``(site_offset, class_index)`` branch sites, and
    ``checks`` pairs ``(site_offset, tary_offset)`` that the CFG
    permits — the tenant's check-transaction load draws from these.
    Offsets are relative to the tenant's placed band; class indices are
    relative to its ECN base, so the same template instantiates at any
    placement.
    """

    tary: Tuple[Tuple[int, int], ...]
    bary: Tuple[Tuple[int, int], ...]
    checks: Tuple[Tuple[int, int], ...]
    n_classes: int

    @classmethod
    def default(cls) -> "WritesetTemplate":
        """A small module: two equivalence classes, four functions
        reachable from four call sites (two sites per class)."""
        return cls(
            tary=((0, 0), (4, 0), (8, 1), (12, 1)),
            bary=((0, 0), (1, 0), (2, 1), (3, 1)),
            checks=((0, 0), (0, 4), (1, 0), (2, 8), (3, 12)),
            n_classes=2,
        )

    @property
    def tary_span(self) -> int:
        """Bytes of Tary band this template needs."""
        return max(offset for offset, _ in self.tary) + 4

    @property
    def site_span(self) -> int:
        """Bary sites this template needs."""
        return max(offset for offset, _ in self.bary) + 1

    def instantiate(self, tary_base: int, site_base: int, ecn_base: int,
                    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Concrete ``(set_tary, set_bary)`` write-sets at a placement."""
        set_tary = {tary_base + offset: ecn_base + cls
                    for offset, cls in self.tary}
        set_bary = {site_base + offset: ecn_base + cls
                    for offset, cls in self.bary}
        return set_tary, set_bary

    def check_pairs(self, tary_base: int, site_base: int,
                    ) -> List[Tuple[int, int]]:
        """Permitted ``(site, target)`` pairs at a placement."""
        return [(site_base + site, tary_base + target)
                for site, target in self.checks]


@dataclass
class TenantSpec:
    """One admitted tenant: its placement inside the sharded tables."""

    name: str
    slot: int
    shard: int
    tary_base: int
    site_base: int
    ecn_base: int
    template: WritesetTemplate

    def writes(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        return self.template.instantiate(
            self.tary_base, self.site_base, self.ecn_base)


@dataclass
class ServiceReport:
    """Aggregate outcome of one :meth:`ServiceLoop.run`."""

    tenants: int
    shards: int
    mode: str
    seed: int
    churn: int
    ticks: int = 0
    committed: int = 0
    failed: int = 0
    rejected: int = 0
    rounds: int = 0
    transactions: int = 0
    coalescing_factor: float = 0.0
    backpressure_waits: int = 0
    checks: int = 0
    checks_allowed: int = 0
    check_retries: int = 0
    escalations: int = 0
    latency_mean: float = 0.0
    latency_p50: int = 0
    latency_p99: int = 0
    shard_versions: List[int] = field(default_factory=list)
    latencies: List[int] = field(default_factory=list)

    @property
    def retry_rate(self) -> float:
        """TxCheck retries per check transaction."""
        return self.check_retries / self.checks if self.checks else 0.0

    def to_dict(self) -> dict:
        out = {key: value for key, value in self.__dict__.items()
               if key != "latencies"}
        out["retry_rate"] = self.retry_rate
        return out


def _percentile(values: List[int], fraction: float) -> int:
    """Nearest-rank percentile of a sorted copy (0 for empty input)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[rank]


class ServiceLoop:
    """Cooperative multi-tenant admission loop over sharded ID tables.

    ``mode="sharded"`` is the subsystem under test; ``mode="global"``
    forces the paper's baseline (one shard, one transaction per
    request, no batching window) for like-for-like latency comparison.
    Both run the *same* tenant tasks on the *same* seeded scheduler.
    """

    def __init__(self, tenants: int = 10, shards: int = 8,
                 seed: int = 0, churn: int = 2, think: int = 4,
                 checks_per_gap: int = 4, window: int = 4,
                 batch: int = 64, max_pending: Optional[int] = None,
                 max_round_requests: Optional[int] = None,
                 mode: str = "sharded",
                 template: Optional[WritesetTemplate] = None,
                 fault_plane: FaultPlane = NULL_PLANE,
                 bary_entries: int = 65536,
                 max_ticks: Optional[int] = None) -> None:
        if mode not in ("sharded", "global"):
            raise RuntimeError_(f"unknown service mode {mode!r}")
        if mode == "global":
            shards = 1
            window = 0
            max_round_requests = 1
        self.mode = mode
        self.seed = seed
        self.churn = churn
        self.think = max(1, think)
        self.checks_per_gap = checks_per_gap
        self.n_tenants = tenants
        self.template = template or WritesetTemplate.default()
        self.fault_plane = fault_plane
        #: Shard health monitor; None in the base loop, wired by
        #: :class:`~repro.service.resilience.ResilientServiceLoop`.
        self.monitor = None
        #: TxCheck retry budget per check (the resilient loop shrinks
        #: it: under deadline budgets a stuck check must escalate into
        #: quarantine evidence quickly, not spin for 4096 ticks).
        self.check_retry_budget = DEFAULT_CHECK_RETRIES
        #: Resubmissions a tenant grants a failed (rolled-back or
        #: deadline-lapsed) request.  0 in the base loop — the
        #: resilient loop raises it so transient faults cost a retry,
        #: not the whole round of work.
        self.request_retries = 0
        self.memory = TableMemory(bary_entries=bary_entries)
        self.sharded = ShardedIdTables(self.memory, shards=shards)
        self.coalescer = UpdateCoalescer(
            self.sharded,
            max_pending=max_pending or max(16, 2 * tenants),
            batch=batch, window=window,
            max_round_requests=max_round_requests,
            fault_plane=fault_plane)
        self.specs = [self._place_tenant(slot) for slot in range(tenants)]
        self.max_ticks = max_ticks or self._estimate_ticks()
        self.counters = {"backpressure_waits": 0, "checks": 0,
                         "checks_allowed": 0, "check_retries": 0,
                         "escalations": 0}
        self.scheduler = Scheduler(seed=seed)
        self.report: Optional[ServiceReport] = None

    def _place_tenant(self, slot: int) -> TenantSpec:
        shard, tary_base, site_base = self.sharded.place(
            slot, self.template.tary_span, self.template.site_span)
        # ECNs need only be disjoint *within* a shard (cross-shard IDs
        # never compare equal), so the 14-bit budget is spent per shard:
        # tenants stacked in the same shard get successive class blocks.
        level = slot // len(self.sharded)
        ecn_base = 1 + level * self.template.n_classes
        return TenantSpec(
            name=f"tenant{slot}", slot=slot, shard=shard,
            tary_base=tary_base, site_base=site_base,
            ecn_base=ecn_base, template=self.template)

    def _estimate_ticks(self) -> int:
        # Worst case is the global baseline: every request serializes a
        # full-table rewrite.  Generous headroom; a genuine livelock
        # still terminates via the scheduler's max_ticks VMError.
        per_round = (self.think + self.checks_per_gap + 20) * 4
        per_txn = 8 * (len(self.template.tary) + len(self.template.bary))
        work = self.n_tenants * self.churn * (per_round + 2 * per_txn
                                              + per_txn * self.n_tenants)
        return max(200_000, 20 * work)

    # -- tenant task -------------------------------------------------------

    def _submit(self, request: UpdateRequest,
                ) -> Generator[None, None, None]:
        """Submit with cooperative backpressure: yield-and-retry."""
        while True:
            try:
                self.coalescer.submit(request, tick=self.scheduler.ticks)
                return
            except ServiceBackpressure:
                self.counters["backpressure_waits"] += 1
                yield

    def _tenant(self, spec: TenantSpec, rng_seed: int,
                ) -> Generator[None, None, None]:
        rng = random.Random(rng_seed)
        shard = self.sharded.shards[spec.shard]
        set_tary, set_bary = spec.writes()
        pairs = spec.template.check_pairs(spec.tary_base, spec.site_base)
        seq = 0
        for _ in range(self.churn):
            for _ in range(1 + rng.randrange(self.think)):
                yield
            request = UpdateRequest(
                tenant=spec.name, kind="dlopen", seq=seq,
                set_tary=set_tary, set_bary=set_bary)
            if self.fault_plane.should("service.request.poison",
                                       detail=spec.name):
                # A corrupted dlopen request: misaligned Tary address.
                # Admission validation must fail it at the door instead
                # of letting it crash the whole commit round.
                request = UpdateRequest(
                    tenant=spec.name, kind="dlopen", seq=seq,
                    set_tary={spec.tary_base + 1: spec.ecn_base},
                    set_bary=set_bary)
            seq += 1
            yield from self._submit(request)
            while not request.done:
                yield
            retries = 0
            while request.status != COMMITTED and \
                    retries < self.request_retries:
                # A rolled-back (or deadline-lapsed, or poisoned)
                # dlopen is retried with a clean write-set and a fresh
                # sequence number: transient faults cost one retry,
                # not the tenant's whole round.
                retries += 1
                request = UpdateRequest(
                    tenant=spec.name, kind="dlopen", seq=seq,
                    set_tary=set_tary, set_bary=set_bary)
                seq += 1
                yield from self._submit(request)
                while not request.done:
                    yield
            if request.status != COMMITTED:
                continue  # rolled back: nothing installed, nothing to close
            if self.fault_plane.should("service.tenant.crash",
                                       detail=spec.name):
                # Mid-round crash: the tenant dies after its dlopen
                # committed and never issues checks or the matching
                # dlclose — its entries stay installed (the service
                # must keep serving everyone else regardless).
                return
            for _ in range(self.checks_per_gap):
                site, target = pairs[rng.randrange(len(pairs))]
                try:
                    result, retries = yield from tx_check_gen(
                        shard.tables, site, target,
                        max_retries=self.check_retry_budget)
                except TableIntegrityError:
                    self.counters["escalations"] += 1
                    if self.monitor is not None:
                        self.monitor.note_escalation(spec.shard)
                else:
                    self.counters["checks"] += 1
                    self.counters["check_retries"] += retries
                    if result == CheckResult.ALLOWED:
                        self.counters["checks_allowed"] += 1
                yield
            yield from self._extra_checks(spec, rng, shard)
            close = UpdateRequest(
                tenant=spec.name, kind="dlclose", seq=seq,
                clear_tary=tuple(set_tary), clear_bary=tuple(set_bary))
            seq += 1
            yield from self._submit(close)
            while not close.done:
                yield
            retries = 0
            while close.status != COMMITTED and \
                    retries < self.request_retries:
                retries += 1
                close = UpdateRequest(
                    tenant=spec.name, kind="dlclose", seq=seq,
                    clear_tary=tuple(set_tary),
                    clear_bary=tuple(set_bary))
                seq += 1
                yield from self._submit(close)
                while not close.done:
                    yield

    def _extra_checks(self, spec: TenantSpec, rng: random.Random,
                      shard) -> Generator[None, None, None]:
        """Extra per-gap check load; the base loop issues none.

        The resilient subclass issues *negative* checks here —
        (site, target) pairs the CFG forbids — whose only acceptable
        outcome is a disallow: an ALLOWED result is a forged edge, the
        one inadmissible event of the whole chaos campaign.
        """
        return
        yield  # pragma: no cover - makes this a generator function

    # -- the run -----------------------------------------------------------

    def _extra_tasks(self, tenant_tasks: list) -> list:
        """``(generator, name)`` pairs to co-schedule with the tenants.

        The base loop adds none; the resilient subclass registers its
        scrub, recovery and chaos-injector tasks here so they ride the
        same seeded scheduler as everything else.
        """
        return []

    def run(self) -> ServiceReport:
        span = OBS.tracer.begin("service.run", mode=self.mode,
                                tenants=self.n_tenants,
                                shards=len(self.sharded), seed=self.seed)
        tenant_tasks = []
        for spec in self.specs:
            # Composed integer seed (no hash()): deterministic across
            # processes and PYTHONHASHSEED values.
            rng_seed = self.seed * 0x9E3779B1 + 0x85EBCA6B * (spec.slot + 1)
            task = self.scheduler.add_generator(
                self._tenant(spec, rng_seed), name=f"tenant/{spec.name}")
            tenant_tasks.append(task)
        self.scheduler.add_generator(
            self.coalescer.drain(
                active=lambda: any(t.alive for t in tenant_tasks),
                clock=lambda: self.scheduler.ticks),
            name="coalescer")
        for generator, name in self._extra_tasks(tenant_tasks):
            self.scheduler.add_generator(generator, name=name)
        outcome = self.scheduler.run(max_ticks=self.max_ticks)
        if outcome.fault is not None:
            raise outcome.fault
        report = self._build_report(outcome.ticks)
        span.end(ticks=report.ticks, committed=report.committed,
                 coalescing=report.coalescing_factor,
                 escalations=report.escalations)
        self.report = report
        return report

    def _build_report(self, ticks: int) -> ServiceReport:
        coalescer = self.coalescer
        latencies = [request.latency_ticks for request in coalescer.log
                     if request.status == COMMITTED
                     and request.latency_ticks >= 0]
        counters = self.counters
        report = ServiceReport(
            tenants=self.n_tenants, shards=len(self.sharded),
            mode=self.mode, seed=self.seed, churn=self.churn,
            ticks=ticks,
            committed=coalescer.committed, failed=coalescer.failed,
            rejected=coalescer.rejected, rounds=coalescer.rounds,
            transactions=coalescer.transactions,
            coalescing_factor=coalescer.coalescing_factor,
            backpressure_waits=counters["backpressure_waits"],
            checks=counters["checks"],
            checks_allowed=counters["checks_allowed"],
            check_retries=counters["check_retries"],
            escalations=counters["escalations"],
            latency_mean=(sum(latencies) / len(latencies)
                          if latencies else 0.0),
            latency_p50=_percentile(latencies, 0.50),
            latency_p99=_percentile(latencies, 0.99),
            shard_versions=self.sharded.versions(),
            latencies=latencies)
        return report

    # -- serial oracle -----------------------------------------------------

    def replay_serial(self) -> Dict[str, Dict[int, int]]:
        """Replay the committed log one-transaction-per-request, serially.

        Builds a fresh :class:`ShardedIdTables` with identical geometry
        and applies every *committed* request in submission order, each
        as its own fully-drained update transaction — the unbatched,
        unconcurrent execution.  Returns its version-independent
        decoded state; equality with ``self.sharded.decoded_state()``
        is the bit-identical-observables acceptance check.
        """
        replay = ShardedIdTables(
            TableMemory(bary_entries=self.memory.bary_entries),
            shards=len(self.sharded))
        for request in self.coalescer.log:
            if request.status != COMMITTED:
                continue
            deltas = replay.split_writes(
                request.set_tary, request.clear_tary,
                request.set_bary, request.clear_bary)
            for index in sorted(deltas):
                shard = replay.shards[index]
                delta = deltas[index]
                tary = dict(shard.tables.tary_ecns)
                bary = dict(shard.tables.bary_ecns)
                for address in delta.clear_tary:
                    tary.pop(address, None)
                for site in delta.clear_bary:
                    bary.pop(site, None)
                tary.update(delta.set_tary)
                bary.update(delta.set_bary)
                transaction = UpdateTransaction(
                    shard.tables, shard.lock, new_tary=tary,
                    new_bary=bary, owner="serial-replay")
                for _ in transaction.run():
                    pass
        return replay.decoded_state()
