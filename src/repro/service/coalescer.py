"""Batched, coalesced update transactions over sharded ID tables.

The paper commits one update transaction per dlopen.  Under multi
tenant churn that serializes every load on the update lock; the
``ablation_update_batch.txt`` probe already showed that batching
table stores is nearly free.  :class:`UpdateCoalescer` generalizes the
probe into the commit path itself:

* tenants :meth:`submit` :class:`UpdateRequest` write-sets into a
  **bounded** FIFO queue (:class:`~repro.errors.ServiceBackpressure`
  pushes back when commits fall behind);
* the coalescer's :meth:`drain` task wakes, optionally holds a short
  batching window so concurrent requests pile up, then commits **one**
  :class:`~repro.core.transactions.UpdateTransaction` per shard per
  round — every queued request for that shard rides the same version
  bump and the same table rewrite;
* a shard commit that fails mid-flight (fault plane) is rolled back
  byte-exactly from the shard's pre-round
  :class:`~repro.core.tables.TableSnapshot` — the same journal
  machinery the dynamic linker's transactional dlopen uses — and only
  that shard's requests fail; other shards' batches are unaffected.

Everything is deterministic under the service loop's seeded scheduler:
no wall clock, no thread, no unordered iteration.  The per-round
``trace`` is the replayable record the determinism tests and the CI
byte-identity check consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.core.idencoding import MAX_ECN
from repro.core.transactions import UpdateTransaction
from repro.errors import (
    DeadlineExceeded,
    InjectedFault,
    ServiceBackpressure,
)
from repro.faults.plane import NULL_PLANE, FaultPlane
from repro.obs import OBS
from repro.service.shards import ShardedIdTables

#: Request lifecycle states.  ``deadline`` is terminal: the request's
#: logical-clock budget lapsed before a commit could land (PR 7).
PENDING, COMMITTED, FAILED = "pending", "committed", "failed"
DEADLINE = "deadline"


@dataclass
class UpdateRequest:
    """One tenant-issued table mutation (a dlopen or dlclose delta).

    ``set_*`` install ECNs; ``clear_*`` remove entries (the unload
    path).  The write-set is a *delta* against the tenant's band — the
    coalescer merges deltas onto each shard's current assignment in
    arrival order, so a round commits exactly the state serial
    execution of its requests would have produced.
    """

    tenant: str
    kind: str                       # "dlopen" | "dlclose"
    seq: int                        # per-tenant sequence number
    set_tary: Dict[int, int] = field(default_factory=dict)
    clear_tary: Tuple[int, ...] = ()
    set_bary: Dict[int, int] = field(default_factory=dict)
    clear_bary: Tuple[int, ...] = ()
    submitted_tick: int = -1
    completed_tick: int = -1
    #: Logical-clock deadline: the request fails with status
    #: ``deadline`` if still uncommitted past this tick (-1 = none).
    deadline_tick: int = -1
    status: str = PENDING
    error: Optional[str] = None
    #: Stable :class:`~repro.errors.ReproError` code for ``error``.
    error_code: Optional[str] = None

    @property
    def id(self) -> str:
        return f"{self.tenant}/{self.seq}"

    @property
    def done(self) -> bool:
        return self.status != PENDING

    @property
    def latency_ticks(self) -> int:
        if self.completed_tick < 0 or self.submitted_tick < 0:
            return -1
        return self.completed_tick - self.submitted_tick


class UpdateCoalescer:
    """Bounded queue + one batched update transaction per shard per round.

    ``window`` is the batching window: once the queue is non-empty the
    drain task waits that many additional wakeups before committing,
    letting concurrent tenants join the round (each wakeup spans many
    scheduler steps, so even a small window coalesces a burst).
    ``max_round_requests=1`` with a single shard degenerates to the
    paper's global-lock, one-transaction-per-dlopen baseline — the
    comparison leg of ``bench_service.py``.
    """

    def __init__(self, sharded: ShardedIdTables,
                 max_pending: int = 256, batch: int = 64,
                 window: int = 4,
                 max_round_requests: Optional[int] = None,
                 fault_plane: FaultPlane = NULL_PLANE) -> None:
        self.sharded = sharded
        self.max_pending = max_pending
        self.batch = batch
        self.window = window
        self.max_round_requests = max_round_requests
        self.fault_plane = fault_plane
        self.queue: List[UpdateRequest] = []
        #: Every request ever accepted, in submission order (the serial
        #: replay oracle consumes this).
        self.log: List[UpdateRequest] = []
        self.rounds = 0
        self.transactions = 0
        self.committed = 0
        self.failed = 0
        self.rejected = 0
        #: Deterministic per-round record (JSONL-able, replayable).
        self.trace: List[dict] = []
        # -- PR 7 resilience hooks (inert unless a monitor is wired) --
        #: Per-shard health monitor; when set, requests targeting a
        #: non-serving (quarantined/recovering) shard are parked
        #: instead of committed, and commit/rollback outcomes feed it.
        self.monitor = None
        #: Default deadline budget in scheduler ticks for requests
        #: submitted without one (None = no deadlines).
        self.default_deadline: Optional[int] = None
        #: Parked requests by shard index, awaiting recovery.
        self.parked: Dict[int, List[UpdateRequest]] = {}
        self.parked_total = 0
        self.deadline_missed = 0
        self.invalid = 0

    # -- submission --------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self.queue)

    @property
    def parked_count(self) -> int:
        return sum(len(waiting) for waiting in self.parked.values())

    def _validate(self, request: UpdateRequest) -> Optional[str]:
        """Admission control: reject a malformed (poisoned) write-set.

        A request that would blow up mid-round — a misaligned Tary
        address, an out-of-band entry, an unpackable ECN — must fail
        *at the door*, not crash the round it rides with innocent
        siblings (the ``dlopen.poison`` chaos injector drives this).
        """
        memory = self.sharded.memory
        for address in list(request.set_tary) + list(request.clear_tary):
            if address % 4:
                return f"misaligned tary address {address:#x}"
            if not 0 <= address < memory.tary_size:
                return f"tary address {address:#x} outside the table"
        for site in list(request.set_bary) + list(request.clear_bary):
            if not 0 <= site < memory.bary_entries:
                return f"bary site {site} outside the table"
        for ecn in list(request.set_tary.values()) + \
                list(request.set_bary.values()):
            if not 0 <= ecn <= MAX_ECN:
                return f"ECN {ecn} out of 14-bit range"
        return None

    def submit(self, request: UpdateRequest, tick: int = -1) -> None:
        """Queue a request; raises :class:`ServiceBackpressure` if full.

        A request failing admission validation is marked ``failed``
        immediately (it never enters the queue) — the submitter sees it
        ``done`` with an ``invalid-request`` error instead of a crashed
        commit round.
        """
        error = self._validate(request)
        if error is not None:
            request.submitted_tick = max(request.submitted_tick, tick)
            request.completed_tick = tick
            request.status = FAILED
            request.error = error
            request.error_code = "invalid-request"
            self.invalid += 1
            self.log.append(request)
            if OBS.enabled:
                OBS.metrics.counter("service.coalesce.invalid").inc()
            return
        if len(self.queue) >= self.max_pending:
            self.rejected += 1
            if OBS.enabled:
                OBS.metrics.counter("service.coalesce.backpressure").inc()
            raise ServiceBackpressure(len(self.queue), self.max_pending)
        if request.submitted_tick < 0:
            request.submitted_tick = tick
        if request.deadline_tick < 0 and self.default_deadline is not None \
                and tick >= 0:
            request.deadline_tick = tick + self.default_deadline
        self.queue.append(request)
        self.log.append(request)
        if OBS.enabled:
            OBS.metrics.counter("service.coalesce.requests").inc()

    @property
    def coalescing_factor(self) -> float:
        """Committed requests per committed transaction (>= 1.0)."""
        if not self.transactions:
            return 0.0
        return self.committed / self.transactions

    # -- the drain task ----------------------------------------------------

    def drain(self, active: Callable[[], bool],
              clock: Callable[[], int]) -> Generator[None, None, None]:
        """Scheduler task: commit rounds until no producer remains.

        ``active()`` reports whether any tenant may still submit;
        ``clock()`` is the scheduler's tick counter (completion
        stamps).  One ``yield`` per transaction step, so check
        transactions interleave with every table-write batch exactly
        as they do under the single-table linker.
        """
        while active() or self.queue or self.parked_count:
            self._expire(clock)
            if not self.queue:
                yield
                continue
            held = 0
            while held < self.window and len(self.queue) < \
                    (self.max_round_requests or self.max_pending):
                held += 1
                yield
            yield from self._commit_round(clock)

    def _expire(self, clock: Callable[[], int]) -> None:
        """Fail queued/parked requests whose deadline tick has passed."""
        tick = clock()

        def lapsed(request: UpdateRequest) -> bool:
            if not (0 <= request.deadline_tick < tick):
                return False
            request.status = DEADLINE
            request.completed_tick = tick
            err = DeadlineExceeded(request.id, request.deadline_tick,
                                   tick)
            request.error = str(err)
            request.error_code = err.code
            self.deadline_missed += 1
            if OBS.enabled:
                OBS.metrics.counter("service.deadline.missed").inc()
            return True

        if any(0 <= r.deadline_tick < tick for r in self.queue):
            self.queue = [r for r in self.queue if not lapsed(r)]
        for index in list(self.parked):
            waiting = [r for r in self.parked[index] if not lapsed(r)]
            if waiting:
                self.parked[index] = waiting
            else:
                del self.parked[index]

    def unpark(self, index: int) -> int:
        """Re-queue a recovered shard's parked requests (in order)."""
        waiting = self.parked.pop(index, [])
        if waiting:
            self.queue[:0] = waiting
        return len(waiting)

    def _request_shards(self, request: UpdateRequest) -> List[int]:
        return sorted(self.sharded.split_writes(
            request.set_tary, request.clear_tary,
            request.set_bary, request.clear_bary))

    def _commit_round(self, clock: Callable[[], int]
                      ) -> Generator[None, None, None]:
        take = len(self.queue) if self.max_round_requests is None \
            else min(self.max_round_requests, len(self.queue))
        requests = self.queue[:take]
        del self.queue[:take]
        self.rounds += 1
        round_no = self.rounds

        # Graceful degradation: requests aimed at a shard that is not
        # serving updates (quarantined or mid-recovery) are parked for
        # the recovery task to re-queue — the round commits the rest.
        parked_now: List[UpdateRequest] = []
        if self.monitor is not None:
            admitted = []
            for request in requests:
                blocked = [index for index in
                           self._request_shards(request)
                           if not self.monitor.serving_updates(index)]
                if blocked:
                    self.parked.setdefault(blocked[0], []).append(
                        request)
                    self.parked_total += 1
                    parked_now.append(request)
                    if OBS.enabled:
                        OBS.metrics.counter("service.parked").inc()
                else:
                    admitted.append(request)
            requests = admitted

        # Merge the round's deltas per shard, in arrival order: start
        # from each shard's current trusted assignment and fold every
        # request in, so the batched transaction installs exactly the
        # state serial application would have reached.
        new_tary: Dict[int, Dict[int, int]] = {}
        new_bary: Dict[int, Dict[int, int]] = {}
        by_shard: Dict[int, List[UpdateRequest]] = {}
        for request in requests:
            deltas = self.sharded.split_writes(
                request.set_tary, request.clear_tary,
                request.set_bary, request.clear_bary)
            for index, delta in deltas.items():
                shard = self.sharded.shards[index]
                tary = new_tary.setdefault(
                    index, dict(shard.tables.tary_ecns))
                bary = new_bary.setdefault(
                    index, dict(shard.tables.bary_ecns))
                for address in delta.clear_tary:
                    tary.pop(address, None)
                for site in delta.clear_bary:
                    bary.pop(site, None)
                tary.update(delta.set_tary)
                bary.update(delta.set_bary)
                by_shard.setdefault(index, []).append(request)

        span = OBS.tracer.begin("service.round", round=round_no,
                                requests=len(requests))
        shard_records: List[dict] = []
        failed_requests: set = set()
        for index in sorted(by_shard):
            shard = self.sharded.shards[index]
            record = yield from self._commit_shard(
                shard, new_tary[index], new_bary[index],
                by_shard[index], round_no)
            shard_records.append(record)
            if record["status"] != "ok":
                failed_requests.update(r.id for r in by_shard[index])

        tick = clock()
        for request in requests:
            if request.id in failed_requests:
                request.status = FAILED
                self.failed += 1
            else:
                request.status = COMMITTED
                self.committed += 1
            request.completed_tick = tick
            if OBS.enabled and request.latency_ticks >= 0:
                OBS.metrics.histogram(
                    "service.update.latency_ticks").observe(
                        request.latency_ticks)
        if OBS.enabled:
            OBS.metrics.counter("service.coalesce.rounds").inc()
            OBS.metrics.histogram(
                "service.coalesce.round_requests").observe(len(requests))
        span.end(shards=len(by_shard),
                 failed=len(failed_requests))
        entry = {
            "round": round_no,
            "requests": [request.id for request in requests],
            "shards": shard_records,
        }
        if self.monitor is not None:
            # Only resilient runs carry the parked column, so the
            # PR 6 golden trace stays byte-identical.
            entry["parked"] = [request.id for request in parked_now]
        self.trace.append(entry)

    def _commit_shard(self, shard, tary: Dict[int, int],
                      bary: Dict[int, int], requests: List[UpdateRequest],
                      round_no: int) -> Generator[None, None, dict]:
        """One per-shard batched transaction, with snapshot rollback."""
        snapshot = shard.snapshot()
        transaction = UpdateTransaction(
            shard.tables, shard.lock, new_tary=tary, new_bary=bary,
            batch=self.batch, owner=f"coalescer/shard{shard.index}")
        fail_now = self.fault_plane.should(
            "service.commit", detail=f"shard{shard.index}")
        status = "ok"
        run = transaction.run()
        try:
            if fail_now:
                raise InjectedFault("service.commit",
                                    f"shard{shard.index}")
            for _ in run:
                self.fault_plane.check(
                    "service.commit.step", detail=f"shard{shard.index}")
                yield
        except InjectedFault:
            # Close the generator so the transaction's ``finally``
            # releases the shard lock, then restore the shard's bands
            # byte-exactly — the other shards of this round are
            # untouched (partial-failure isolation).
            run.close()
            snapshot.rollback()
            shard.rollbacks += 1
            status = "rolled-back"
            if OBS.enabled:
                OBS.metrics.counter("service.shard.rollbacks").inc()
            if self.monitor is not None:
                self.monitor.note_rollback(shard.index)
        else:
            shard.commits += 1
            self.transactions += 1
            if OBS.enabled:
                OBS.metrics.counter("service.shard.commits").inc()
                OBS.metrics.counter("service.coalesce.batched").inc(
                    len(requests))
            if self.monitor is not None:
                self.monitor.note_commit(shard.index)
        return {
            "shard": shard.index,
            "status": status,
            "version": shard.tables.version,
            "requests": [request.id for request in requests],
            "targets": len(tary),
            "sites": len(bary),
        }

    # -- replayable trace --------------------------------------------------

    def trace_jsonl(self) -> str:
        """The round trace as canonical JSONL (sorted keys, one round
        per line) — byte-identical across runs for the same seed and
        arrival order."""
        return "\n".join(json.dumps(entry, sort_keys=True)
                         for entry in self.trace)
