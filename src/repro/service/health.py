"""Per-shard health: state machine, quarantine triggers, MTTR accounting.

The PR 6 service treated every shard as permanently trustworthy; a
corrupted shard would grind its tenants through TxCheck escalations
forever while still accepting updates.  This module layers a health
state machine over :class:`~repro.service.shards.ShardedIdTables`:

::

    healthy --(consecutive rollbacks >= threshold,
               TxCheck escalation, audit finding)--> quarantined
    healthy --(failures below threshold)--> degraded --(success)--> healthy
    quarantined --(cooldown elapsed; recovery claims the probe)--> recovering
    recovering --(rebuild + sweep + probe OK)--> healthy
    recovering --(probe failed)--> quarantined   (escalated cooldown)

The four states are projections of one shared
:class:`~repro.infra.breaker.CircuitBreaker` per shard (the same
three-state machine the infra worker pool runs, here on the seeded
scheduler's **logical tick clock**, so every transition is
deterministic and replayable):

* ``healthy``      — breaker closed, zero consecutive failures;
* ``degraded``     — breaker closed but counting failures;
* ``quarantined``  — breaker open (cooldown running);
* ``recovering``   — breaker half-open (the single recovery probe).

**Evidence feeds.**  Batch commits/rollbacks arrive from the coalescer
(:meth:`note_commit` / :meth:`note_rollback`); TxCheck escalations and
integrity-audit findings are *non-negotiable* evidence and trip the
breaker immediately (:meth:`note_escalation` / :meth:`note_corruption`
call ``force_open``).  On every transition into ``quarantined`` the
shard is **fenced**: the injected ``fence`` callback bumps the shared
:class:`~repro.vm.memory.TableMemory` generation stamp, so every fused
check sequence the PR 5 dispatch plane cached against the poisoned
bands is invalidated before the next lookup.

The monitor never mutates tables itself — recovery (rebuild, sweep,
probe) is driven by
:class:`~repro.service.resilience.ResilientServiceLoop`'s recovery
task, which asks :meth:`ready_to_recover` / :meth:`begin_recovery` and
reports the verdict through :meth:`record_probe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from repro.infra.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.obs import OBS
from repro.service.shards import ShardedIdTables

#: The four health states (strings: they serialize into traces as-is).
HEALTHY, DEGRADED = "healthy", "degraded"
QUARANTINED, RECOVERING = "quarantined", "recovering"


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds and clocks for the shard health state machine.

    All times are scheduler ticks (logical, deterministic).
    """

    #: Consecutive batch rollbacks before a shard is quarantined.
    rollback_threshold: int = 2
    #: Quarantine cooldown before the first recovery probe.
    cooldown_ticks: int = 400
    #: Cooldown escalation per failed recovery (capped below).
    cooldown_factor: float = 2.0
    max_cooldown_ticks: int = 8000
    #: Seeded jitter added to each cooldown (de-synchronizes probes).
    jitter_ticks: int = 0
    #: Ticks between background integrity audits per shard.
    scrub_interval: int = 64


class ShardHealthMonitor:
    """Health bookkeeping for every shard of one sharded table set."""

    def __init__(self, sharded: ShardedIdTables,
                 clock: Callable[[], int],
                 policy: Optional[HealthPolicy] = None,
                 seed: int = 0,
                 fence: Optional[Callable[[int], None]] = None) -> None:
        self.sharded = sharded
        self.clock = clock
        self.policy = policy or HealthPolicy()
        self.fence = fence
        self.breakers: Dict[int, CircuitBreaker] = {}
        for shard in sharded.shards:
            self.breakers[shard.index] = CircuitBreaker(
                threshold=self.policy.rollback_threshold,
                cooldown=float(self.policy.cooldown_ticks),
                clock=clock,
                cooldown_factor=self.policy.cooldown_factor,
                max_cooldown=float(self.policy.max_cooldown_ticks),
                jitter=float(self.policy.jitter_ticks),
                seed=seed * 0x9E3779B1 + 0x85EBCA6B * (shard.index + 1),
                name=f"shard{shard.index}")
        #: Health transitions: {tick, shard, from, to, reason} dicts in
        #: occurrence order — the deterministic health trace.
        self.transitions: List[dict] = []
        #: Tick each currently-quarantined shard *entered* quarantine
        #: (kept across failed probes, so MTTR measures the full gap).
        self.quarantined_at: Dict[int, int] = {}
        #: Completed recoveries: {shard, down_tick, up_tick, mttr}.
        self.recoveries: List[dict] = []
        self.quarantines = 0
        self.probes_failed = 0
        self.detected_corruptions = 0
        self.escalations: Dict[int, int] = {}
        self.audits = 0

    # -- state projection ---------------------------------------------

    def health(self, index: int) -> str:
        breaker = self.breakers[index]
        if breaker.state == OPEN:
            return QUARANTINED
        if breaker.state == HALF_OPEN:
            return RECOVERING
        return DEGRADED if breaker.failures else HEALTHY

    def states(self) -> Dict[int, str]:
        return {index: self.health(index) for index in self.breakers}

    def serving_updates(self, index: int) -> bool:
        """May this shard accept batched updates right now?

        Only while the breaker is closed: a quarantined shard is
        fenced, and a recovering shard is mid-rebuild.  Checks remain
        readable throughout (degraded mode is read-only, not dark).
        """
        return self.breakers[index].state == CLOSED

    # -- evidence feeds ------------------------------------------------

    def note_commit(self, index: int) -> None:
        self._transition(index, "batch committed",
                         lambda b: b.record(True))

    def note_rollback(self, index: int) -> None:
        self._transition(index, "batch rolled back",
                         lambda b: b.record(False))

    def note_escalation(self, index: int) -> None:
        """A TxCheck exhausted its retry budget on this shard."""
        self.escalations[index] = self.escalations.get(index, 0) + 1
        self._transition(index, "txcheck escalation",
                         lambda b: b.force_open("txcheck escalation"))

    def note_corruption(self, index: int, entries: int) -> None:
        """An integrity audit found ``entries`` corrupted words."""
        self.detected_corruptions += entries
        if OBS.enabled:
            OBS.metrics.counter(
                "service.health.corruption_detected").inc(entries)
        self._transition(
            index, f"audit found {entries} corrupt entries",
            lambda b: b.force_open("integrity audit failed"))

    # -- recovery protocol ---------------------------------------------

    def ready_to_recover(self, index: int) -> bool:
        """Has this quarantined shard's cooldown elapsed?"""
        breaker = self.breakers[index]
        return (breaker.state == OPEN
                and breaker.reopen_at is not None
                and self.clock() >= breaker.reopen_at)

    def begin_recovery(self, index: int) -> bool:
        """Claim the recovery probe slot (quarantined -> recovering)."""
        claimed = False

        def attempt(breaker: CircuitBreaker) -> None:
            nonlocal claimed
            claimed = breaker.allow()

        self._transition(index, "recovery probe admitted", attempt)
        return claimed

    def record_probe(self, index: int, ok: bool,
                     reason: str = "") -> None:
        """Report the recovery verdict (rebuild + sweep + probe check)."""
        if not ok:
            self.probes_failed += 1
        self._transition(
            index,
            reason or ("recovery verified" if ok
                       else "recovery probe failed"),
            lambda b: b.record(ok))

    # -- background integrity audits ------------------------------------

    def scrub_task(self, active: Callable[[], bool],
                   ) -> Generator[None, None, None]:
        """Scheduler task: periodic per-shard integrity audits.

        Every ``policy.scrub_interval`` ticks, audit one serving shard
        (round-robin; skipped while its update lock is held — the bands
        are legitimately mid-rewrite then).  Any finding quarantines
        the shard; the *repair* happens in recovery, under the fence.
        """
        cursor = 0
        while active():
            for _ in range(self.policy.scrub_interval):
                yield
                if not active():
                    return
            shards = self.sharded.shards
            shard = shards[cursor % len(shards)]
            cursor += 1
            if not self.serving_updates(shard.index) or shard.lock.held:
                continue
            findings = shard.tables.audit()
            self.audits += 1
            found = len(findings["tary"]) + len(findings["bary"])
            if found:
                self.note_corruption(shard.index, found)

    # -- bookkeeping -----------------------------------------------------

    def mttr_ticks(self) -> List[int]:
        return [record["mttr"] for record in self.recoveries]

    def summary(self) -> dict:
        states = self.states()
        return {
            "states": {str(k): v for k, v in sorted(states.items())},
            "quarantines": self.quarantines,
            "recoveries": len(self.recoveries),
            "probes_failed": self.probes_failed,
            "detected_corruptions": self.detected_corruptions,
            "escalations": sum(self.escalations.values()),
            "audits": self.audits,
            "transitions": len(self.transitions),
        }

    def _transition(self, index: int, reason: str,
                    mutate: Callable[[CircuitBreaker], None]) -> None:
        before = self.health(index)
        mutate(self.breakers[index])
        after = self.health(index)
        if after == before:
            return
        tick = self.clock()
        self.transitions.append({
            "tick": tick, "shard": index,
            "from": before, "to": after, "reason": reason,
        })
        if OBS.enabled:
            OBS.metrics.counter(
                f"service.health.{after}").inc()
        if after == QUARANTINED:
            if before != RECOVERING:
                # Entering quarantine fresh: stamp the outage start and
                # fence the shard (failed probes keep the old stamp so
                # MTTR covers the whole outage).
                self.quarantined_at[index] = tick
            self.quarantines += 1
            if self.fence is not None:
                self.fence(index)
            if OBS.enabled:
                OBS.metrics.counter("service.health.quarantines").inc()
        elif after == HEALTHY and before == RECOVERING:
            down = self.quarantined_at.pop(index, tick)
            mttr = tick - down
            self.recoveries.append({
                "shard": index, "down_tick": down,
                "up_tick": tick, "mttr": mttr,
            })
            if OBS.enabled:
                OBS.metrics.counter("service.recovery.completed").inc()
                OBS.metrics.histogram(
                    "service.recovery.mttr_ticks").observe(mttr)
