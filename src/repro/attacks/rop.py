"""ROP-style attacks against the SimVM (paper Secs. 1 and 8.3).

Demonstrates the mechanics behind the gadget statistics: on a native
binary an attacker who controls a return address can pivot into a
gadget — including one that starts in the *middle* of a real
instruction — while under MCFI the rewritten return (pop + check + jmp)
refuses any target without a valid Tary ID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.attacks.gadgets import find_gadgets
from repro.errors import CfiViolation, MemoryFault, VMError
from repro.build import build_program
from repro.runtime.runtime import Runtime
from repro.vm.cpu import ProgramExit

ROP_VICTIM_SOURCE = r"""
int process(int x) {
    int acc = x;
    int i;
    for (i = 0; i < 8; i++) {
        acc = acc * 3 + i;
        sched_yield();
    }
    return acc;
}

int main(void) {
    int total = 0;
    int i;
    for (i = 0; i < 32; i++) {
        total += process(i);
    }
    print_int(total);
    return 0;
}
"""


@dataclass
class RopOutcome:
    scheme: str
    pivoted: bool            # control reached the gadget address
    blocked: bool
    gadget_address: Optional[int] = None
    misaligned_gadget: bool = False
    detail: str = ""


def _pick_gadget(code: bytes, base: int,
                 instruction_starts: Optional[set] = None) -> Optional[int]:
    """Choose a gadget address, preferring mid-instruction starts."""
    gadgets = find_gadgets(code, base=base, depth=3)
    if not gadgets:
        return None
    if instruction_starts:
        for gadget in gadgets:
            if gadget.address not in instruction_starts:
                return gadget.address
    return gadgets[0].address


def return_pivot(scheme: str = "native", seed: int = 3,
                 max_ticks: int = 2_000_000) -> RopOutcome:
    """Corrupt return addresses toward a gadget; observe the outcome."""
    mcfi = scheme != "native"
    program = build_program({"victim": ROP_VICTIM_SOURCE},
                            mcfi=mcfi).program
    module = program.module
    from repro.isa.disasm import sweep_ranges
    starts = {d.address for d in
              sweep_ranges(module.code, module.base, module.code_ranges)}
    gadget = _pick_gadget(module.code, module.base, instruction_starts=starts)
    if gadget is None:
        return RopOutcome(scheme=scheme, pivoted=False, blocked=False,
                          detail="no gadget found")

    runtime = Runtime(program)
    cpu = runtime.main_cpu()
    pivoted = {"hit": False}
    original_step = cpu.step

    def watched_step():
        original_step()
        if cpu.rip == gadget:
            pivoted["hit"] = True

    cpu.step = watched_step  # type: ignore[method-assign]

    def attacker():
        lo, hi = module.base, module.limit
        while True:
            rsp = cpu.regs[4]
            for slot in range(6):
                address = rsp + 8 * slot
                try:
                    word = runtime.memory.read_u64(address)
                except MemoryFault:
                    continue
                if lo <= word < hi and word != gadget:
                    try:
                        runtime.memory.write_u64(address, gadget)
                    except MemoryFault:
                        pass
            yield

    from repro.vm.scheduler import GeneratorTask, Scheduler
    scheduler = Scheduler(seed=seed)
    scheduler.add_cpu(cpu, name="victim")
    scheduler.add(GeneratorTask(attacker(), name="attacker"))
    outcome = scheduler.run(max_ticks=max_ticks)

    return RopOutcome(
        scheme=scheme,
        pivoted=pivoted["hit"],
        blocked=outcome.violation is not None,
        gadget_address=gadget,
        misaligned_gadget=gadget not in starts,
        detail=outcome.describe())


def compare_schemes(seed: int = 3) -> List[RopOutcome]:
    """Run the pivot under native and MCFI; the paper's expectation is
    pivot-succeeds vs violation-blocked."""
    return [return_pivot("native", seed=seed),
            return_pivot("MCFI", seed=seed)]
