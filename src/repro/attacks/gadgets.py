"""ROP gadget scanner (the paper's rp++ analogue, Sec. 8.3).

A gadget is a short instruction sequence ending in an indirect control
transfer (``ret``, ``jmp *r``, ``call *r``) that decodes starting at
*any* byte offset of the code image — including offsets in the middle
of real instructions, which variable-length encoding makes possible.

The paper measures "gadget elimination": the fraction of the original
binary's gadgets that are unusable in the MCFI-hardened binary.  Under
MCFI a gadget can only be entered through an indirect branch, and every
indirect branch verifies its target against the Tary table, so the
usable gadget starts are exactly the permitted indirect-branch targets
(4-byte-aligned addresses with a valid ID).  We therefore report:

* ``all gadgets`` — every decodable gadget start (what rp++ counts on
  an unprotected binary);
* ``reachable gadgets`` — gadget starts that are permitted targets
  under the installed CFI policy.

The elimination rate is ``1 - reachable/all`` measured on the hardened
image (the paper reports ~96.9%/95.8% on x86-32/64).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from repro.isa.disasm import try_decode_at
from repro.isa.instructions import Op

#: Opcodes that terminate a gadget.
GADGET_ENDS = (Op.RET, Op.JMP_R, Op.CALL_R)

#: Maximum instructions in a gadget (rp++'s typical depth).
DEFAULT_DEPTH = 5


@dataclass(frozen=True)
class Gadget:
    """One gadget: its start address and decoded mnemonic sequence."""

    address: int
    text: Tuple[str, ...]

    @property
    def length(self) -> int:
        return len(self.text)

    def __str__(self) -> str:
        return f"{self.address:#x}: " + " ; ".join(self.text)


def gadget_at(code: bytes, offset: int,
              depth: int = DEFAULT_DEPTH) -> Optional[Tuple[str, ...]]:
    """Try to decode a gadget starting at ``offset``.

    Returns the mnemonic tuple if a sequence of at most ``depth``
    instructions ending in an indirect branch decodes here.
    """
    text: List[str] = []
    cursor = offset
    for _ in range(depth):
        decoded = try_decode_at(code, cursor)
        if decoded is None:
            return None
        instr, length = decoded
        text.append(str(instr))
        if instr.op in GADGET_ENDS:
            return tuple(text)
        spec = instr.spec
        if spec.is_branch:
            return None  # direct branches break the gadget
        cursor += length
        if cursor > len(code):
            return None
    return None


def find_gadgets(code: bytes, base: int = 0,
                 depth: int = DEFAULT_DEPTH) -> List[Gadget]:
    """Scan every byte offset of ``code`` for gadgets."""
    out: List[Gadget] = []
    for offset in range(len(code)):
        text = gadget_at(code, offset, depth=depth)
        if text is not None:
            out.append(Gadget(address=base + offset, text=text))
    return out


def unique_gadgets(gadgets: Iterable[Gadget]) -> Set[Tuple[str, ...]]:
    """Deduplicate gadgets by instruction content (rp++'s 'unique')."""
    return {g.text for g in gadgets}


def reachable_gadgets(gadgets: Iterable[Gadget],
                      permitted_targets: Set[int]) -> List[Gadget]:
    """Gadgets whose start address is a permitted indirect-branch target."""
    return [g for g in gadgets if g.address in permitted_targets]


@dataclass
class GadgetReport:
    """Gadget statistics for one program image."""

    total_starts: int
    unique_total: int
    reachable_starts: int
    unique_reachable: int

    @property
    def elimination_rate(self) -> float:
        if self.unique_total == 0:
            return 0.0
        return 1.0 - self.unique_reachable / self.unique_total


def analyze_image(code: bytes, base: int,
                  permitted_targets: Optional[Set[int]] = None,
                  depth: int = DEFAULT_DEPTH) -> GadgetReport:
    """Full gadget analysis of one code image.

    Without ``permitted_targets`` (an unprotected binary) every gadget
    is reachable.
    """
    gadgets = find_gadgets(code, base=base, depth=depth)
    if permitted_targets is None:
        reachable = gadgets
    else:
        reachable = reachable_gadgets(gadgets, permitted_targets)
    return GadgetReport(
        total_starts=len(gadgets),
        unique_total=len(unique_gadgets(gadgets)),
        reachable_starts=len(reachable),
        unique_reachable=len(unique_gadgets(reachable)),
    )
