"""Concrete control-flow hijacking scenarios (paper Sec. 8.3).

Each scenario builds a victim program, mounts the paper's concurrent
attacker against it, and reports whether the hijack succeeded or was
blocked — under native execution, under a coarse-grained (binCFI-style)
policy, and under MCFI.  The function-pointer scenario is the paper's
GnuPG CVE-2006-6235 analogue: "the vulnerability ... allows a remote
attacker to control a function pointer and jump to execve ...  If
protected by MCFI, the function pointer cannot be used to jump to
execve because their types do not match."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.policies import bincfi_policy
from repro.errors import CfiViolation
from repro.build import build_program
from repro.runtime.runtime import Runtime
from repro.vm.cpu import CPU, ProgramExit


@dataclass
class AttackOutcome:
    """Result of one attack run under one protection scheme."""

    scheme: str              # 'native' | 'binCFI' | 'MCFI'
    hijacked: bool           # attacker-controlled code executed
    blocked: bool            # a CFI violation stopped the transfer
    detail: str = ""


#: Victim: a message dispatcher whose handler pointer lives in writable
#: memory next to an attacker-controlled buffer — the GnuPG shape.
FPTR_VICTIM_SOURCE = r"""
typedef void (*msg_handler)(int);

void execve_sim(char *cmd) {
    /* stands in for libc's execve: type  void(char*)  */
    print_str("EXEC:");
    print_str(cmd);
}

void log_message(int level) {
    print_int(level);
}

msg_handler handler = log_message;
char inbox[64];

int main(void) {
    int round;
    /* keep execve address-taken, as linking with libc does */
    void (*unused)(char *) = execve_sim;
    for (round = 0; round < 64; round++) {
        handler(round);
        sched_yield();
    }
    return 0;
}
"""

RETURN_VICTIM_SOURCE = r"""
void secret(void) {
    print_str("SECRET");
}

int helper(int x) {
    int local = x * 2;
    sched_yield();
    return local + 1;
}

int main(void) {
    int total = 0;
    int i;
    void (*keep)(void) = secret;   /* secret is address-taken */
    for (i = 0; i < 64; i++) {
        total += helper(i);
    }
    print_int(total);
    return 0;
}
"""


def _run_with_attacker(program, corrupt, scheme: str,
                       seed: int = 7, max_ticks: int = 4_000_000,
                       install_policy=None) -> AttackOutcome:
    runtime = Runtime(program)
    if install_policy is not None:
        policy = install_policy(program.module.aux)
        runtime.id_tables.install(policy.tary_ecns, policy.bary_ecns)
    cpu = runtime.main_cpu()

    def attacker():
        while True:
            corrupt(runtime, cpu)
            yield

    from repro.vm.scheduler import GeneratorTask
    result = runtime.run_scheduled(
        seed=seed, max_ticks=max_ticks,
        extra_tasks=[GeneratorTask(attacker(), name="attacker")])
    hijack_markers = (b"EXEC:", b"SECRET")
    hijacked = any(marker in result.output for marker in hijack_markers)
    blocked = result.violation is not None
    detail = result.violation.reason if result.violation else \
        f"exit={result.exit_code} output={result.output[:32]!r}"
    return AttackOutcome(scheme=scheme, hijacked=hijacked, blocked=blocked,
                         detail=detail)


def fptr_to_execve(schemes=("native", "binCFI", "MCFI"),
                   seed: int = 7) -> Dict[str, AttackOutcome]:
    """The GnuPG-style function-pointer hijack, under each scheme."""
    outcomes: Dict[str, AttackOutcome] = {}
    for scheme in schemes:
        mcfi = scheme != "native"
        program = build_program({"victim": FPTR_VICTIM_SOURCE},
                                mcfi=mcfi).program
        handler_slot = program.data.symbols["handler"]
        execve_entry = program.labels["execve_sim"]

        def corrupt(runtime, cpu, slot=handler_slot, value=execve_entry):
            runtime.memory.host_write(slot, value.to_bytes(8, "little"))

        install = bincfi_policy if scheme == "binCFI" else None
        outcomes[scheme] = _run_with_attacker(program, corrupt, scheme,
                                              seed=seed,
                                              install_policy=install)
    return outcomes


def return_to_secret(schemes=("native", "binCFI", "MCFI"),
                     seed: int = 11) -> Dict[str, AttackOutcome]:
    """Return-address smash redirecting a return to a function entry.

    Under binCFI returns may target any *return site*, so a function
    entry is still refused — but under binCFI the attacker may instead
    redirect to any other return site; we demonstrate the entry-redirect
    case, where fine- and coarse-grained CFI both block, while native
    execution is hijacked.
    """
    outcomes: Dict[str, AttackOutcome] = {}
    for scheme in schemes:
        mcfi = scheme != "native"
        program = build_program({"victim": RETURN_VICTIM_SOURCE},
                                mcfi=mcfi).program
        secret_entry = program.labels["secret"]
        code_base = program.module.base
        code_limit = program.module.limit

        def corrupt(runtime, cpu, payload=secret_entry,
                    lo=code_base, hi=code_limit):
            rsp = cpu.regs[4]
            for slot in range(8):
                address = rsp + 8 * slot
                try:
                    word = runtime.memory.read_u64(address)
                except Exception:
                    continue
                if lo <= word < hi and word != payload:
                    try:
                        runtime.memory.write_u64(address, payload)
                    except Exception:
                        pass

        install = bincfi_policy if scheme == "binCFI" else None
        outcomes[scheme] = _run_with_attacker(program, corrupt, scheme,
                                              seed=seed,
                                              install_policy=install)
    return outcomes
