"""The one clock path for every reported wall timing.

Every subsystem that reports seconds (the spec CLI, the worker pool,
the STM micro-benchmark) reads :func:`now` instead of calling
``time.perf_counter()`` directly, so timing semantics can be audited —
and, if ever necessary, swapped — in exactly one place.

Deterministic *trace* time is a different thing entirely: a seeded
:class:`repro.obs.trace.Tracer` stamps spans with a logical tick
counter and never touches this module.
"""

from __future__ import annotations

import time


def now() -> float:
    """Monotonic seconds with the highest available resolution."""
    return time.perf_counter()


class Stopwatch:
    """Context-manager stopwatch over :func:`now`.

    ::

        with Stopwatch() as watch:
            do_work()
        print(watch.seconds)
    """

    __slots__ = ("started", "_stopped")

    def __init__(self) -> None:
        self.started: float = 0.0
        self._stopped: float | None = None

    def start(self) -> "Stopwatch":
        self.started = now()
        self._stopped = None
        return self

    def stop(self) -> float:
        self._stopped = now()
        return self.seconds

    @property
    def seconds(self) -> float:
        """Elapsed seconds; live until :meth:`stop` freezes it."""
        end = self._stopped if self._stopped is not None else now()
        return end - self.started

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
