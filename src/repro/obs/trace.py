"""Nestable spans with a seeded-deterministic JSONL exporter.

A :class:`Tracer` records *spans*: named intervals with attributes and
a parent link.  Two timestamp modes:

* **wall** (``seed=None``) — spans carry :func:`repro.obs.clock.now`
  seconds; right for perf reports.
* **logical** (``seed`` given) — spans carry a monotonically
  incrementing tick, so the exported trace file is **byte-identical**
  across runs of the same seeded workload.  Wall-valued metric
  observations are suppressed by callers in this mode (see
  ``repro.obs.wall_metrics_enabled``).

Two recording APIs:

* ``with tracer.span(name, **attrs):`` — pushes onto the ambient
  parent stack, so spans opened inside nest under it.  Use for
  straight-line code.
* ``handle = tracer.begin(name, **attrs)`` / ``handle.end(**attrs)``
  — parented under the current stack top but **not** pushed, so
  concurrent intervals (worker-pool attempts in flight) may begin and
  end out of order without corrupting the stack.

When tracing is disabled the singleton points at :data:`NULL_TRACER`,
which returns one shared inert span; the hot paths stay instrumented
unconditionally at the cost of a method call.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs import clock

#: Trace-file schema version; ``repro.tools.obs report --check-schema``
#: fails on drift.
SCHEMA_VERSION = 1

#: Wall timestamps are rounded so traces stay compact and json-stable.
_WALL_DIGITS = 9


class Span:
    """One open (then finished) interval.  Created via the tracer."""

    __slots__ = ("tracer", "id", "parent", "name", "t0", "t1", "attrs",
                 "_pushed")

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent: Optional[int], name: str,
                 attrs: Dict[str, Any], pushed: bool) -> None:
        self.tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.t0 = tracer._now()
        self.t1: Optional[float] = None
        self.attrs = attrs
        self._pushed = pushed

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open span."""
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> None:
        if self.t1 is not None:      # idempotent: tolerate double end
            return
        if attrs:
            self.attrs.update(attrs)
        self.t1 = self.tracer._now()
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()


class _NullSpan:
    """Shared inert span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Span recorder; finished spans accumulate in completion order."""

    __slots__ = ("seed", "_tick", "_next_id", "_stack", "spans")

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self._tick = 0
        self._next_id = 0
        self._stack: List[int] = []
        #: Finished span records (dicts), in end order.
        self.spans: List[Dict[str, Any]] = []

    # -- time ------------------------------------------------------

    @property
    def deterministic(self) -> bool:
        return self.seed is not None

    def _now(self) -> float:
        if self.seed is not None:
            self._tick += 1
            return self._tick
        return round(clock.now(), _WALL_DIGITS)

    # -- recording -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span and push it onto the ambient parent stack."""
        handle = self._open(name, attrs, pushed=True)
        self._stack.append(handle.id)
        return handle

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span *without* pushing the stack (concurrent work)."""
        return self._open(name, attrs, pushed=False)

    def _open(self, name: str, attrs: Dict[str, Any],
              pushed: bool) -> Span:
        parent = self._stack[-1] if self._stack else None
        span_id = self._next_id
        self._next_id += 1
        return Span(self, span_id, parent, name, attrs, pushed)

    def _finish(self, span: Span) -> None:
        if span._pushed:
            # Tolerate exceptions unwinding several frames at once.
            while self._stack and self._stack[-1] != span.id:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        record: Dict[str, Any] = {"kind": "span", "id": span.id,
                                  "name": span.name, "t0": span.t0,
                                  "t1": span.t1}
        if span.parent is not None:
            record["parent"] = span.parent
        if span.attrs:
            record["attrs"] = span.attrs
        self.spans.append(record)

    # -- export ----------------------------------------------------

    def header(self) -> Dict[str, Any]:
        return {"kind": "trace-header", "version": SCHEMA_VERSION,
                "clock": "logical" if self.deterministic else "wall",
                "seed": self.seed, "spans": len(self.spans)}

    def export_jsonl(self, path, metrics: Optional[Dict[str, Any]] = None,
                     ) -> str:
        """Write header + spans (+ optional metrics line) as JSONL."""
        from pathlib import Path

        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True)
                     for record in self.spans)
        if metrics is not None:
            lines.append(json.dumps(metrics, sort_keys=True))
        target.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(target)


class NullTracer(Tracer):
    """Tracer that records nothing and allocates nothing per span."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(seed=None)

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def begin(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN


#: Shared inert tracer installed while observability is disabled.
NULL_TRACER = NullTracer()
