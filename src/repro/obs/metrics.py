"""Counters, gauges, and histograms with a free-when-disabled default.

A :class:`MetricsRegistry` hands out named instruments on demand; a
:class:`Snapshot` freezes the registry into one JSON-friendly dict that
round-trips through :meth:`Snapshot.to_dict` / :meth:`Snapshot.from_dict`
— the same serialization protocol every result object in the repo
exposes (see ``docs/OBSERVABILITY.md``).

When observability is disabled the package-level singleton points at
:data:`NULL_METRICS`, whose instruments are three shared immutable
objects: recording a sample costs one attribute lookup and one no-op
method call, and allocates nothing.  That is what lets the hot layers
(check transactions, the CPU run loop, the worker pool) stay
instrumented unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


class Counter:
    """Monotonic event count; ``inc`` accepts a weight."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Bounded-memory distribution summary: count/total/min/max.

    Full reservoirs would make snapshots unbounded; the four moments
    here are enough for every report in the repo (means and extremes)
    and keep a snapshot's size independent of sample count.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: float = 0.0
        self.max: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.min = self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class Snapshot:
    """Frozen registry state; the ``obs`` payload carried by results."""

    KIND = "metrics"

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: dict(stats) for name, stats in
                           sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Snapshot":
        return cls(counters=dict(data.get("counters", {})),
                   gauges=dict(data.get("gauges", {})),
                   histograms={name: dict(stats) for name, stats in
                               data.get("histograms", {}).items()})

    def delta(self, earlier: "Snapshot") -> "Snapshot":
        """Counters/histograms since ``earlier``; gauges keep last value.

        Used to attach per-run evidence to a :class:`RunResult` when the
        registry has been accumulating across several runs.
        """
        counters = {}
        for name, value in self.counters.items():
            diff = value - earlier.counters.get(name, 0)
            if diff:
                counters[name] = diff
        histograms = {}
        for name, stats in self.histograms.items():
            base = earlier.histograms.get(name)
            if base is None:
                histograms[name] = dict(stats)
                continue
            count = stats["count"] - base["count"]
            if count:
                histograms[name] = {
                    "count": count,
                    "total": stats["total"] - base["total"],
                    "min": stats["min"], "max": stats["max"],
                }
        return Snapshot(counters=counters, gauges=dict(self.gauges),
                        histograms=histograms)


class MetricsRegistry:
    """Named instruments, created on first use."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> Snapshot:
        return Snapshot(
            counters={k: v.value for k, v in self._counters.items()},
            gauges={k: v.value for k, v in self._gauges.items()},
            histograms={k: {"count": v.count, "total": v.total,
                            "min": v.min, "max": v.max}
                        for k, v in self._histograms.items()
                        if v.count})

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics(MetricsRegistry):
    """Registry whose instruments discard everything, allocation-free."""

    __slots__ = ()

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Snapshot:
        return Snapshot()


#: Shared inert registry installed while observability is disabled.
NULL_METRICS = NullMetrics()
