"""``repro.obs`` — the zero-dependency tracing + metrics plane.

One process-wide :data:`OBS` state object carries the active
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`.  Both default to shared
null implementations, so the instrumentation threaded through the hot
layers (check transactions, the VM run loop, the dynamic linker, the
worker pool, the toolchain) costs one attribute lookup plus a no-op
method call when observability is off — and the really hot counters
are additionally guarded by ``if OBS.enabled``.

Usage::

    from repro import obs

    state = obs.enable(seed=0)        # logical clock: deterministic
    ...run a workload...
    path = obs.export_trace("benchmarks/results/trace.jsonl")
    obs.disable()

or scoped (restores whatever was installed before)::

    with obs.scoped(seed=seed) as state:
        record = run_cell(...)
    record.obs = state.metrics.snapshot().to_dict()

Span and metric names are cataloged in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs import clock  # noqa: F401  (re-exported: the one clock path)
from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    Snapshot,
)
from repro.obs.trace import (  # noqa: F401
    NULL_TRACER,
    SCHEMA_VERSION,
    Span,
    Tracer,
)

__all__ = [
    "OBS", "enable", "disable", "scoped", "export_trace", "snapshot",
    "wall_metrics_enabled", "clock", "Tracer", "MetricsRegistry",
    "Snapshot", "Counter", "Gauge", "Histogram", "Span",
    "SCHEMA_VERSION",
]


class ObsState:
    """The process-wide observability switchboard."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer = NULL_TRACER
        self.metrics: MetricsRegistry = NULL_METRICS


#: The singleton every instrumented module reads.
OBS = ObsState()


def enable(seed: Optional[int] = None) -> ObsState:
    """Install a live tracer + registry.  ``seed`` ⇒ logical clock."""
    OBS.tracer = Tracer(seed=seed)
    OBS.metrics = MetricsRegistry()
    OBS.enabled = True
    return OBS


def disable() -> None:
    """Back to the free-when-disabled null implementations."""
    OBS.enabled = False
    OBS.tracer = NULL_TRACER
    OBS.metrics = NULL_METRICS


@contextmanager
def scoped(seed: Optional[int] = None) -> Iterator[ObsState]:
    """Enable observability for a block, then restore the prior state.

    Fault campaigns use this to give every cell a fresh registry whose
    snapshot rides along on the cell's record.
    """
    prior = (OBS.enabled, OBS.tracer, OBS.metrics)
    try:
        yield enable(seed=seed)
    finally:
        OBS.enabled, OBS.tracer, OBS.metrics = prior


def wall_metrics_enabled() -> bool:
    """True when wall-clock-valued observations should be recorded.

    Seconds-valued histograms (pool job duration, backoff sleeps) are
    skipped under a seeded tracer so the exported metrics line stays
    byte-deterministic.
    """
    return OBS.enabled and not OBS.tracer.deterministic


def snapshot() -> Snapshot:
    """Freeze the active registry (empty when disabled)."""
    return OBS.metrics.snapshot()


def export_trace(path, include_metrics: bool = True) -> str:
    """Export the active tracer's spans (+ metrics snapshot) to JSONL."""
    metrics: Optional[Dict[str, Any]] = None
    if include_metrics:
        frozen = OBS.metrics.snapshot()
        if frozen.counters or frozen.gauges or frozen.histograms:
            metrics = frozen.to_dict()
    return OBS.tracer.export_jsonl(path, metrics=metrics)
