"""``python -m repro`` — dispatch to the umbrella CLI."""

import sys

from repro.cli import main

sys.exit(main())
