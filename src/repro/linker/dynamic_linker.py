"""MCFI dynamic linker (paper Secs. 5.2 and 6, "Static and dynamic
linking").

Implements the paper's three-step dlopen protocol:

1. **Module preparation** — load the library into unoccupied code/data
   space with the code writable but *not* executable; resolve its
   symbols; patch its Bary-index immediates (with freshly assigned
   global site numbers); then seal the pages read-only + executable
   (after optional verification).  The W^X invariant holds throughout.
2. **New CFG generation** — merge the library's auxiliary information
   into the program's, connect PLT entries "to functions with matching
   names", and regenerate the CFG/ECN assignment.
3. **ID table updates** — run an update transaction that installs the
   new IDs and rewrites the GOT entries, while other threads continue
   to execute check transactions.

In single-threaded mode the update transaction is drained inline; in
scheduled (multithreaded) mode it runs as a scheduler task concurrent
with all other threads, and the calling thread blocks until the update
completes — which is exactly the scenario the transaction design
exists for.

**Transactional loading.**  Every ``dlopen``/``dlclose`` opens a
:class:`LoadJournal` first: a snapshot of both ID tables, the linker's
allocation cursors, the GOT slots and the merged CFG state.  If the
load fails at *any* phase — symbol resolution, CFG regeneration, or
mid-way through the table update transaction (exercised by the fault
plane of :mod:`repro.faults`) — the journal rolls everything back:
the Tary and Bary tables end byte-identical to the pre-load snapshot,
the half-loaded module's pages are sealed non-executable, and the
``dlopen`` returns 0 instead of leaving a half-published policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cfg.generator import Cfg, generate_cfg
from repro.core.instrument import instrument_items
from repro.core.tables import TableSnapshot, bary_index, tary_index
from repro.core.transactions import UpdateTransaction
from repro.errors import InjectedFault, LinkError, ReproError, \
    RuntimeError_
from repro.faults.plane import NULL_PLANE, FaultPlane
from repro.isa.assembler import assemble
from repro.linker.static_linker import build_data_image, layout_data
from repro.mir.codegen import RawModule
from repro.module.auxinfo import AuxInfo, FunctionAux, merge_aux
from repro.module.module import McfiModule, build_module
from repro.obs import OBS
from repro.vm.cpu import CPU
from repro.vm.memory import CODE_LIMIT, DATA_LIMIT, PAGE_SIZE
from repro.vm.scheduler import GeneratorTask


@dataclass
class LoadedLibrary:
    handle: int
    name: str
    module: McfiModule
    data_base: int
    exports: Dict[str, int] = field(default_factory=dict)
    taken_names: set = field(default_factory=set)
    quarantined: bool = False


class LoadJournal:
    """Pre-load snapshot of every piece of state a dlopen mutates.

    ``rollback()`` restores the ID tables byte-for-byte, the linker's
    cursors and registries, the GOT slots and the runtime's CFG — and
    seals any pages the aborted load mapped into the code region, so a
    failed load cannot leave executable-but-unpublished code behind.
    """

    def __init__(self, linker: "DynamicLinker") -> None:
        runtime = linker.runtime
        self.linker = linker
        self.phases: List[str] = []
        self.rolled_back = False
        # ID tables, byte-exact (raw bytes + version/ECN bookkeeping).
        self.tables = TableSnapshot(runtime.id_tables)
        # Linker allocation state and registries.
        self.code_cursor = linker._code_cursor
        self.data_cursor = linker._data_cursor
        self.next_site = linker._next_site
        self.next_handle = linker._next_handle
        self.loaded = dict(linker.loaded)
        self.by_name = dict(linker._by_name)
        self.merged_aux = linker._merged_aux
        # Runtime policy state and the GOT.
        self.cfg = runtime.cfg
        self.lock_owner = runtime.update_lock.owner()
        self.got = {slot: runtime.memory.host_read(slot, 8)
                    for slot in runtime.program.got_slots.values()}

    def record(self, phase: str) -> None:
        self.phases.append(phase)

    def rollback(self) -> None:
        if self.rolled_back:
            return
        if OBS.enabled:
            OBS.metrics.counter("linker.rollbacks").inc()
        linker = self.linker
        runtime = linker.runtime
        # Tables first: restoring the policy is what closes the
        # security window; everything else is bookkeeping.  The
        # snapshot's raw restore also bumps the write-generation stamp,
        # invalidating any fused-check branch IDs the dispatch plane
        # cached.
        self.tables.rollback()
        for slot, image in self.got.items():
            runtime.memory.host_write(slot, image)
        runtime.cfg = self.cfg
        # An update transaction aborted mid-flight still owns the
        # update lock; hand it back so later updates are not wedged.
        runtime.update_lock.set_owner(self.lock_owner)
        # Seal any code pages the aborted load mapped, and drop their
        # decoded-instruction cache entries.
        if linker._code_cursor > self.code_cursor:
            size = linker._code_cursor - self.code_cursor
            runtime.memory.protect(self.code_cursor, size, readable=True,
                                   writable=False, executable=False)
            for address in list(runtime.icache):
                if self.code_cursor <= address < linker._code_cursor:
                    del runtime.icache[address]
            runtime.dispatch_cache.invalidate_range(self.code_cursor,
                                                    linker._code_cursor)
        linker._code_cursor = self.code_cursor
        linker._data_cursor = self.data_cursor
        linker._next_site = self.next_site
        linker._next_handle = self.next_handle
        linker.loaded = dict(self.loaded)
        linker._by_name = dict(self.by_name)
        linker._merged_aux = self.merged_aux
        self.rolled_back = True


class DynamicLinker:
    """Loads registered libraries into a running :class:`Runtime`."""

    def __init__(self, runtime, verify: bool = True,
                 fault_plane: FaultPlane = NULL_PLANE) -> None:
        self.runtime = runtime
        #: verify-before-link: every dlopened module must pass the
        #: binary verifier before any of its bytes are mapped (on by
        #: default; applies only when the runtime enforces MCFI, since
        #: native modules cannot verify).  This is the trust boundary
        #: the tenant service inherits — an unverifiable tenant module
        #: is rejected before it can reach the tables.
        self.verify = verify
        self.fault_plane = fault_plane
        self.registry: Dict[str, RawModule] = {}
        self.loaded: Dict[int, LoadedLibrary] = {}
        self._by_name: Dict[str, int] = {}
        self._next_handle = 1
        program = runtime.program
        self._code_cursor = _page_up(program.module.limit)
        self._data_cursor = _page_up(program.data.base + program.data.size
                                     + 0x100000)  # leave heap headroom
        self._next_site = len(program.module.aux.branch_sites)
        self._base_aux: AuxInfo = program.module.aux
        self._merged_aux: AuxInfo = program.module.aux
        self.last_journal: Optional[LoadJournal] = None
        #: Update-transaction tasks queued on the scheduler but not yet
        #: finished.  A new dlopen/dlclose drains these before taking
        #: its own journal snapshot, so republishes are serialized (see
        #: :meth:`_drain_pending_updates`).
        self._inflight: List[GeneratorTask] = []
        runtime.dynamic_linker = self

    def register(self, name: str, raw: RawModule) -> None:
        """Make a compiled library available to dlopen by name."""
        if raw.arch != self.runtime.program.arch:
            raise LinkError(f"library {name!r} has the wrong architecture")
        self.registry[name] = raw

    # -- dlopen -----------------------------------------------------------------

    def dlopen(self, name: str, cpu: Optional[CPU] = None) -> int:
        if name in self._by_name:
            return self._by_name[name]
        raw = self.registry.get(name)
        if raw is None:
            return 0
        self._drain_pending_updates()

        with OBS.tracer.span("linker.dlopen", library=name) as span:
            journal = LoadJournal(self)
            self.last_journal = journal
            try:
                library = self._prepare_module(raw)
                journal.record("prepare")
                self.fault_plane.check("dlopen.prepare", detail=name)
                library.taken_names = set(raw.taken_names)
                handle = self._next_handle
                self._next_handle += 1
                library.handle = handle
                self.loaded[handle] = library
                self._by_name[name] = handle

                self._republish(cpu, result_for_cpu=handle,
                                journal=journal)
            except InjectedFault:
                # Recoverable load failure: restore the pre-load
                # snapshot and report failure via the return value.
                journal.rollback()
                span.set(status="rolled-back")
                return 0
            except ReproError:
                # Unrecoverable (bad library, exhausted regions): still
                # roll the tables back before propagating.
                journal.rollback()
                span.set(status="error")
                raise
            span.set(status="ok", handle=handle)
            if OBS.enabled:
                OBS.metrics.counter("linker.dlopens").inc()
            return handle

    def dlclose(self, handle: int, cpu: Optional[CPU] = None) -> int:
        """Unload a library: regenerate the CFG without it and publish
        the shrunk policy with an update transaction.

        The update zeroes the library's Tary entries and Bary sites and
        resets GOT entries it resolved, so any dangling pointer into the
        unloaded code halts fail-safe; the code pages are then sealed
        non-executable.  (The paper covers loading only; unloading is
        the symmetric extension.)
        """
        if handle not in self.loaded:
            return -1
        self._drain_pending_updates()
        if handle not in self.loaded:
            # The drained update was a concurrent dlclose of this very
            # handle; nothing left to unload.
            return -1
        with OBS.tracer.span("linker.dlclose") as span:
            journal = LoadJournal(self)
            self.last_journal = journal
            library = self.loaded.pop(handle)
            self._by_name.pop(library.name, None)
            span.set(library=library.name)
            try:
                self._republish(cpu, result_for_cpu=0, journal=journal,
                                after=lambda: self._seal_unloaded(library))
            except InjectedFault:
                journal.rollback()
                span.set(status="rolled-back")
                return -1
            except ReproError:
                journal.rollback()
                span.set(status="error")
                raise
            span.set(status="ok")
            if OBS.enabled:
                OBS.metrics.counter("linker.dlcloses").inc()
            return 0

    def quarantine(self, handle: int) -> bool:
        """Retire a loaded library without a full republish.

        Used by the runtime's ``quarantine-module`` violation policy:
        the library's Tary entries and Bary sites are zeroed directly
        (every transfer into or out of it now halts fail-safe) and its
        pages sealed non-executable.  Unlike :meth:`dlclose` this does
        not regenerate the CFG — it is the fast fail-safe path taken
        *while handling a violation*, when running another update
        transaction would be unsafe.
        """
        library = self.loaded.get(handle)
        if library is None or library.quarantined:
            return False
        if OBS.enabled:
            OBS.metrics.counter("linker.quarantines").inc()
        module = library.module
        tables = self.runtime.id_tables
        memory = tables.memory
        for address in [a for a in tables.tary_ecns
                        if module.base <= a < module.limit]:
            memory.write_tary(tary_index(address), 0)
            del tables.tary_ecns[address]
        for site in module.bary_slots:
            memory.write_bary(bary_index(site), 0)
            tables.bary_ecns.pop(site, None)
        self._seal_unloaded(library)
        library.quarantined = True
        return True

    def _seal_unloaded(self, library: LoadedLibrary) -> None:
        module = library.module
        self.runtime.memory.protect(module.base, len(module.code),
                                    readable=True, writable=False,
                                    executable=False)
        for address in list(self.runtime.icache):
            if module.base <= address < module.limit:
                del self.runtime.icache[address]
        self.runtime.dispatch_cache.invalidate_range(module.base,
                                                     module.limit)

    def _rebuild_merged(self) -> AuxInfo:
        parts = [self._strip(self._base_aux)]
        parts += [library.module.aux for library in self.loaded.values()]
        merged = merge_aux(parts)
        # dlsym-reachable library exports are conservatively
        # address-taken, and libraries may take addresses of the
        # program's functions.
        newly_taken = set()
        for library in self.loaded.values():
            newly_taken |= {fname for fname in library.module.aux.functions
                            if merged.functions[fname].exported}
            newly_taken |= library.taken_names & set(merged.functions)
        for fname in newly_taken:
            func = merged.functions[fname]
            if not func.address_taken:
                merged.functions[fname] = FunctionAux(
                    name=func.name, sig=func.sig, entry=func.entry,
                    address_taken=True, exported=func.exported,
                    module=func.module)
        return merged

    def _republish(self, cpu: Optional[CPU], result_for_cpu: int,
                   after=None, journal: Optional[LoadJournal] = None,
                   ) -> None:
        """Regenerate the CFG over the current module set and install
        it (with GOT adjustments) via an update transaction."""
        with OBS.tracer.span("linker.cfg"):
            new_aux = self._rebuild_merged()
            self.fault_plane.check("dlopen.cfg")
            plt_resolution = self._resolve_plt(new_aux)
            got_updates = self._got_updates(plt_resolution)
            # Reset GOT slots whose symbols are no longer resolved.
            for symbol, slot in self.runtime.program.got_slots.items():
                if symbol not in plt_resolution:
                    got_updates.append((slot, 0))
            cfg = generate_cfg(new_aux, plt_resolution=plt_resolution)
        if journal is not None:
            journal.record("cfg")
        transaction = UpdateTransaction(
            self.runtime.id_tables, self.runtime.update_lock,
            new_tary=cfg.tary_ecns, new_bary=cfg.bary_ecns,
            got_writer=self._write_got, got_updates=got_updates)
        self._merged_aux = new_aux
        self.runtime.cfg = cfg
        self._run_update(transaction, cpu, result_for_cpu, after=after,
                         journal=journal)

    def rebuild_tables(self) -> Dict[str, int]:
        """Reconstruct the ID tables from module metadata (recovery).

        After a table fault the stored *bytes* are untrusted, but the
        metadata that produced them is not: the program's and every
        loaded library's auxiliary info.  Rebuild the CFG from that
        metadata — exactly what a fresh load sequence would compute —
        reinstall it under a fresh update transaction (version bump +
        rewrite of every tracked word), then run a full
        :meth:`~repro.core.tables.IdTables.sweep` so forged strays in
        untracked words are zeroed too.  This is the single-process
        analogue of the service plane's quarantined-shard recovery
        (:class:`~repro.service.resilience.ResilientServiceLoop`).

        Returns ``{"repaired": .., "strays": .., "entries": ..}``.
        """
        self._drain_pending_updates()
        with OBS.tracer.span("linker.rebuild"):
            new_aux = self._rebuild_merged()
            plt_resolution = self._resolve_plt(new_aux)
            cfg = generate_cfg(new_aux, plt_resolution=plt_resolution)
            transaction = UpdateTransaction(
                self.runtime.id_tables, self.runtime.update_lock,
                new_tary=cfg.tary_ecns, new_bary=cfg.bary_ecns,
                owner="rebuild")
            for _ in transaction.run():
                pass
            self._merged_aux = new_aux
            self.runtime.cfg = cfg
            swept = self.runtime.id_tables.sweep()
        if OBS.enabled:
            OBS.metrics.counter("linker.rebuilds").inc()
        swept["entries"] = len(cfg.tary_ecns) + len(cfg.bary_ecns)
        return swept

    def dlsym(self, handle: int, symbol: str) -> int:
        library = self.loaded.get(handle)
        if library is None:
            return 0
        return library.exports.get(symbol, 0)

    # -- internals ---------------------------------------------------------------

    def _prepare_module(self, raw: RawModule) -> LoadedLibrary:
        with OBS.tracer.span("linker.prepare", library=raw.name):
            return self._prepare_module_inner(raw)

    def _prepare_module_inner(self, raw: RawModule) -> LoadedLibrary:
        runtime = self.runtime

        # Resolve imports against the program and previously loaded libs.
        known = dict(runtime.program.labels)
        for lib in self.loaded.values():
            known.update(lib.module.labels)
        missing = [imp for imp in raw.imports if imp not in known]
        if missing:
            raise LinkError(
                f"{raw.name}: unresolved imports {', '.join(missing)}")

        layout = layout_data([raw], base=self._data_cursor)
        asm = instrument_items(raw)
        extern = dict(known)
        extern.update(layout.symbols)
        assembled = assemble(asm.items, base=self._code_cursor,
                             extern=extern)
        module = build_module(raw, asm, assembled,
                              site_base=self._next_site)
        self._next_site += len(asm.sites)
        if module.limit > CODE_LIMIT:
            raise RuntimeError_("code region exhausted by dlopen")
        if layout.base + layout.size > DATA_LIMIT:
            raise RuntimeError_("data region exhausted by dlopen")

        if self.verify and self.runtime.enforce:
            from repro.core.verifier import verify_module
            verify_module(module)

        # Step 1: writable but not executable while loading + patching.
        code = bytearray(module.code)
        for site, offset in module.bary_slots.items():
            code[offset:offset + 4] = (4 * site).to_bytes(4, "little")
        memory = runtime.memory
        memory.map(module.base, len(code), readable=True, writable=True)
        memory.host_write(module.base, bytes(code))
        # Seal: executable but not writable.
        memory.protect(module.base, len(code), readable=True,
                       writable=False, executable=True)
        self._code_cursor = _page_up(module.limit)

        layout.image = build_data_image([raw], layout, assembled.labels)
        memory.map(layout.base, max(layout.size, PAGE_SIZE), readable=True,
                   writable=True)
        if layout.image:
            memory.host_write(layout.base, layout.image)
        if layout.rodata_end:
            memory.protect(layout.base, layout.rodata_end, readable=True,
                           writable=False)
        self._data_cursor = _page_up(layout.base + layout.size)

        return LoadedLibrary(handle=0, name=raw.name, module=module,
                             data_base=layout.base,
                             exports=dict(module.aux.exports))

    def _resolve_plt(self, aux: AuxInfo) -> Dict[str, int]:
        resolution: Dict[str, int] = {}
        for site in aux.branch_sites:
            if site.kind == "plt" and site.plt_symbol in aux.functions:
                resolution[site.plt_symbol] = \
                    aux.functions[site.plt_symbol].entry
        return resolution

    def _got_updates(self, plt_resolution: Dict[str, int]):
        got_slots = self.runtime.program.got_slots
        return [(got_slots[sym], address)
                for sym, address in plt_resolution.items()
                if sym in got_slots]

    def _write_got(self, address: int, value: int) -> None:
        self.fault_plane.check("dlopen.got", detail=f"slot {address:#x}")
        self.runtime.memory.host_write(
            address, value.to_bytes(8, "little"))

    def _update_steps(self, transaction: UpdateTransaction,
                      journal: Optional[LoadJournal]):
        """Drive the update transaction with per-step fault checks."""
        span = OBS.tracer.begin("linker.update")
        try:
            for _ in transaction.run():
                self.fault_plane.check("dlopen.update")
                yield
            if journal is not None:
                journal.record("update")
            self.fault_plane.check("dlopen.seal")
            if journal is not None:
                journal.record("seal")
        finally:
            span.end(completed=transaction.completed)

    def _drain_pending_updates(self) -> None:
        """Complete any in-flight update transaction before a new load.

        In scheduled mode an update transaction runs as a scheduler
        task concurrent with application threads.  If a second thread
        reaches dlopen/dlclose while one is still in flight, the two
        republishes would race: both journals would snapshot
        mid-update table state, both would regenerate a CFG from a
        module set the other is about to change, and the last update
        to run would silently win — leaving ``runtime.cfg`` and the ID
        tables describing different module sets (and, after a rolled
        back load, possibly a wedged update lock restored from a stale
        ownership snapshot).  Draining the pending update first makes
        republishes strictly serial: the drain happens inside the
        caller's (atomic) syscall step, so to every application thread
        it is indistinguishable from the update having won the race.
        """
        while self._inflight:
            task = self._inflight.pop(0)
            if not task.alive:
                continue
            try:
                while True:
                    next(task.generator)
            except StopIteration:
                task.alive = False

    def _run_update(self, transaction: UpdateTransaction,
                    cpu: Optional[CPU], result: int,
                    after=None, journal: Optional[LoadJournal] = None,
                    ) -> None:
        runtime = self.runtime
        scheduler = runtime._scheduler
        if scheduler is None:
            for _ in self._update_steps(transaction, journal):
                pass
            if after is not None:
                after()
            return
        # Concurrent mode: the calling thread blocks; every other thread
        # keeps running check transactions against the tables mid-update.
        task = runtime._tasks_by_cpu.get(id(cpu)) if cpu is not None else None
        if task is not None:
            task.waiting = True

        def update_then_wake():
            try:
                yield from self._update_steps(transaction, journal)
            except InjectedFault:
                # Mid-update failure in concurrent mode: roll back to
                # the pre-load snapshot and report failure to the
                # blocked caller instead of tearing the policy.
                if journal is not None:
                    journal.rollback()
                if task is not None:
                    if cpu is not None:
                        cpu.regs[0] = 0
                    task.waiting = False
                return
            except ReproError:
                if journal is not None:
                    journal.rollback()
                raise
            if after is not None:
                after()
            if task is not None:
                if cpu is not None:
                    cpu.regs[0] = result  # RAX: the syscall's return value
                task.waiting = False

        task_obj = GeneratorTask(update_then_wake(), name="dlupdate")
        scheduler.add(task_obj)
        self._inflight.append(task_obj)

    @staticmethod
    def _strip(aux: AuxInfo) -> AuxInfo:
        """Shallow copy so merge does not mutate the previous aux."""
        clone = AuxInfo()
        clone.functions = dict(aux.functions)
        clone.retsites = list(aux.retsites)
        clone.branch_sites = list(aux.branch_sites)
        clone.setjmp_resumes = list(aux.setjmp_resumes)
        clone.direct_calls = list(aux.direct_calls)
        clone.data_ranges = list(aux.data_ranges)
        clone.exports = dict(aux.exports)
        clone.imports = list(aux.imports)
        return clone


def _page_up(address: int) -> int:
    return (address + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
