"""MCFI dynamic linker (paper Secs. 5.2 and 6, "Static and dynamic
linking").

Implements the paper's three-step dlopen protocol:

1. **Module preparation** — load the library into unoccupied code/data
   space with the code writable but *not* executable; resolve its
   symbols; patch its Bary-index immediates (with freshly assigned
   global site numbers); then seal the pages read-only + executable
   (after optional verification).  The W^X invariant holds throughout.
2. **New CFG generation** — merge the library's auxiliary information
   into the program's, connect PLT entries "to functions with matching
   names", and regenerate the CFG/ECN assignment.
3. **ID table updates** — run an update transaction that installs the
   new IDs and rewrites the GOT entries, while other threads continue
   to execute check transactions.

In single-threaded mode the update transaction is drained inline; in
scheduled (multithreaded) mode it runs as a scheduler task concurrent
with all other threads, and the calling thread blocks until the update
completes — which is exactly the scenario the transaction design
exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cfg.generator import Cfg, generate_cfg
from repro.core.instrument import instrument_items
from repro.core.transactions import UpdateTransaction
from repro.errors import LinkError, RuntimeError_
from repro.isa.assembler import assemble
from repro.linker.static_linker import build_data_image, layout_data
from repro.mir.codegen import RawModule
from repro.module.auxinfo import AuxInfo, FunctionAux, merge_aux
from repro.module.module import McfiModule, build_module
from repro.vm.cpu import CPU
from repro.vm.memory import CODE_LIMIT, DATA_LIMIT, PAGE_SIZE
from repro.vm.scheduler import GeneratorTask


@dataclass
class LoadedLibrary:
    handle: int
    name: str
    module: McfiModule
    data_base: int
    exports: Dict[str, int] = field(default_factory=dict)
    taken_names: set = field(default_factory=set)


class DynamicLinker:
    """Loads registered libraries into a running :class:`Runtime`."""

    def __init__(self, runtime, verify: bool = False) -> None:
        self.runtime = runtime
        self.verify = verify
        self.registry: Dict[str, RawModule] = {}
        self.loaded: Dict[int, LoadedLibrary] = {}
        self._by_name: Dict[str, int] = {}
        self._next_handle = 1
        program = runtime.program
        self._code_cursor = _page_up(program.module.limit)
        self._data_cursor = _page_up(program.data.base + program.data.size
                                     + 0x100000)  # leave heap headroom
        self._next_site = len(program.module.aux.branch_sites)
        self._base_aux: AuxInfo = program.module.aux
        self._merged_aux: AuxInfo = program.module.aux
        runtime.dynamic_linker = self

    def register(self, name: str, raw: RawModule) -> None:
        """Make a compiled library available to dlopen by name."""
        if raw.arch != self.runtime.program.arch:
            raise LinkError(f"library {name!r} has the wrong architecture")
        self.registry[name] = raw

    # -- dlopen -----------------------------------------------------------------

    def dlopen(self, name: str, cpu: Optional[CPU] = None) -> int:
        if name in self._by_name:
            return self._by_name[name]
        raw = self.registry.get(name)
        if raw is None:
            return 0

        library = self._prepare_module(raw)
        library.taken_names = set(raw.taken_names)
        handle = self._next_handle
        self._next_handle += 1
        library.handle = handle
        self.loaded[handle] = library
        self._by_name[name] = handle

        self._republish(cpu, result_for_cpu=handle)
        return handle

    def dlclose(self, handle: int, cpu: Optional[CPU] = None) -> int:
        """Unload a library: regenerate the CFG without it and publish
        the shrunk policy with an update transaction.

        The update zeroes the library's Tary entries and Bary sites and
        resets GOT entries it resolved, so any dangling pointer into the
        unloaded code halts fail-safe; the code pages are then sealed
        non-executable.  (The paper covers loading only; unloading is
        the symmetric extension.)
        """
        library = self.loaded.pop(handle, None)
        if library is None:
            return -1
        self._by_name.pop(library.name, None)
        self._republish(cpu, result_for_cpu=0,
                        after=lambda: self._seal_unloaded(library))
        return 0

    def _seal_unloaded(self, library: LoadedLibrary) -> None:
        module = library.module
        self.runtime.memory.protect(module.base, len(module.code),
                                    readable=True, writable=False,
                                    executable=False)
        for address in list(self.runtime.icache):
            if module.base <= address < module.limit:
                del self.runtime.icache[address]

    def _rebuild_merged(self) -> AuxInfo:
        parts = [self._strip(self._base_aux)]
        parts += [library.module.aux for library in self.loaded.values()]
        merged = merge_aux(parts)
        # dlsym-reachable library exports are conservatively
        # address-taken, and libraries may take addresses of the
        # program's functions.
        newly_taken = set()
        for library in self.loaded.values():
            newly_taken |= {fname for fname in library.module.aux.functions
                            if merged.functions[fname].exported}
            newly_taken |= library.taken_names & set(merged.functions)
        for fname in newly_taken:
            func = merged.functions[fname]
            if not func.address_taken:
                merged.functions[fname] = FunctionAux(
                    name=func.name, sig=func.sig, entry=func.entry,
                    address_taken=True, exported=func.exported,
                    module=func.module)
        return merged

    def _republish(self, cpu: Optional[CPU], result_for_cpu: int,
                   after=None) -> None:
        """Regenerate the CFG over the current module set and install
        it (with GOT adjustments) via an update transaction."""
        new_aux = self._rebuild_merged()
        plt_resolution = self._resolve_plt(new_aux)
        got_updates = self._got_updates(plt_resolution)
        # Reset GOT slots whose symbols are no longer resolved.
        for symbol, slot in self.runtime.program.got_slots.items():
            if symbol not in plt_resolution:
                got_updates.append((slot, 0))
        cfg = generate_cfg(new_aux, plt_resolution=plt_resolution)
        transaction = UpdateTransaction(
            self.runtime.id_tables, self.runtime.update_lock,
            new_tary=cfg.tary_ecns, new_bary=cfg.bary_ecns,
            got_writer=self._write_got, got_updates=got_updates)
        self._merged_aux = new_aux
        self.runtime.cfg = cfg
        self._run_update(transaction, cpu, result_for_cpu, after=after)

    def dlsym(self, handle: int, symbol: str) -> int:
        library = self.loaded.get(handle)
        if library is None:
            return 0
        return library.exports.get(symbol, 0)

    # -- internals ---------------------------------------------------------------

    def _prepare_module(self, raw: RawModule) -> LoadedLibrary:
        runtime = self.runtime

        # Resolve imports against the program and previously loaded libs.
        known = dict(runtime.program.labels)
        for lib in self.loaded.values():
            known.update(lib.module.labels)
        missing = [imp for imp in raw.imports if imp not in known]
        if missing:
            raise LinkError(
                f"{raw.name}: unresolved imports {', '.join(missing)}")

        layout = layout_data([raw], base=self._data_cursor)
        asm = instrument_items(raw)
        extern = dict(known)
        extern.update(layout.symbols)
        assembled = assemble(asm.items, base=self._code_cursor,
                             extern=extern)
        module = build_module(raw, asm, assembled,
                              site_base=self._next_site)
        self._next_site += len(asm.sites)
        if module.limit > CODE_LIMIT:
            raise RuntimeError_("code region exhausted by dlopen")
        if layout.base + layout.size > DATA_LIMIT:
            raise RuntimeError_("data region exhausted by dlopen")

        if self.verify:
            from repro.core.verifier import verify_module
            verify_module(module)

        # Step 1: writable but not executable while loading + patching.
        code = bytearray(module.code)
        for site, offset in module.bary_slots.items():
            code[offset:offset + 4] = (4 * site).to_bytes(4, "little")
        memory = runtime.memory
        memory.map(module.base, len(code), readable=True, writable=True)
        memory.host_write(module.base, bytes(code))
        # Seal: executable but not writable.
        memory.protect(module.base, len(code), readable=True,
                       writable=False, executable=True)
        self._code_cursor = _page_up(module.limit)

        layout.image = build_data_image([raw], layout, assembled.labels)
        memory.map(layout.base, max(layout.size, PAGE_SIZE), readable=True,
                   writable=True)
        if layout.image:
            memory.host_write(layout.base, layout.image)
        if layout.rodata_end:
            memory.protect(layout.base, layout.rodata_end, readable=True,
                           writable=False)
        self._data_cursor = _page_up(layout.base + layout.size)

        return LoadedLibrary(handle=0, name=raw.name, module=module,
                             data_base=layout.base,
                             exports=dict(module.aux.exports))

    def _resolve_plt(self, aux: AuxInfo) -> Dict[str, int]:
        resolution: Dict[str, int] = {}
        for site in aux.branch_sites:
            if site.kind == "plt" and site.plt_symbol in aux.functions:
                resolution[site.plt_symbol] = \
                    aux.functions[site.plt_symbol].entry
        return resolution

    def _got_updates(self, plt_resolution: Dict[str, int]):
        got_slots = self.runtime.program.got_slots
        return [(got_slots[sym], address)
                for sym, address in plt_resolution.items()
                if sym in got_slots]

    def _write_got(self, address: int, value: int) -> None:
        self.runtime.memory.host_write(
            address, value.to_bytes(8, "little"))

    def _run_update(self, transaction: UpdateTransaction,
                    cpu: Optional[CPU], result: int,
                    after=None) -> None:
        runtime = self.runtime
        scheduler = runtime._scheduler
        if scheduler is None:
            for _ in transaction.run():
                pass
            if after is not None:
                after()
            return
        # Concurrent mode: the calling thread blocks; every other thread
        # keeps running check transactions against the tables mid-update.
        task = runtime._tasks_by_cpu.get(id(cpu)) if cpu is not None else None
        if task is not None:
            task.waiting = True

        def update_then_wake():
            yield from transaction.run()
            if after is not None:
                after()
            if task is not None:
                if cpu is not None:
                    cpu.regs[0] = result  # RAX: the syscall's return value
                task.waiting = False

        scheduler.add(GeneratorTask(update_then_wake(), name="dlupdate"))

    @staticmethod
    def _strip(aux: AuxInfo) -> AuxInfo:
        """Shallow copy so merge does not mutate the previous aux."""
        clone = AuxInfo()
        clone.functions = dict(aux.functions)
        clone.retsites = list(aux.retsites)
        clone.branch_sites = list(aux.branch_sites)
        clone.setjmp_resumes = list(aux.setjmp_resumes)
        clone.direct_calls = list(aux.direct_calls)
        clone.data_ranges = list(aux.data_ranges)
        clone.exports = dict(aux.exports)
        clone.imports = list(aux.imports)
        return clone


def _page_up(address: int) -> int:
    return (address + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
