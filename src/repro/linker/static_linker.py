"""MCFI static linker (paper Secs. 6-7).

Links separately compiled and *separately instrumented* modules into one
executable image: concatenates their instrumented assembly, renumbers
indirect-branch sites into a global Bary numbering, lays out the data
region (read-only strings first, then writable globals), resolves
cross-module symbols, and merges auxiliary information ("combining type
information of multiple modules during linking is a simple union
operation").

The same linker drives the native (uninstrumented) build used as the
overhead baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.instrument import (
    InstrumentedAsm,
    SiteInfo,
    build_plt,
    instrument_items,
    lower_native,
)
from repro.errors import LinkError
from repro.isa.assembler import AsmInstr, BarySlot, Item, Label, assemble
from repro.mir.codegen import RawModule
from repro.module.module import DataLayout, McfiModule, build_module
from repro.obs import OBS
from repro.vm.memory import CODE_BASE, DATA_BASE, PAGE_SIZE


@dataclass
class LinkedProgram:
    """A fully linked, loadable program image."""

    arch: str
    mcfi: bool
    module: McfiModule            # the combined module (code + aux)
    data: DataLayout
    entry: int
    heap_base: int
    #: names of the raw modules linked in, in order
    parts: List[str] = field(default_factory=list)
    #: dynamic symbol -> its GOT slot address (PLT-routed imports)
    got_slots: Dict[str, int] = field(default_factory=dict)

    @property
    def labels(self) -> Dict[str, int]:
        return self.module.labels


def _shift_sites(asm: InstrumentedAsm, base: int) -> InstrumentedAsm:
    """Renumber a module's local branch sites by ``base``."""
    if base == 0:
        return asm
    items: List[Item] = []
    for item in asm.items:
        if isinstance(item, AsmInstr) and any(
                isinstance(op, BarySlot) for op in item.operands):
            operands = tuple(
                BarySlot(op.site + base) if isinstance(op, BarySlot) else op
                for op in item.operands)
            items.append(AsmInstr(item.op, operands))
        else:
            items.append(item)
    sites = [SiteInfo(site=s.site + base, kind=s.kind, fn=s.fn, sig=s.sig,
                      targets=s.targets, plt_symbol=s.plt_symbol,
                      ptargets=s.ptargets)
             for s in asm.sites]
    return InstrumentedAsm(items=items, sites=sites,
                           setjmp_resumes=list(asm.setjmp_resumes))


def _rename_symbol(raw: RawModule, old: str, new: str) -> None:
    """Rename a module-local (static) function everywhere in ``raw``.

    Implements C internal linkage: two modules may each define a static
    function of the same name; the linker gives each a module-qualified
    label so they coexist in the combined image.
    """
    from repro.isa.assembler import DataWord, Label as AsmLabel, \
        LabelRef, Mark

    prefix = old + "."

    def rename(label: str) -> str:
        if label == old:
            return new
        if label.startswith(prefix):  # block/jump-table labels
            return new + label[len(old):]
        return label

    def fix_operand(op):
        if isinstance(op, LabelRef):
            return LabelRef(rename(op.name))
        return op

    items = []
    for item in raw.items:
        if isinstance(item, AsmLabel) and rename(item.name) != item.name:
            items.append(AsmLabel(rename(item.name)))
        elif isinstance(item, AsmInstr):
            items.append(AsmInstr(item.op,
                                  tuple(fix_operand(o)
                                        for o in item.operands)))
        elif isinstance(item, DataWord) and \
                isinstance(item.value, LabelRef):
            items.append(DataWord(LabelRef(rename(item.value.name))))
        elif isinstance(item, Mark) and item.kind == "func_entry" and \
                item.info == old:
            items.append(Mark("func_entry", new))
        elif isinstance(item, Mark) and item.kind == "retsite" and \
                isinstance(item.info, tuple):
            info = tuple(new if part == old else part
                         for part in item.info)
            items.append(Mark("retsite", info))
        elif isinstance(item, Mark) and item.kind in ("setjmp_resume",
                                                      "jt_start",
                                                      "jt_end"):
            items.append(Mark(item.kind, rename(item.info)))
        else:
            from repro.mir.codegen import PseudoIndirectJump, \
                PseudoIndirectCall, PseudoReturn
            if isinstance(item, PseudoReturn) and item.fn == old:
                items.append(PseudoReturn(fn=new))
            elif isinstance(item, PseudoIndirectCall):
                items.append(PseudoIndirectCall(
                    fn=new if item.fn == old else item.fn,
                    reg=item.reg, sig=item.sig,
                    ptargets=tuple(new if t == old else t
                                   for t in item.ptargets)))
            elif isinstance(item, PseudoIndirectJump):
                targets = tuple(rename(t) for t in item.targets)
                items.append(PseudoIndirectJump(
                    fn=new if item.fn == old else item.fn,
                    reg=item.reg, kind=item.kind, sig=item.sig,
                    targets=targets,
                    ptargets=tuple(new if t == old else t
                                   for t in item.ptargets)))
            else:
                items.append(item)
    raw.items = items

    meta = raw.functions.pop(old)
    meta.name = new
    meta.entry_label = new
    raw.functions[new] = meta
    raw.direct_calls = [
        (new if caller == old else caller,
         new if callee == old else callee, tail)
        for caller, callee, tail in raw.direct_calls]
    if old in raw.taken_names:
        raw.taken_names.discard(old)
        raw.taken_names.add(new)
    for data in raw.globals.values():
        data.relocs = [
            (offset, kind, new if kind == "func" and symbol == old
             else symbol)
            for offset, kind, symbol in data.relocs]


def _resolve_static_collisions(raws: List[RawModule]) -> None:
    """Give colliding non-exported (static) functions unique names."""
    seen: Dict[str, RawModule] = {}
    for raw in raws:
        for name in list(raw.functions):
            meta = raw.functions[name]
            if name not in seen:
                seen[name] = raw
                continue
            other = seen[name]
            if not meta.exported:
                _rename_symbol(raw, name, f"{raw.name}${name}")
            elif not other.functions[name].exported:
                _rename_symbol(other, name, f"{other.name}${name}")
                seen[name] = raw
            # two exported definitions: left for _merge_raws to report


def _merge_raws(raws: List[RawModule], name: str) -> RawModule:
    """Union the metadata of several raw modules (post-check)."""
    merged = RawModule(name=name, arch=raws[0].arch, items=[],
                       functions={}, globals={}, strings={})
    for raw in raws:
        for fname, meta in raw.functions.items():
            if fname in merged.functions:
                raise LinkError(f"multiple definitions of {fname!r}")
            merged.functions[fname] = meta
        for gname, data in raw.globals.items():
            if gname in merged.globals:
                raise LinkError(f"multiple definitions of global {gname!r}")
            merged.globals[gname] = data
        merged.strings.update(raw.strings)
        merged.direct_calls.extend(raw.direct_calls)
        merged.imports.extend(raw.imports)
        merged.uses_setjmp |= raw.uses_setjmp
        merged.taken_names |= raw.taken_names
    defined = set(merged.functions)
    merged.imports = sorted({imp for imp in merged.imports
                             if imp not in defined})
    return merged


def layout_data(raws: List[RawModule], base: int = DATA_BASE,
                got_names: Optional[Dict[str, str]] = None) -> DataLayout:
    """Assign data-region addresses: strings (read-only), then globals
    and GOT slots (writable)."""
    symbols: Dict[str, int] = {}
    cursor = base
    for raw in raws:
        for label, blob in raw.strings.items():
            if label in symbols:
                raise LinkError(f"duplicate string label {label!r}")
            symbols[label] = cursor
            cursor += (len(blob) + 7) & ~7
    rodata_end = (cursor - base + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    cursor = base + rodata_end
    for raw in raws:
        for name, data in raw.globals.items():
            if name in symbols:
                raise LinkError(f"duplicate global {name!r}")
            symbols[name] = cursor
            cursor += (data.size + 7) & ~7
    for got_label in (got_names or {}).values():
        symbols[got_label] = cursor
        cursor += 8
    size = cursor - base
    return DataLayout(base=base, size=size, symbols=symbols,
                      rodata_end=rodata_end)


def build_data_image(raws: List[RawModule], layout: DataLayout,
                     code_labels: Dict[str, int]) -> bytes:
    """Materialize the data region: strings, globals, relocations."""
    image = bytearray(layout.size)

    def poke(address: int, payload: bytes) -> None:
        offset = address - layout.base
        image[offset:offset + len(payload)] = payload

    for raw in raws:
        for label, blob in raw.strings.items():
            poke(layout.symbols[label], blob)
        for name, data in raw.globals.items():
            base_addr = layout.symbols[name]
            for offset, width, value in data.words:
                poke(base_addr + offset,
                     (value & ((1 << (8 * width)) - 1)).to_bytes(
                         width, "little"))
            for offset, kind, symbol in data.relocs:
                if kind == "func":
                    value = code_labels.get(symbol)
                    if value is None:
                        raise LinkError(
                            f"unresolved function {symbol!r} in initializer "
                            f"of {name!r}")
                elif kind == "global":
                    value = layout.symbols.get(symbol)
                    if value is None:
                        raise LinkError(f"unresolved global {symbol!r}")
                elif kind == "str":
                    value = layout.symbols[f"{raw.name}.str{symbol}"]
                else:
                    raise LinkError(f"unknown reloc kind {kind!r}")
                poke(base_addr + offset, value.to_bytes(8, "little"))
    return bytes(image)


def link(raws: List[RawModule], mcfi: bool = True,
         code_base: int = CODE_BASE, data_base: int = DATA_BASE,
         entry_symbol: str = "_start",
         allow_unresolved: Optional[List[str]] = None) -> LinkedProgram:
    """Statically link raw modules into a :class:`LinkedProgram`.

    Each module is instrumented independently (``mcfi=True``) before its
    assembly is combined — the separate-compilation property the paper
    is about.  ``allow_unresolved`` lists symbols expected to be bound
    at runtime via dlopen/dlsym (everything else must resolve now).
    """
    if not raws:
        raise LinkError("nothing to link")
    with OBS.tracer.span("toolchain.link", modules=len(raws), mcfi=mcfi):
        return _link(raws, mcfi, code_base, data_base, entry_symbol,
                     allow_unresolved)


def _link(raws: List[RawModule], mcfi: bool, code_base: int,
          data_base: int, entry_symbol: str,
          allow_unresolved: Optional[List[str]]) -> LinkedProgram:
    arch = raws[0].arch
    if any(raw.arch != arch for raw in raws):
        raise LinkError("cannot mix x32 and x64 modules")

    _resolve_static_collisions(raws)
    merged_meta = _merge_raws(raws, name="+".join(r.name for r in raws))
    dynamic_symbols = [imp for imp in merged_meta.imports
                       if imp in (allow_unresolved or [])]
    unresolved = [imp for imp in merged_meta.imports
                  if imp not in (allow_unresolved or [])]
    if unresolved:
        raise LinkError(f"unresolved symbols: {', '.join(unresolved)}")
    if dynamic_symbols and not mcfi:
        raise LinkError("PLT-routed dynamic symbols require MCFI mode")

    # Instrument each module separately, then concatenate with globally
    # renumbered branch sites.
    combined_items: List[Item] = []
    combined_sites: List[SiteInfo] = []
    setjmp_resumes: List[str] = []
    site_base = 0
    for raw in raws:
        if mcfi:
            asm = instrument_items(raw)
            asm = _shift_sites(asm, site_base)
            site_base += len(asm.sites)
            combined_sites.extend(asm.sites)
            setjmp_resumes.extend(asm.setjmp_resumes)
            combined_items.extend(asm.items)
        else:
            combined_items.extend(lower_native(raw))

    # Emit MCFI-instrumented PLT entries for dynamic symbols; the entry
    # label is the symbol name so direct calls resolve to the PLT.
    got_names = {sym: f"__got.{sym}" for sym in dynamic_symbols}
    if dynamic_symbols:
        plt_asm = build_plt(dynamic_symbols, got_names)
        # Alias each PLT entry under the bare symbol name, so direct
        # ``call sym`` instructions in any module land on the PLT entry.
        aliased: List[Item] = []
        for item in plt_asm.items:
            if isinstance(item, Label) and item.name.startswith("__plt."):
                aliased.append(Label(item.name[len("__plt."):]))
            aliased.append(item)
        plt_shifted = _shift_sites(
            InstrumentedAsm(items=aliased, sites=plt_asm.sites), site_base)
        site_base += len(plt_shifted.sites)
        combined_sites.extend(plt_shifted.sites)
        combined_items.extend(plt_shifted.items)

    layout = layout_data(raws, base=data_base, got_names=got_names)
    assembled = assemble(combined_items, base=code_base,
                         extern=layout.symbols)
    combined_asm = InstrumentedAsm(items=combined_items,
                                   sites=combined_sites,
                                   setjmp_resumes=setjmp_resumes)
    merged_meta.items = combined_items
    module = build_module(merged_meta, combined_asm, assembled,
                          instrumented_mode=mcfi)

    layout.image = build_data_image(raws, layout, assembled.labels)

    entry = assembled.labels.get(entry_symbol)
    if entry is None:
        raise LinkError(f"no entry symbol {entry_symbol!r}")
    heap_base = (layout.base + layout.size + PAGE_SIZE - 1) & \
        ~(PAGE_SIZE - 1)
    got_slots = {sym: layout.symbols[label]
                 for sym, label in got_names.items()}
    return LinkedProgram(arch=arch, mcfi=mcfi, module=module, data=layout,
                         entry=entry, heap_base=heap_base,
                         parts=[raw.name for raw in raws],
                         got_slots=got_slots)
