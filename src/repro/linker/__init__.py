"""Subpackage of the MCFI reproduction."""
