"""Richer CFG statistics beyond Table 3's three columns.

The paper argues precision through equivalence-class counts; these
helpers expose the underlying distributions — per-branch-kind counts,
target-set-size percentiles, class-size histograms — used by the
ablation benchmark and by anyone evaluating a different CFG-generation
policy on the same modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cfg.generator import Cfg
from repro.module.auxinfo import AuxInfo


@dataclass
class CfgProfile:
    """Distributional statistics of one generated CFG."""

    ibs: int
    ibts: int
    eqcs: int
    branches_by_kind: Dict[str, int] = field(default_factory=dict)
    #: per-kind mean resolved-target-set size
    mean_targets_by_kind: Dict[str, float] = field(default_factory=dict)
    #: (min, median, max) over all non-empty target sets
    target_set_spread: Tuple[int, int, int] = (0, 0, 0)
    #: (min, median, max) over equivalence-class sizes
    class_size_spread: Tuple[int, int, int] = (0, 0, 0)
    empty_target_branches: int = 0

    def rows(self) -> List[Tuple[str, object]]:
        out: List[Tuple[str, object]] = [
            ("IBs", self.ibs), ("IBTs", self.ibts), ("EQCs", self.eqcs),
            ("empty-target branches", self.empty_target_branches),
            ("target-set min/med/max", self.target_set_spread),
            ("class-size min/med/max", self.class_size_spread),
        ]
        for kind in sorted(self.branches_by_kind):
            out.append((f"{kind} branches", self.branches_by_kind[kind]))
            out.append((f"{kind} mean |T|",
                        round(self.mean_targets_by_kind[kind], 2)))
        return out


def _spread(values: List[int]) -> Tuple[int, int, int]:
    if not values:
        return (0, 0, 0)
    ordered = sorted(values)
    return (ordered[0], ordered[len(ordered) // 2], ordered[-1])


def profile(aux: AuxInfo, cfg: Cfg) -> CfgProfile:
    """Compute the full distributional profile of a generated CFG."""
    stats = cfg.stats()
    by_kind: Dict[str, List[int]] = {}
    empty = 0
    for site in aux.branch_sites:
        size = len(cfg.branch_targets.get(site.site, ()))
        by_kind.setdefault(site.kind, []).append(size)
        if size == 0:
            empty += 1
    class_sizes: Dict[int, int] = {}
    for ecn in cfg.tary_ecns.values():
        class_sizes[ecn] = class_sizes.get(ecn, 0) + 1
    nonempty_sets = [len(targets)
                     for targets in cfg.branch_targets.values() if targets]
    return CfgProfile(
        ibs=stats["IBs"], ibts=stats["IBTs"], eqcs=stats["EQCs"],
        branches_by_kind={kind: len(sizes)
                          for kind, sizes in by_kind.items()},
        mean_targets_by_kind={
            kind: (sum(sizes) / len(sizes) if sizes else 0.0)
            for kind, sizes in by_kind.items()},
        target_set_spread=_spread(nonempty_sets),
        class_size_spread=_spread(list(class_sizes.values())),
        empty_target_branches=empty)


def compare(profiles: Dict[str, CfgProfile]) -> str:
    """Side-by-side text table over named profiles."""
    names = list(profiles)
    lines = [f"{'metric':28s} " + " ".join(f"{n:>12s}" for n in names)]
    keys = ["IBs", "IBTs", "EQCs", "empty-target branches"]
    rows = {name: dict(p.rows()) for name, p in profiles.items()}
    for key in keys:
        cells = " ".join(f"{rows[n].get(key, ''):>12}" for n in names)
        lines.append(f"{key:28s} {cells}")
    return "\n".join(lines)
