"""Overhead metrics: execution time (Figs. 5-6) and space (Sec. 8.1).

Execution overhead is the ratio of instrumented to native *model
cycles* on identical inputs; space overhead compares static code sizes
and reports the ID-table footprint (which the paper notes equals the
code-region size, Tary being a 4-bytes-per-4-bytes mirror).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class OverheadResult:
    """One benchmark's Fig. 5/6 data point."""

    name: str
    arch: str
    native_cycles: int
    mcfi_cycles: int
    native_instructions: int = 0
    mcfi_instructions: int = 0
    updates: int = 0          # update transactions observed (Fig. 6)

    @property
    def overhead_pct(self) -> float:
        if self.native_cycles == 0:
            return 0.0
        return 100.0 * (self.mcfi_cycles / self.native_cycles - 1.0)


@dataclass
class SpaceResult:
    """One benchmark's space-overhead data point."""

    name: str
    native_code_bytes: int
    mcfi_code_bytes: int
    tary_bytes: int
    bary_bytes: int

    @property
    def code_increase_pct(self) -> float:
        if self.native_code_bytes == 0:
            return 0.0
        return 100.0 * (self.mcfi_code_bytes / self.native_code_bytes - 1.0)


def geometric_mean_overhead(results: Dict[str, OverheadResult]) -> float:
    """Aggregate overhead the way SPEC reports are usually averaged."""
    if not results:
        return 0.0
    product = 1.0
    for result in results.values():
        ratio = result.mcfi_cycles / max(result.native_cycles, 1)
        product *= ratio
    return 100.0 * (product ** (1.0 / len(results)) - 1.0)


def arithmetic_mean_overhead(results: Dict[str, OverheadResult]) -> float:
    if not results:
        return 0.0
    return sum(r.overhead_pct for r in results.values()) / len(results)
