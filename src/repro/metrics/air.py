"""AIR: Average Indirect-target Reduction (Zhang & Sekar, used in Sec. 8.3).

    AIR = (1/n) * sum_j (1 - |T_j| / S)

where ``n`` is the number of indirect branches, ``T_j`` the set of
targets branch ``j`` may reach under the protection scheme, and ``S``
the size of the unprotected target space (every byte of code).  An
unprotected program has AIR 0; stricter CFGs push AIR toward 1.

The paper's comparison table (Sec. 8.3) reports binCFI ~0.99, classic
CFI slightly higher, and MCFI the best of all — tiny numeric gaps that
nevertheless correspond to orders of magnitude in attack surface, which
is why Table 3's EQC counts are reported alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.baselines.policies import PolicyResult


@dataclass
class AirResult:
    policy: str
    air: float
    branches: int
    target_space: int
    mean_targets: float


def air_of_policy(policy: PolicyResult, target_space: int) -> AirResult:
    """Compute AIR for one policy over one program image."""
    if target_space <= 0:
        raise ValueError("target space must be positive")
    sizes: List[int] = [len(t) for t in policy.branch_targets.values()]
    branches = len(sizes)
    if branches == 0:
        return AirResult(policy=policy.name, air=0.0, branches=0,
                         target_space=target_space, mean_targets=0.0)
    air = sum(1.0 - min(size, target_space) / target_space
              for size in sizes) / branches
    return AirResult(policy=policy.name, air=air, branches=branches,
                     target_space=target_space,
                     mean_targets=sum(sizes) / branches)


def air_table(policies: List[PolicyResult],
              target_space: int) -> Dict[str, AirResult]:
    """AIR for several policies over the same image (the Sec. 8.3 table)."""
    return {policy.name: air_of_policy(policy, target_space)
            for policy in policies}
