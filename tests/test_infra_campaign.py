"""Campaign orchestration: registries, cache-aware builds, the matrix
runner, parallel artifact equivalence and the two CLIs."""

import json

import pytest

import repro.infra.campaign as campaign
from repro.infra.cache import ArtifactCache
from repro.infra.campaign import (build_program, parallel_artifact,
                                  run_campaign, run_result, run_target)
from repro.infra.instances import DEFAULT_INSTANCES, INSTANCES, expand
from repro.infra.results import (ResultStore, load_records, regenerate,
                                 render_fig5, render_table3, summarize)
from repro.infra.targets import TARGETS, all_targets, target
from repro.workloads.spec import BENCHMARKS


@pytest.fixture(autouse=True)
def _isolated_cache_config(monkeypatch):
    """Keep the process-wide cache configuration out of other tests."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    campaign.configure(None)
    yield
    campaign.configure(None)


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestRegistries:
    def test_twelve_workload_targets_plus_libc(self):
        assert set(BENCHMARKS) <= set(TARGETS)
        assert len(all_targets()) == 12
        assert len(all_targets(include_libraries=True)) == 13
        assert not TARGETS["libc"].linkable

    def test_workload_targets_link_against_libc(self):
        spec = target("gcc")
        assert spec.modules == ("gcc", "libc")
        sources = spec.sources()
        assert list(sources) == ["gcc", "libc"]

    def test_unknown_target_message(self):
        with pytest.raises(KeyError, match="unknown target"):
            target("nginx")

    def test_instance_matrix(self):
        assert INSTANCES["mcfi-x64"].mcfi
        assert not INSTANCES["native-x32"].mcfi
        assert INSTANCES["bincfi-x64"].policy == "bincfi"
        assert not INSTANCES["bincfi-x64"].executable
        assert [i.name for i in expand(DEFAULT_INSTANCES)] == \
            ["native-x64", "mcfi-x64"]

    def test_bare_policy_name_expands_every_arch(self):
        names = [i.name for i in expand(["mcfi"])]
        assert names == ["mcfi-x32", "mcfi-x64"]

    def test_unknown_instance_message(self):
        with pytest.raises(KeyError, match="unknown instance"):
            expand(["tsan-x64"])


class TestCacheAwareBuild:
    def test_build_program_matches_plain_toolchain(self, cache):
        from repro.toolchain import compile_and_link
        from repro.workloads.spec import workload
        via_infra = build_program("libquantum", "x64", True, cache=cache)
        plain = compile_and_link(
            {"libquantum": workload("libquantum").source},
            arch="x64", mcfi=True)
        assert bytes(via_infra.module.code) == bytes(plain.module.code)
        assert via_infra.entry == plain.entry

    def test_second_build_is_all_hits(self, cache):
        build_program("libquantum", "x64", True, cache=cache)
        before = cache.stats.snapshot()
        build_program("libquantum", "x64", True, cache=cache)
        delta = cache.stats.delta(before)
        assert delta.misses == 0 and delta.hits >= 1

    def test_libc_object_shared_across_targets(self, cache):
        """Instrument once, reuse across programs: the second target
        reuses the cached libc .mcfo instead of recompiling it."""
        build_program("libquantum", "x64", True, cache=cache)
        before = cache.stats.snapshot()
        build_program("bzip2", "x64", True, cache=cache)
        delta = cache.stats.delta(before)
        assert delta.hits >= 1  # libc came from the cache

    def test_library_target_not_linkable(self, cache):
        with pytest.raises(ValueError, match="library-only"):
            build_program("libc", "x64", True, cache=cache)

    def test_run_result_memoized(self, cache):
        first = run_result("libquantum", "x64", mcfi=False, cache=cache)
        before = cache.stats.snapshot()
        second = run_result("libquantum", "x64", mcfi=False, cache=cache)
        delta = cache.stats.delta(before)
        assert delta.hits == 1 and delta.misses == 0
        assert second.cycles == first.cycles
        assert second.output == first.output


class TestRunTarget:
    def test_build_and_cfgstats_records(self, cache):
        records = run_target("libquantum", "mcfi-x64", cache=cache,
                             execute=False)
        kinds = [r["kind"] for r in records]
        assert kinds == ["build", "cfgstats"]
        assert records[0]["cache_misses"] > 0
        assert records[1]["IBs"] > 0

    def test_execute_records_cycles(self, cache):
        records = run_target("libquantum", "native-x64", cache=cache,
                             execute=True)
        run_record = next(r for r in records if r["kind"] == "run")
        assert run_record["status"] == "ok"
        assert run_record["cycles"] > 0
        assert run_record["output"].startswith("checksum")

    def test_policy_instance_yields_air(self, cache):
        records = run_target("libquantum", "bincfi-x64", cache=cache)
        policy_record = next(r for r in records if r["kind"] == "policy")
        assert 0.9 < policy_record["air"] <= 1.0


class TestRunCampaign:
    def test_matrix_parallel_with_store(self, tmp_path, cache):
        store = ResultStore(tmp_path / "results.jsonl")
        summary = run_campaign(
            ["libquantum", "bzip2"], ["mcfi-x64"], jobs=2,
            cache_dir=str(cache.root), store=store, execute=False)
        assert summary["cells"] == 2
        assert summary["failures"] == []
        records = store.records()
        kinds = {r["kind"] for r in records}
        assert {"build", "cfgstats", "summary"} <= kinds
        # warm second campaign: everything from the cache
        summary2 = run_campaign(
            ["libquantum", "bzip2"], ["mcfi-x64"], jobs=2,
            cache_dir=str(cache.root), store=store, execute=False)
        assert summary2["cache_misses"] == 0
        assert summary2["cache_hits"] >= 2
        assert summary2["cache_hit_rate"] == 1.0


class TestParallelArtifactEquivalence:
    def test_table1_parallel_equals_serial(self):
        import repro.experiments as ex
        names = ["bzip2", "mcf", "libquantum"]
        serial = ex.table1_analysis(names)
        parallel = parallel_artifact("table1", names, jobs=3)
        assert list(parallel) == list(serial)
        for name in names:
            assert parallel[name].table1_row() == \
                serial[name].table1_row()

    def test_table3_parallel_equals_serial(self, tmp_path, cache):
        import repro.experiments as ex
        campaign.configure(str(cache.root))
        names = ["libquantum", "mcf"]
        store = ResultStore(tmp_path / "results.jsonl")
        parallel = parallel_artifact("table3", names, archs=("x64",),
                                     jobs=2, store=store)
        serial = ex.table3_cfg_stats(names, archs=("x64",))
        assert parallel == serial
        assert list(parallel) == list(serial)  # iteration order too
        artifact_records = [r for r in store.records()
                            if r["kind"] == "artifact"]
        assert len(artifact_records) == 2
        assert all(r["artifact"] == "table3" for r in artifact_records)

    def test_failing_job_surfaces(self):
        with pytest.raises(RuntimeError, match="job"):
            parallel_artifact("table3", ["no-such-benchmark"], jobs=2)

    def test_non_parallel_artifact_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            parallel_artifact("stm", ["gcc"], jobs=2)


class TestReporters:
    def _seed_records(self, store):
        store.append("run", target="lbm", instance="native-x64",
                     arch="x64", mcfi=False, status="ok",
                     cycles=1000, instructions=900, seconds=0.5)
        store.append("run", target="lbm", instance="mcfi-x64",
                     arch="x64", mcfi=True, status="ok",
                     cycles=1100, instructions=950, seconds=0.5)
        store.append("cfgstats", target="lbm", instance="mcfi-x64",
                     arch="x64", IBs=10, IBTs=20, EQCs=5)
        store.append("cfgstats", target="lbm", instance="mcfi-x32",
                     arch="x32", IBs=11, IBTs=22, EQCs=6)

    def test_render_fig5_format(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        self._seed_records(store)
        text = render_fig5(store.records())
        assert "benchmark" in text and "overhead" in text
        assert "lbm" in text
        assert "10.00%" in text  # (1100-1000)/1000
        assert text.splitlines()[-1].startswith("average")

    def test_render_table3_needs_both_archs(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        self._seed_records(store)
        text = render_table3(store.records())
        assert "IBs32" in text and "IBs64" in text

    def test_regenerate_writes_artifact_files(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        self._seed_records(store)
        written = regenerate(store.records(), tmp_path / "out")
        names = {p.name for p in written}
        assert names == {"fig5_overhead_x64.txt",
                         "table3_cfg_stats.txt"}

    def test_summarize_counts(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        self._seed_records(store)
        store.append("build", target="lbm", instance="mcfi-x64",
                     arch="x64", mcfi=True, seconds=0.1,
                     cache_hits=3, cache_misses=1)
        totals = summarize(store.records())
        assert totals["runs"] == 2
        assert totals["cache_hits"] == 3
        assert totals["cache_hit_rate"] == 0.75


class TestCli:
    def test_infra_build_and_report(self, tmp_path, capsys):
        from repro.tools.infra import main
        cache_dir = str(tmp_path / "cache")
        rc = main(["build", "--benchmarks", "libquantum",
                   "--jobs", "2", "--cache-dir", cache_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 matrix cells" in out
        assert "artifact cache" in out

        rc = main(["report", "--cache-dir", cache_dir,
                   "--results-dir", str(tmp_path / "artifacts")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign report" in out
        assert "hit rate" in out

    def test_spec_parallel_stdout_matches_serial(self, tmp_path, capsys):
        """--jobs/--cache-dir must not change what lands on stdout."""
        from repro.tools.spec import main
        argv = ["table1", "table3", "--benchmarks", "libquantum", "mcf"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2", "--cache-dir",
                            str(tmp_path / "cache")]) == 0
        captured = capsys.readouterr()
        assert captured.out == serial_out
        assert "[infra]" in captured.err  # summary goes to stderr

    def test_spec_jsonl_written(self, tmp_path):
        from repro.tools.spec import main
        cache_dir = tmp_path / "cache"
        assert main(["table3", "--benchmarks", "libquantum",
                     "--jobs", "2", "--cache-dir", str(cache_dir)]) == 0
        records = load_records(cache_dir / "results.jsonl")
        kinds = [r["kind"] for r in records]
        assert "artifact" in kinds and "summary" in kinds
        summary = records[-1]
        assert summary["kind"] == "summary"
        assert summary["wall_seconds"] > 0

    def test_run_result_cached_run_key_line(self, tmp_path):
        """Warm spec invocation reports a >=90% hit rate (the
        acceptance bar) in its JSONL summary."""
        import repro.experiments as ex
        from repro.tools.spec import main
        cache_dir = tmp_path / "cache"
        argv = ["table3", "--benchmarks", "libquantum", "--jobs", "2",
                "--cache-dir", str(cache_dir)]
        # Drop in-process memos between invocations so each behaves
        # like a freshly started CLI process.
        ex._PROGRAM_CACHE.clear()
        assert main(argv) == 0
        campaign.configure(None)
        ex._PROGRAM_CACHE.clear()
        assert main(argv) == 0
        records = load_records(cache_dir / "results.jsonl")
        summaries = [r for r in records if r["kind"] == "summary"]
        assert len(summaries) == 2
        warm = summaries[-1]
        assert warm["cache_hit_rate"] >= 0.9
