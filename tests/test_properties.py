"""Cross-cutting property-based tests over assembler, CFG generation,
and the verifier (mutation testing of check sequences)."""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg.generator import generate_cfg
from repro.core.verifier import verify_module
from repro.errors import VerificationError
from repro.isa.assembler import (
    Align,
    AlignEnd,
    AsmInstr,
    Label,
    LabelRef,
    assemble,
)
from repro.isa.disasm import sweep_ranges
from repro.isa.instructions import Op
from repro.isa.registers import Reg


class TestAssemblerProperties:
    @given(st.lists(st.sampled_from([
        AsmInstr(Op.NOP, ()),
        AsmInstr(Op.MOV_RI, (Reg.RAX, 1)),
        AsmInstr(Op.ADD_RR, (Reg.RAX, Reg.RBX)),
        AsmInstr(Op.PUSH, (Reg.RAX,)),
        Align(4),
        Align(8),
    ]), min_size=1, max_size=30),
        st.integers(min_value=0, max_value=0x10000).map(lambda b: b * 4))
    @settings(max_examples=50)
    def test_layout_is_deterministic_and_decodable(self, items, base):
        first = assemble(list(items), base=base)
        second = assemble(list(items), base=base)
        assert first.code == second.code
        # the image decodes completely (no truncated instructions)
        sweep_ranges(first.code, base, [(base, base + len(first.code))])

    @given(st.integers(min_value=0, max_value=200),
           st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=50)
    def test_align_invariant(self, n_pre_nops, alignment):
        items = [AsmInstr(Op.MOV_RI, (Reg.RAX, 7))] * (n_pre_nops % 7) \
            + [Align(alignment), Label("t"), AsmInstr(Op.HLT, ())]
        out = assemble(items, base=0x1000)
        assert out.labels["t"] % alignment == 0

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=30)
    def test_align_end_invariant(self, n_pre):
        items = [AsmInstr(Op.NOP, ())] * 0 + \
            [AsmInstr(Op.PUSH, (Reg.RAX,))] * n_pre + \
            [AlignEnd(4), AsmInstr(Op.CALL, (LabelRef("f"),)),
             Label("after"), Label("f"), AsmInstr(Op.HLT, ())]
        out = assemble(items, base=0x2000)
        assert out.labels["after"] % 4 == 0


class TestCfgProperties:
    def test_invariants_on_all_benchmarks(self, bench_program):
        """Structural invariants every generated CFG must satisfy."""
        aux = bench_program["mcfi"].module.aux
        cfg = generate_cfg(aux)
        target_ecns = set(cfg.tary_ecns.values())
        for site in aux.branch_sites:
            targets = cfg.branch_targets[site.site]
            ecn = cfg.bary_ecns[site.site]
            # every resolved target has a Tary entry of the same class
            for target in targets:
                assert cfg.tary_ecns[target] == ecn
            # empty-target branches get an ECN matching no target
            if not targets:
                assert ecn not in target_ecns
        # ECNs are dense from 0
        assert target_ecns == set(range(len(target_ecns)))

    def test_permits_is_the_ecn_overapproximation(self, bench_program):
        """``permits`` equals ECN equality, which *over-approximates*
        the resolved target sets — exactly the precision the classic
        CFI/MCFI encoding trades for O(1) checks (paper Sec. 2):
        membership implies permission, and permission implies same
        equivalence class."""
        aux = bench_program["mcfi"].module.aux
        cfg = generate_cfg(aux)
        import random
        rng = random.Random(1)
        all_targets = list(cfg.tary_ecns)
        for site in list(cfg.branch_targets)[:30]:
            targets = cfg.branch_targets[site]
            for target in targets:
                assert cfg.permits(site, target)  # soundness of install
            for target in rng.sample(all_targets,
                                     min(10, len(all_targets))):
                assert cfg.permits(site, target) == (
                    cfg.tary_ecns[target] == cfg.bary_ecns[site])

    def test_generation_is_deterministic(self, bench_program):
        aux = bench_program["mcfi"].module.aux
        first = generate_cfg(aux)
        second = generate_cfg(aux)
        assert first.tary_ecns == second.tary_ecns
        assert first.bary_ecns == second.bary_ecns


class TestVerifierMutation:
    """Mutation testing: damaging ANY instruction of a check sequence
    must be caught by the verifier — the property that removes the
    rewriter from the trusted computing base."""

    def _check_sequences(self, module):
        instrs = sweep_ranges(module.code, module.base,
                              module.code_ranges)
        sequences = []
        for index, decoded in enumerate(instrs):
            if decoded.instr.op in (Op.JMP_R, Op.CALL_R):
                cursor = index
                while instrs[cursor - 1].instr.op == Op.NOP:
                    cursor -= 1
                sequences.append(instrs[cursor - 4:cursor + 1])
        return sequences

    def test_every_check_instruction_is_load_bearing(self, demo_program):
        module = demo_program.module
        sequences = self._check_sequences(module)
        assert sequences
        mutated_count = 0
        for sequence in sequences[:8]:
            for decoded in sequence[:-1]:  # the 4 check instructions
                broken = copy.deepcopy(module)
                code = bytearray(broken.code)
                offset = decoded.address - module.base
                for k in range(decoded.length):
                    code[offset + k] = int(Op.NOP)
                broken.code = bytes(code)
                with pytest.raises(VerificationError):
                    verify_module(broken)
                mutated_count += 1
        assert mutated_count >= 16

    def test_retargeting_branch_register_is_caught(self, demo_program):
        """Swapping the checked register (rcx) for another must fail."""
        from repro.isa.encoding import encode
        from repro.isa.instructions import Instruction
        module = copy.deepcopy(demo_program.module)
        instrs = sweep_ranges(module.code, module.base,
                              module.code_ranges)
        code = bytearray(module.code)
        for decoded in instrs:
            if decoded.instr.op == Op.JMP_R:
                patched = encode(Instruction(Op.JMP_R, (int(Reg.RBX),)))
                offset = decoded.address - module.base
                code[offset:offset + len(patched)] = patched
                break
        module.code = bytes(code)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_unmasking_a_store_is_caught(self):
        """Removing a write-sandbox mask must fail verification."""
        from repro.toolchain import compile_and_link
        program = compile_and_link({"t": """
            long g;
            void setg(long *p, long v) { *p = v; }
            int main(void) { setg(&g, 5); return (int)g; }
        """}, mcfi=True)
        module = copy.deepcopy(program.module)
        instrs = sweep_ranges(module.code, module.base,
                              module.code_ranges)
        code = bytearray(module.code)
        mutated = False
        for index, decoded in enumerate(instrs):
            if decoded.instr.op == Op.MOVZX32 and index + 1 < len(instrs) \
                    and instrs[index + 1].instr.op in (
                        Op.STORE8, Op.STORE16, Op.STORE32, Op.STORE64) \
                    and instrs[index + 1].instr.operands[0] not in (
                        Reg.RSP, Reg.RBP):
                offset = decoded.address - module.base
                for k in range(decoded.length):
                    code[offset + k] = int(Op.NOP)
                mutated = True
                break
        assert mutated, "no maskable store found"
        module.code = bytes(code)
        with pytest.raises(VerificationError):
            verify_module(module)
