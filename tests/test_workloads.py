"""Workload integration tests: every benchmark compiles, verifies,
and produces identical output native vs MCFI-instrumented.

These are the heaviest tests in the suite (each runs two full VM
executions); the compiled programs are cached session-wide.
"""

import pytest

from repro.core.verifier import verify_module
from repro.experiments import compiled, run_once
from repro.workloads.spec import BENCHMARKS, all_workloads, workload


@pytest.mark.parametrize("name", BENCHMARKS)
def test_instrumentation_transparent(name):
    native = run_once(name, "x64", mcfi=False)
    hardened = run_once(name, "x64", mcfi=True)
    assert native.ok, native.fault
    assert hardened.ok, hardened.violation or hardened.fault
    assert native.output == hardened.output
    assert native.exit_code == hardened.exit_code
    assert b"checksum" in native.output


@pytest.mark.parametrize("name", BENCHMARKS)
def test_modules_verify(name):
    report = verify_module(compiled(name, "x64", True).module)
    assert report.ok
    assert report.stats["checked_branches"] > 0
    assert report.stats["checked_branches"] == \
        report.stats["proved_branches"]


def test_x32_matches_x64_output():
    for name in ("bzip2", "libquantum", "milc"):
        assert run_once(name, "x32", True).output == \
            run_once(name, "x64", True).output


def test_registry_contents():
    assert len(BENCHMARKS) == 12
    workloads = all_workloads()
    assert [w.name for w in workloads] == list(BENCHMARKS)
    # nine integer + three floating-point, as in the paper
    floats = {"milc", "lbm", "sphinx3"}
    assert floats < set(BENCHMARKS)


def test_workloads_have_paper_references():
    for spec in all_workloads():
        assert spec.paper_table1["SLOC"] > 0
        assert spec.paper_table3_x64[0] > 0
        assert spec.scale >= 1


def test_table3_shape():
    """Relative CFG-statistic ordering from the paper's Table 3."""
    from repro.cfg.generator import generate_cfg
    stats = {}
    for name in BENCHMARKS:
        program = compiled(name, "x64", True)
        stats[name] = generate_cfg(program.module.aux).stats()
    # gcc has the most indirect branches and classes; lbm/mcf the least
    assert stats["gcc"]["IBs"] == max(s["IBs"] for s in stats.values())
    assert stats["gcc"]["EQCs"] == max(s["EQCs"] for s in stats.values())
    small = min(stats["lbm"]["IBs"], stats["mcf"]["IBs"])
    assert small <= min(stats[n]["IBs"] for n in ("perlbench", "gcc",
                                                  "gobmk"))
    for name in BENCHMARKS:
        assert 0 < stats[name]["EQCs"] <= stats[name]["IBTs"]


def test_x64_has_fewer_eqcs_than_x32():
    """Tail-call optimization merges return classes (paper Table 3)."""
    from repro.cfg.generator import generate_cfg
    fewer = 0
    for name in ("perlbench", "gcc", "gobmk", "hmmer"):
        eqc32 = generate_cfg(compiled(name, "x32", True).module.aux
                             ).stats()["EQCs"]
        eqc64 = generate_cfg(compiled(name, "x64", True).module.aux
                             ).stats()["EQCs"]
        if eqc64 < eqc32:
            fewer += 1
    assert fewer >= 3
