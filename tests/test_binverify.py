"""Tests for the binary CFI verifier (repro.analysis.binverify).

The verifier is the trust boundary that removes the rewriter (and the
build pool, and the cache) from the TCB: these tests check that it
accepts everything the real toolchain emits, rejects targeted unsafe
mutations with the right diagnostic codes, and holds as the gate at
the unit-publish and dlopen layers.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.analysis.binverify import (
    VerifyReport,
    analyze_module,
    image_of_module,
    verify_unit,
)
from repro.errors import UnitVerificationError, VerificationError
from repro.faults.miscompile import (
    MISCOMPILE_INJECTORS,
    MutationContext,
    evasion_campaign,
)
from repro.isa.disasm import sweep_ranges
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.toolchain import compile_and_link


def _mutate(module, **overrides):
    return dataclasses.replace(module, **overrides)


def _decoded(module):
    return sweep_ranges(module.code, module.base, module.code_ranges)


def _codes(report):
    return {diag.code for diag in report.diagnostics}


def _nop_out(code, module, decoded_instr):
    off = decoded_instr.address - module.base
    code[off:off + decoded_instr.length] = \
        bytes([Op.NOP]) * decoded_instr.length


class TestAccept:
    def test_demo_module_verifies(self, demo_program):
        report = analyze_module(demo_program.module)
        assert report.ok
        assert isinstance(report, VerifyReport)
        assert report.check_spans
        assert report.stats["checked_branches"] == \
            report.stats["proved_branches"]
        assert all(verdict == "proved"
                   for verdict in report.verdicts.values())

    def test_spans_lie_inside_module(self, demo_program):
        module = demo_program.module
        report = analyze_module(module)
        for start, end in report.check_spans:
            assert module.base <= start < end <= module.limit

    def test_report_roundtrip(self, demo_program):
        report = analyze_module(demo_program.module)
        clone = VerifyReport.from_dict(report.to_dict())
        assert clone.module == report.module
        assert clone.ok == report.ok
        assert clone.stats == report.stats
        assert clone.check_spans == report.check_spans
        assert clone.verdicts == report.verdicts

    def test_dict_shim_warns(self, demo_program):
        report = analyze_module(demo_program.module)
        with pytest.warns(DeprecationWarning):
            assert report["checked_branches"] == \
                report.stats["checked_branches"]
        with pytest.warns(DeprecationWarning):
            assert report.get("nonexistent", 7) == 7
        with pytest.warns(DeprecationWarning):
            assert "checked_branches" in list(report.keys())


class TestReject:
    """Each targeted mutation must produce the right diagnostic."""

    def _ctx(self, demo_program):
        return MutationContext.of(demo_program.module)

    def test_spliced_check_instruction(self, demo_program):
        module = demo_program.module
        ctx = self._ctx(demo_program)
        start, end = ctx.check_spans[0]
        code = bytearray(module.code)
        victim = next(d for d in ctx.decoded
                      if start <= d.address < end
                      and d.instr.op == Op.CMPW_RR)
        _nop_out(code, module, victim)
        report = analyze_module(_mutate(module, code=bytes(code)))
        assert not report.ok
        assert "MCFI008" in _codes(report)

    def test_stripped_mask_before_branch(self, demo_program):
        module = demo_program.module
        ctx = self._ctx(demo_program)
        start, _ = ctx.check_spans[0]
        code = bytearray(module.code)
        mask = next(d for d in ctx.decoded
                    if d.end == start and d.instr.op == Op.MOVZX32)
        _nop_out(code, module, mask)
        report = analyze_module(_mutate(module, code=bytes(code)))
        assert not report.ok
        assert "MCFI005" in _codes(report)
        assert any("not dominated" in diag.message
                   for diag in report.errors)

    def test_stripped_store_mask(self):
        program = compile_and_link({"t": r"""
            int cell = 5;
            int poke(int *p, int v) { *p = v; return *p; }
            int main(void) { return poke(&cell, 41); }
        """}, mcfi=True)
        module = program.module
        decoded = _decoded(module)
        masks = [d for d in decoded if d.instr.op == Op.MOVZX32
                 and d.instr.operands[0] not in
                 (Reg.RCX, Reg.RSP, Reg.RBP)]
        assert masks, "expected a store-base mask in poke()"
        code = bytearray(module.code)
        for mask in masks:
            _nop_out(code, module, mask)
        report = analyze_module(_mutate(module, code=bytes(code)))
        assert not report.ok
        assert "MCFI006" in _codes(report)
        assert any("unsandboxed store" in diag.message
                   for diag in report.errors)

    def test_skewed_direct_call(self, demo_program):
        module = demo_program.module
        ctx = self._ctx(demo_program)
        victim = next(d for d in ctx.decoded
                      if d.instr.op == Op.CALL
                      and d.instr.branch_target(d.address) + 1
                      not in ctx.label_addrs)
        code = bytearray(module.code)
        off = victim.address - module.base + 1
        rel = int.from_bytes(code[off:off + 4], "little", signed=True)
        code[off:off + 4] = (rel + 1).to_bytes(4, "little", signed=True)
        report = analyze_module(_mutate(module, code=bytes(code)))
        assert not report.ok
        assert "MCFI007" in _codes(report)

    def test_undecodable_byte(self, demo_program):
        module = demo_program.module
        code = bytearray(module.code)
        nop = next(d for d in _decoded(module)
                   if d.instr.op == Op.NOP)
        code[nop.address - module.base] = 0xFF
        report = analyze_module(_mutate(module, code=bytes(code)))
        assert not report.ok
        assert "MCFI007" in _codes(report)
        assert any("disassemble" in diag.message
                   for diag in report.errors)

    def test_dropped_transaction(self, demo_program):
        module = demo_program.module
        ctx = self._ctx(demo_program)
        start, end = ctx.check_spans[-1]
        code = bytearray(module.code)
        for d in ctx.decoded:
            if start <= d.address < end:
                _nop_out(code, module, d)
        report = analyze_module(_mutate(module, code=bytes(code)))
        assert not report.ok
        assert "MCFI008" in _codes(report)
        assert any("intact check transactions" in diag.message
                   for diag in report.errors)

    def test_native_module_rejected(self, demo_program_native):
        report = analyze_module(demo_program_native.module)
        assert not report.ok


class TestUnitGrain:
    @pytest.fixture(scope="class")
    def units(self):
        from repro.build.graph import compile_module_units
        from repro.mir.lowering import lower_unit
        from repro.toolchain import frontend
        checked = frontend(r"""
            typedef int (*op)(int);
            int twice(int x) { return 2 * x; }
            int thrice(int x) { return 3 * x; }
            int apply(op f, int x) { return f(x); }
            int main(void) {
                return apply(twice, 5) + apply(thrice, 4);
            }
        """, name="t")
        module_units, _, _ = compile_module_units(
            lower_unit(checked), checked, "x64", verify_units=False)
        return module_units.units

    def test_units_verify(self, units):
        for artifact in units:
            report = verify_unit(artifact, arch="x64", module="t")
            assert report.ok
            assert report.grain == "unit"

    def test_tampered_unit_rejected(self, units):
        victim = next(u for u in units if u.fn == "apply")
        bad = dataclasses.replace(
            victim, code=b"\xff" + victim.code[1:])
        with pytest.raises(UnitVerificationError) as info:
            verify_unit(bad, arch="x64", module="t")
        assert info.value.unit == "apply"
        assert info.value.report is not None
        assert not info.value.report.ok


class _UnsafeResultPool:
    """Workers that return *fingerprint-valid* but unverifiable code:
    identity fraud passes, the safety gate must still reject."""

    def __init__(self):
        self.jobs = 0

    def map(self, fn, argses):
        from repro.infra.pool import JobResult
        results = []
        for index, args in enumerate(argses):
            artifact = fn(*args)
            artifact.code = b"\xff" + artifact.code[1:]
            self.jobs += 1
            results.append(JobResult(id=str(index), ok=True,
                                     value=artifact))
        return results


class TestBuildGate:
    SOURCE = r"""
        typedef int (*op)(int);
        int inc(int x) { return x + 1; }
        int dec(int x) { return x - 1; }
        int dbl(int x) { return x + x; }
        int apply(op f, int x) { return f(x); }
        int main(void) {
            return apply(inc, 3) + apply(dec, 9) + apply(dbl, 10);
        }
    """

    def test_unsafe_pool_results_never_published(self, tmp_path):
        from repro.build.api import build_program
        from repro.infra.cache import open_cache
        cache = open_cache(tmp_path / "cache")
        pool = _UnsafeResultPool()
        result = build_program({"prog": self.SOURCE}, cache=cache,
                               pool=pool)
        assert pool.jobs > 0
        assert result.stats["unit_rejected"] == pool.jobs
        assert result.stats["unit_parallel"] == 0
        # the inline recompile must still produce the clean image
        clean = build_program({"prog": self.SOURCE})
        assert result.program.module.code == clean.program.module.code
        # and everything published re-verifies
        for path in (cache.root / "units").iterdir():
            artifact = cache.get_unit(path.stem)
            verify_unit(artifact, arch="x64", module="prog")

    def test_gate_can_be_disabled(self, tmp_path):
        from repro.build.api import build_program
        result = build_program({"prog": self.SOURCE})
        off = build_program({"prog": self.SOURCE}, verify_units=False)
        assert result.program.module.code == off.program.module.code


class TestDlopenGate:
    MAIN = {"main": r"""
        int libfn(int x);
        int main(void) {
            long h = dlopen("plugin");
            return h != 0;
        }
    """}
    LIB = "int libfn(int x) { return x * 3 + 1; }"

    def _linker(self, verify):
        from repro.linker.dynamic_linker import DynamicLinker
        from repro.runtime.runtime import Runtime
        from repro.toolchain import compile_module
        program = compile_and_link(self.MAIN, mcfi=True,
                                   allow_unresolved=["libfn"])
        runtime = Runtime(program)
        linker = DynamicLinker(runtime, verify=verify)
        linker.register("plugin",
                        compile_module(self.LIB, name="plugin"))
        return linker

    def test_verify_is_the_default(self):
        from repro.linker.dynamic_linker import DynamicLinker
        from repro.runtime.runtime import Runtime
        program = compile_and_link(self.MAIN, mcfi=True,
                                   allow_unresolved=["libfn"])
        assert DynamicLinker(Runtime(program)).verify

    def test_tampered_library_rejected(self, monkeypatch):
        import repro.linker.dynamic_linker as dl
        real = dl.build_module

        def corrupting(raw, asm, assembled, site_base=0):
            module = real(raw, asm, assembled, site_base=site_base)
            code = bytearray(module.code)
            for d in _decoded(module):
                if d.instr.op == Op.MOVZX32:
                    _nop_out(code, module, d)
            return _mutate(module, code=bytes(code))

        linker = self._linker(verify=True)
        monkeypatch.setattr(dl, "build_module", corrupting)
        with pytest.raises(VerificationError):
            linker.dlopen("plugin")

        # without the gate the same corrupt library loads fine
        linker = self._linker(verify=False)
        monkeypatch.setattr(dl, "build_module", corrupting)
        assert linker.dlopen("plugin") != 0


class TestEvasionCampaign:
    def test_every_injector_has_a_cell(self):
        report = evasion_campaign(workloads=["lbm"], seeds=(0,))
        assert {c.injector for c in report.cells} == \
            set(MISCOMPILE_INJECTORS)
        assert report.ok, report.render()

    def test_mutations_are_deterministic(self, demo_program):
        ctx = MutationContext.of(demo_program.module)
        for name, fn in MISCOMPILE_INJECTORS.items():
            first = fn(ctx, random.Random(f"demo:{name}:0"))
            again = fn(ctx, random.Random(f"demo:{name}:0"))
            assert first == again

    def test_render_mentions_gate(self):
        report = evasion_campaign(workloads=["lbm"],
                                  injectors=["check_splice"],
                                  seeds=(0,))
        text = report.render()
        assert "undetected unsafe mutations: 0" in text
