"""Tests for :mod:`repro.service` — sharded tables, the update
coalescer, and the multi-tenant service loop.

The determinism contract gets the heaviest coverage: the same seed and
arrival order must produce byte-identical batched transactions, shard
versions, and JSONL round traces (hypothesis over seeds/geometry, plus
a golden trace pinned in ``tests/golden/service_trace_seed7.jsonl``).
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.idencoding import pack_id
from repro.core.tables import IdTables, TableSnapshot
from repro.core.transactions import UpdateLock
from repro.errors import RuntimeError_, ServiceBackpressure
from repro.faults.plane import FaultPlane
from repro.service import (
    ServiceLoop,
    ShardedIdTables,
    UpdateCoalescer,
    UpdateRequest,
)
from repro.service.coalescer import COMMITTED, FAILED
from repro.service.loop import WritesetTemplate
from repro.vm.memory import TableMemory

GOLDEN = Path(__file__).parent / "golden" / "service_trace_seed7.jsonl"

#: The pinned configuration behind the golden trace.
GOLDEN_CONFIG = dict(tenants=6, shards=3, seed=7, churn=2, window=6)


def _drain_all(coalescer):
    """Run the drain task to completion outside a scheduler."""
    ticks = [0]
    gen = coalescer.drain(active=lambda: False, clock=lambda: ticks[0])
    for _ in gen:
        ticks[0] += 1


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

class TestShardedIdTables:
    def test_bands_partition_the_tables(self):
        sharded = ShardedIdTables(shards=8)
        memory = sharded.memory
        assert sharded.shards[0].tary_lo == 0
        assert sharded.shards[-1].tary_hi == memory.tary_size
        assert sharded.shards[-1].site_hi == memory.bary_entries
        for left, right in zip(sharded.shards, sharded.shards[1:]):
            assert left.tary_hi == right.tary_lo
            assert left.site_hi == right.site_lo
            assert left.tary_lo % 4 == 0

    def test_shard_lookup_matches_bands(self):
        sharded = ShardedIdTables(shards=5)
        for shard in sharded.shards:
            assert sharded.shard_for_address(shard.tary_lo) is shard
            assert sharded.shard_for_address(shard.tary_hi - 4) is shard
            assert sharded.shard_for_site(shard.site_lo) is shard
            assert sharded.shard_for_site(shard.site_hi - 1) is shard

    def test_out_of_range_rejected(self):
        sharded = ShardedIdTables(shards=2)
        with pytest.raises(RuntimeError_):
            sharded.shard_for_address(sharded.memory.tary_size)
        with pytest.raises(RuntimeError_):
            sharded.shard_for_site(-1)

    def test_place_stripes_round_robin(self):
        sharded = ShardedIdTables(shards=4)
        placements = [sharded.place(slot, 16, 4) for slot in range(8)]
        assert [p[0] for p in placements] == [0, 1, 2, 3, 0, 1, 2, 3]
        # Second level stacks above the first inside the same shard.
        assert placements[4][1] == placements[0][1] + 16
        assert placements[4][2] == placements[0][2] + 4

    def test_place_raises_when_band_exhausted(self):
        sharded = ShardedIdTables(shards=2, bary_entries=8)
        with pytest.raises(RuntimeError_):
            # 4 sites per tenant, 4 sites per shard band: slot 2 is the
            # third tenant in shard 0's band and cannot fit.
            for slot in range(6):
                sharded.place(slot, 16, 4)

    def test_split_writes_routes_by_band(self):
        sharded = ShardedIdTables(shards=2)
        shard1 = sharded.shards[1]
        deltas = sharded.split_writes(
            set_tary={0: 3, shard1.tary_lo: 4},
            clear_tary=[4],
            set_bary={shard1.site_lo: 3},
            clear_bary=[0])
        assert set(deltas) == {0, 1}
        assert deltas[0].set_tary == {0: 3}
        assert deltas[0].clear_tary == [4]
        assert deltas[0].clear_bary == [0]
        assert deltas[1].set_tary == {shard1.tary_lo: 4}
        assert deltas[1].set_bary == {shard1.site_lo: 3}

    def test_too_many_shards_rejected(self):
        with pytest.raises(RuntimeError_):
            ShardedIdTables(shards=0)
        with pytest.raises(RuntimeError_):
            ShardedIdTables(TableMemory(bary_entries=4), shards=8)


class TestTableSnapshot:
    def test_range_bounded_rollback_restores_only_its_band(self):
        memory = TableMemory()
        tables = IdTables(memory)
        snapshot = TableSnapshot(tables, tary_range=(0, 64),
                                 site_range=(0, 16))
        memory.write_tary(4, 0x01010101 ^ 0x01010100)  # inside band
        memory.write_tary(128, 0x00000001)             # outside band
        generation = memory.generation
        snapshot.rollback()
        assert memory.read_tary(4) == 0
        assert memory.read_tary(128) == 0x00000001
        assert memory.generation == generation + 1  # dispatch inval

    def test_rollback_restores_bookkeeping(self):
        tables = IdTables(TableMemory())
        snapshot = TableSnapshot(tables)
        tables.version = 9
        tables.tary_ecns = {4: 1}
        snapshot.rollback()
        assert tables.version == 0
        assert tables.tary_ecns == {}


class TestUpdateLockOwnerApi:
    def test_owner_roundtrip(self):
        lock = UpdateLock()
        assert lock.owner() is None
        for _ in lock.acquire_spin("linker"):
            pass
        assert lock.owner() == "linker"
        lock.set_owner(None)
        assert not lock.held


# ---------------------------------------------------------------------------
# Coalescer
# ---------------------------------------------------------------------------

def _request(tenant, seq, shard, kind="dlopen"):
    tary_base = shard.tary_lo
    site_base = shard.site_lo
    if kind == "dlopen":
        return UpdateRequest(tenant=tenant, kind=kind, seq=seq,
                             set_tary={tary_base: 1, tary_base + 4: 2},
                             set_bary={site_base: 1})
    return UpdateRequest(tenant=tenant, kind=kind, seq=seq,
                         clear_tary=(tary_base, tary_base + 4),
                         clear_bary=(site_base,))


class TestUpdateCoalescer:
    def test_round_batches_one_transaction_per_shard(self):
        sharded = ShardedIdTables(shards=4)
        coalescer = UpdateCoalescer(sharded, window=0)
        for i, shard_index in enumerate((0, 0, 1, 1, 2)):
            coalescer.submit(_request(f"t{i}", 0,
                                      sharded.shards[shard_index]))
        _drain_all(coalescer)
        assert coalescer.rounds == 1
        assert coalescer.transactions == 3  # shards 0, 1, 2
        assert coalescer.committed == 5
        assert coalescer.coalescing_factor == pytest.approx(5 / 3)
        assert sharded.versions() == [1, 1, 1, 0]

    def test_merge_applies_deltas_in_arrival_order(self):
        sharded = ShardedIdTables(shards=1)
        shard = sharded.shards[0]
        coalescer = UpdateCoalescer(sharded, window=0)
        coalescer.submit(_request("a", 0, shard))            # install
        coalescer.submit(_request("a", 1, shard, "dlclose"))  # then clear
        _drain_all(coalescer)
        assert coalescer.committed == 2
        assert coalescer.transactions == 1
        assert sharded.decoded_state() == {"tary": {}, "bary": {}}

    def test_backpressure_bounds_the_queue(self):
        sharded = ShardedIdTables(shards=1)
        coalescer = UpdateCoalescer(sharded, max_pending=2)
        shard = sharded.shards[0]
        coalescer.submit(_request("a", 0, shard))
        coalescer.submit(_request("b", 0, shard))
        with pytest.raises(ServiceBackpressure) as exc:
            coalescer.submit(_request("c", 0, shard))
        assert exc.value.pending == 2
        assert exc.value.limit == 2
        assert coalescer.rejected == 1
        assert len(coalescer.log) == 2  # the rejected one is not logged

    def test_partial_failure_rolls_back_only_that_shard(self):
        sharded = ShardedIdTables(shards=2)
        plane = FaultPlane(seed=0).arm("service.commit.step", skip=0)
        coalescer = UpdateCoalescer(sharded, window=0, batch=1,
                                    fault_plane=plane)
        good = _request("a", 0, sharded.shards[1])
        bad = _request("b", 0, sharded.shards[0])
        coalescer.submit(bad)
        coalescer.submit(good)
        _drain_all(coalescer)
        assert bad.status == FAILED
        assert good.status == COMMITTED
        # Shard 0 rolled back byte-exactly; shard 1 committed.
        assert sharded.shards[0].rollbacks == 1
        assert sharded.shards[0].tables.version == 0
        assert sharded.shards[0].tables.tary_ecns == {}
        assert sharded.shards[1].tables.version == 1
        assert not sharded.shards[0].lock.held  # released, not wedged
        state = sharded.decoded_state()
        assert sharded.shards[1].tary_lo in state["tary"]
        assert 0 not in state["tary"]
        record = coalescer.trace[0]["shards"][0]
        assert record["status"] == "rolled-back"

    def test_mid_batch_rollback_is_byte_isolated(self):
        """Raw band bytes around a mid-batch fault: the failed shard is
        byte-identical to its pre-round state, sibling shards carry
        exactly their committed bytes — no word outside the failed
        band moves in either direction."""
        sharded = ShardedIdTables(shards=3)
        memory = sharded.memory

        def bands():
            return [(bytes(memory.tary[s.tary_lo:s.tary_hi]),
                     bytes(memory.bary[4 * s.site_lo:4 * s.site_hi]))
                    for s in sharded.shards]

        # Seed every shard with one committed round first.
        warm = UpdateCoalescer(sharded, window=0)
        for i, shard in enumerate(sharded.shards):
            warm.submit(_request(f"w{i}", 0, shard))
        _drain_all(warm)
        before = bands()
        versions = sharded.versions()

        # Fault shard 1's batch mid-write (each shard's transaction
        # takes 4 steps; skip=5 lands on shard 1's second step);
        # shards 0 and 2 commit.
        plane = FaultPlane(seed=0).arm("service.commit.step", skip=5,
                                       count=1)
        coalescer = UpdateCoalescer(sharded, window=0, batch=1,
                                    fault_plane=plane)
        requests = [_request(f"t{i}", 1, shard)
                    for i, shard in enumerate(sharded.shards)]
        for request in requests:
            coalescer.submit(request)
        _drain_all(coalescer)
        after = bands()

        assert requests[1].status == FAILED
        assert after[1] == before[1]                    # byte-identical
        assert sharded.versions()[1] == versions[1]
        for index in (0, 2):
            assert requests[index].status == COMMITTED
            assert after[index] != before[index]        # really committed
            assert sharded.versions()[index] == versions[index] + 1
            # ... and exactly what a clean rebuild of the shard's
            # bookkeeping would store: no stray bytes rode the fault.
            shard = sharded.shards[index]
            expected_tary = bytearray(shard.tary_hi - shard.tary_lo)
            for address, ecn in shard.tables.tary_ecns.items():
                word = pack_id(ecn, shard.tables.version)
                offset = address - shard.tary_lo
                expected_tary[offset:offset + 4] = \
                    word.to_bytes(4, "little")
            assert after[index][0] == bytes(expected_tary)

    def test_failed_shard_does_not_block_later_rounds(self):
        sharded = ShardedIdTables(shards=1)
        plane = FaultPlane(seed=0).arm("service.commit", skip=0, count=1)
        coalescer = UpdateCoalescer(sharded, window=0, fault_plane=plane)
        shard = sharded.shards[0]
        first = _request("a", 0, shard)
        coalescer.submit(first)
        _drain_all(coalescer)
        assert first.status == FAILED
        second = _request("a", 1, shard)
        coalescer.submit(second)
        _drain_all(coalescer)
        assert second.status == COMMITTED
        assert shard.tables.version == 1


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           tenants=st.integers(min_value=2, max_value=12),
           shards=st.integers(min_value=1, max_value=6),
           window=st.integers(min_value=0, max_value=8))
    def test_same_seed_same_everything(self, seed, tenants, shards,
                                       window):
        runs = [ServiceLoop(tenants=tenants, shards=shards, seed=seed,
                            churn=1, window=window) for _ in range(2)]
        reports = [loop.run() for loop in runs]
        assert runs[0].coalescer.trace_jsonl() == \
            runs[1].coalescer.trace_jsonl()
        assert reports[0].to_dict() == reports[1].to_dict()
        assert runs[0].sharded.versions() == runs[1].sharded.versions()
        assert runs[0].sharded.decoded_state() == \
            runs[1].sharded.decoded_state()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_batched_equals_serial_replay(self, seed):
        loop = ServiceLoop(tenants=8, shards=4, seed=seed, churn=2)
        report = loop.run()
        assert report.escalations == 0
        assert loop.sharded.decoded_state() == loop.replay_serial()

    def test_golden_trace(self):
        """The pinned seed-7 trace: any byte of drift is a determinism
        regression (or an intentional format change — regenerate with
        ``python -m repro service trace`` and update the golden)."""
        loop = ServiceLoop(**GOLDEN_CONFIG)
        loop.run()
        assert loop.coalescer.trace_jsonl() + "\n" == \
            GOLDEN.read_text(encoding="utf-8")

    def test_trace_is_canonical_jsonl(self):
        loop = ServiceLoop(tenants=4, shards=2, seed=1, churn=1)
        loop.run()
        for line in loop.coalescer.trace_jsonl().splitlines():
            entry = json.loads(line)
            assert json.dumps(entry, sort_keys=True) == line


# ---------------------------------------------------------------------------
# The service loop
# ---------------------------------------------------------------------------

class TestServiceLoop:
    def test_all_requests_commit_and_tables_drain_empty(self):
        loop = ServiceLoop(tenants=12, shards=4, seed=3, churn=2)
        report = loop.run()
        assert report.committed == 12 * 2 * 2  # open+close per round
        assert report.failed == 0
        assert report.escalations == 0
        assert report.checks == report.checks_allowed > 0
        assert loop.sharded.decoded_state() == {"tary": {}, "bary": {}}

    def test_global_mode_is_one_transaction_per_request(self):
        loop = ServiceLoop(tenants=6, seed=3, churn=1, mode="global")
        report = loop.run()
        assert report.shards == 1
        assert report.transactions == report.committed
        assert report.coalescing_factor == 1.0

    def test_tenants_placed_with_disjoint_bands(self):
        loop = ServiceLoop(tenants=40, shards=8, seed=0)
        seen = set()
        for spec in loop.specs:
            set_tary, set_bary = spec.writes()
            shard = loop.sharded.shards[spec.shard]
            for address in set_tary:
                assert shard.owns_address(address)
                assert address not in seen
                seen.add(address)
            for site in set_bary:
                assert shard.owns_site(site)

    def test_backpressure_engages_with_tiny_queue(self):
        loop = ServiceLoop(tenants=16, shards=2, seed=5, churn=1,
                           max_pending=2, window=8)
        report = loop.run()
        assert report.backpressure_waits > 0
        assert report.committed == 16 * 2  # retries still land them all

    def test_partial_failure_under_load(self):
        plane = FaultPlane(seed=0).arm("service.commit", skip=2, count=1)
        loop = ServiceLoop(tenants=8, shards=2, seed=1, churn=2,
                           fault_plane=plane)
        report = loop.run()
        assert report.failed > 0
        assert report.escalations == 0
        # Failed requests never installed: replay of committed ones
        # still reproduces the live state.
        assert loop.sharded.decoded_state() == loop.replay_serial()

    def test_custom_template_roundtrip(self):
        template = WritesetTemplate(
            tary=((0, 0), (4, 1), (8, 2)),
            bary=((0, 0), (1, 2)),
            checks=((0, 0), (1, 8)),
            n_classes=3)
        loop = ServiceLoop(tenants=5, shards=2, seed=2, churn=1,
                           template=template)
        report = loop.run()
        assert report.escalations == 0
        assert report.checks == report.checks_allowed
