"""Differential testing: randomly generated TinyC programs are run
natively, run under MCFI, and evaluated by an independent Python
oracle — all three must agree.

This tests two properties at once:

* **compiler correctness** — the TinyC -> SimISA pipeline computes C
  semantics (64-bit wrap-around, arithmetic shift, truncating
  division, short-circuit);
* **instrumentation transparency** — MCFI never changes a legal
  program's behaviour, the paper's implicit contract.
"""

from dataclasses import dataclass
from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from tests.conftest import run_source

_MASK = (1 << 64) - 1


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 64) if value >> 63 else value


# -- expression AST with dual semantics (render to C, evaluate in Python) --

@dataclass(frozen=True)
class Num:
    value: int

    def render(self) -> str:
        return str(self.value) if self.value >= 0 else f"({self.value})"

    def evaluate(self, env) -> int:
        return self.value


@dataclass(frozen=True)
class Var:
    index: int

    def render(self) -> str:
        return f"p{self.index}"

    def evaluate(self, env) -> int:
        return env[self.index]


@dataclass(frozen=True)
class Bin:
    op: str
    left: object
    right: object

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def evaluate(self, env) -> int:
        a = _signed(self.left.evaluate(env))
        b = _signed(self.right.evaluate(env))
        if self.op == "+":
            return _signed(a + b)
        if self.op == "-":
            return _signed(a - b)
        if self.op == "*":
            return _signed(a * b)
        if self.op == "&":
            return _signed(a & b)
        if self.op == "|":
            return _signed(a | b)
        if self.op == "^":
            return _signed(a ^ b)
        if self.op == "<":
            return 1 if a < b else 0
        if self.op == ">":
            return 1 if a > b else 0
        if self.op == "==":
            return 1 if a == b else 0
        raise AssertionError(self.op)


@dataclass(frozen=True)
class Shift:
    op: str
    left: object
    amount: int

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.amount})"

    def evaluate(self, env) -> int:
        a = _signed(self.left.evaluate(env))
        if self.op == "<<":
            return _signed(a << self.amount)
        return _signed(a >> self.amount)  # arithmetic (signed long)


@dataclass(frozen=True)
class SafeDiv:
    op: str
    left: object
    right: object

    def render(self) -> str:
        divisor = self.right.render()
        return (f"({self.left.render()} {self.op} "
                f"({divisor} == 0 ? 1 : {divisor}))")

    def evaluate(self, env) -> int:
        a = _signed(self.left.evaluate(env))
        b = _signed(self.right.evaluate(env))
        if b == 0:
            b = 1
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        if self.op == "/":
            return _signed(quotient)
        return _signed(a - quotient * b)


@dataclass(frozen=True)
class Neg:
    operand: object

    def render(self) -> str:
        return f"(-{self.operand.render()})"

    def evaluate(self, env) -> int:
        return _signed(-_signed(self.operand.evaluate(env)))


@dataclass(frozen=True)
class Ternary:
    cond: object
    then: object
    other: object

    def render(self) -> str:
        return (f"({self.cond.render()} ? {self.then.render()} : "
                f"{self.other.render()})")

    def evaluate(self, env) -> int:
        branch = self.then if _signed(self.cond.evaluate(env)) else \
            self.other
        return branch.evaluate(env)


def expressions(n_params: int, depth: int = 3):
    small = st.integers(min_value=-100, max_value=100)
    leaves = st.one_of(
        small.map(Num),
        st.integers(0, n_params - 1).map(Var),
        st.just(Num(0x7FFF)).map(lambda n: n),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from("+-*&|^"), children, children)
            .map(lambda t: Bin(*t)),
            st.tuples(st.sampled_from(["<", ">", "=="]), children,
                      children).map(lambda t: Bin(*t)),
            st.tuples(st.sampled_from(["<<", ">>"]), children,
                      st.integers(0, 7)).map(lambda t: Shift(*t)),
            st.tuples(st.sampled_from(["/", "%"]), children, children)
            .map(lambda t: SafeDiv(*t)),
            children.map(Neg),
            st.tuples(children, children, children)
            .map(lambda t: Ternary(*t)),
        )

    return st.recursive(leaves, extend, max_leaves=depth * 6)


@st.composite
def programs(draw):
    n_params = draw(st.integers(min_value=1, max_value=3))
    n_funcs = draw(st.integers(min_value=1, max_value=3))
    funcs = [draw(expressions(n_params)) for _ in range(n_funcs)]
    n_calls = draw(st.integers(min_value=1, max_value=4))
    calls: List[Tuple[int, Tuple[int, ...]]] = []
    for _ in range(n_calls):
        target = draw(st.integers(0, n_funcs - 1))
        args = tuple(draw(st.integers(-1000, 1000))
                     for _ in range(n_params))
        calls.append((target, args))
    return n_params, funcs, calls


def render_program(n_params, funcs, calls) -> Tuple[str, List[int]]:
    params = ", ".join(f"long p{i}" for i in range(n_params))
    lines = []
    for index, expr in enumerate(funcs):
        lines.append(f"long f{index}({params}) {{ "
                     f"return {expr.render()}; }}")
    body = []
    expected = []
    for target, args in calls:
        arglist = ", ".join(str(a) for a in args)
        body.append(f"    print_int(f{target}({arglist})); "
                    f"print_char(' ');")
        expected.append(funcs[target].evaluate(list(args)))
    lines.append("int main(void) {\n" + "\n".join(body) +
                 "\n    return 0;\n}")
    return "\n".join(lines), expected


@settings(max_examples=40, deadline=None)
@given(programs())
def test_native_mcfi_and_oracle_agree(program):
    n_params, funcs, calls = program
    source, expected = render_program(n_params, funcs, calls)
    oracle = ("".join(f"{value} " for value in expected)).encode()

    native = run_source(source, mcfi=False)
    assert native.ok, f"native failed on:\n{source}\n{native.fault}"
    assert native.output == oracle, (
        f"compiler bug:\n{source}\nexpected {oracle!r} "
        f"got {native.output!r}")

    hardened = run_source(source, mcfi=True)
    assert hardened.ok, (f"MCFI failed on:\n{source}\n"
                         f"{hardened.violation or hardened.fault}")
    assert hardened.output == native.output


@settings(max_examples=15, deadline=None)
@given(programs(), st.integers(0, 2))
def test_dispatch_through_table_agrees(program, which):
    """The same programs dispatched through a function-pointer table:
    the indirect-call path must be as transparent as the direct one."""
    n_params, funcs, calls = program
    params = ", ".join(f"long p{i}" for i in range(n_params))
    lines = []
    for index, expr in enumerate(funcs):
        lines.append(f"long f{index}({params}) {{ "
                     f"return {expr.render()}; }}")
    names = ", ".join(f"f{i}" for i in range(len(funcs)))
    lines.append(f"long (*table[{len(funcs)}])({params}) = {{{names}}};")
    body = []
    expected = []
    for target, args in calls:
        arglist = ", ".join(str(a) for a in args)
        body.append(f"    print_int(table[{target}]({arglist}));"
                    f" print_char(' ');")
        expected.append(funcs[target].evaluate(list(args)))
    lines.append("int main(void) {\n" + "\n".join(body) +
                 "\n    return 0;\n}")
    source = "\n".join(lines)
    oracle = ("".join(f"{value} " for value in expected)).encode()
    hardened = run_source(source, mcfi=True)
    assert hardened.ok, (f"MCFI failed on:\n{source}\n"
                         f"{hardened.violation or hardened.fault}")
    assert hardened.output == oracle, source
