"""Tests for the two-pass symbolic assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import (
    Align,
    AlignEnd,
    AsmInstr,
    BarySlot,
    Data,
    DataWord,
    Label,
    LabelRef,
    Mark,
    assemble,
)
from repro.isa.encoding import decode
from repro.isa.instructions import Op
from repro.isa.registers import Reg


class TestLabels:
    def test_forward_and_backward_references(self):
        items = [
            Label("start"),
            AsmInstr(Op.JMP, (LabelRef("end"),)),
            Label("mid"),
            AsmInstr(Op.NOP, ()),
            AsmInstr(Op.JMP, (LabelRef("start"),)),
            Label("end"),
            AsmInstr(Op.HLT, ()),
        ]
        out = assemble(items, base=0x1000)
        assert out.labels["start"] == 0x1000
        jmp, length = decode(out.code, 0)
        assert 0x1000 + length + jmp.operands[0] == out.labels["end"]

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble([Label("a"), Label("a")])

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble([AsmInstr(Op.JMP, (LabelRef("nowhere"),))])

    def test_extern_labels_resolve(self):
        items = [AsmInstr(Op.MOV_RI, (Reg.RAX, LabelRef("g")))]
        out = assemble(items, base=0, extern={"g": 0x123456})
        instr, _ = decode(out.code, 0)
        assert instr.operands[1] == 0x123456
        assert out.abs_relocs == [2]  # imm64 field offset

    def test_local_shadows_extern(self):
        items = [Label("f"), AsmInstr(Op.MOV_RI, (Reg.RAX, LabelRef("f")))]
        out = assemble(items, base=0x2000, extern={"f": 0x9999})
        instr, _ = decode(out.code, 0)
        assert instr.operands[1] == 0x2000


class TestAlignment:
    def test_align_pads_with_nops(self):
        items = [AsmInstr(Op.HLT, ()), Align(4), Label("target"),
                 AsmInstr(Op.NOP, ())]
        out = assemble(items, base=0)
        assert out.labels["target"] % 4 == 0
        assert out.labels["target"] == 4  # HLT is 1 byte + 3 NOPs
        assert out.code[1:4] == bytes([int(Op.NOP)] * 3)

    def test_align_end_aligns_instruction_end(self):
        # The call's END (= the return site) must be 4-byte aligned.
        items = [AsmInstr(Op.HLT, ()), AlignEnd(4),
                 AsmInstr(Op.CALL, (LabelRef("f"),)),
                 Mark("retsite", None),
                 Label("f"), AsmInstr(Op.HLT, ())]
        out = assemble(items, base=0)
        retsite = out.marks_of("retsite")[0][1]
        assert retsite % 4 == 0

    def test_align_end_without_instruction_rejected(self):
        with pytest.raises(AssemblerError):
            assemble([AlignEnd(4)])

    def test_already_aligned_needs_no_padding(self):
        items = [Align(4), Label("t"), AsmInstr(Op.NOP, ())]
        out = assemble(items, base=0x1000)
        assert out.labels["t"] == 0x1000
        assert len(out.code) == 1


class TestBarySlots:
    def test_slot_offsets_recorded(self):
        items = [AsmInstr(Op.NOP, ()),
                 AsmInstr(Op.TLOAD_RI, (Reg.RDI, BarySlot(7)))]
        out = assemble(items, base=0x1000)
        # NOP(1) + opcode(1) + reg(1) -> immediate at offset 3
        assert out.bary_slots == {7: 3}
        # placeholder encodes as zero
        assert out.code[3:7] == b"\x00\x00\x00\x00"

    def test_slot_in_wrong_operand_rejected(self):
        with pytest.raises(AssemblerError):
            assemble([AsmInstr(Op.MOV_RI, (Reg.RAX, BarySlot(0)))])


class TestDataAndMarks:
    def test_data_words_with_label_relocs(self):
        items = [Label("table"), DataWord(LabelRef("case0")),
                 DataWord(0xdeadbeef), Label("case0"),
                 AsmInstr(Op.HLT, ())]
        out = assemble(items, base=0x4000)
        word0 = int.from_bytes(out.code[0:8], "little")
        word1 = int.from_bytes(out.code[8:16], "little")
        assert word0 == out.labels["case0"]
        assert word1 == 0xdeadbeef
        assert 0 in out.abs_relocs

    def test_marks_bind_to_next_item_address(self):
        items = [AsmInstr(Op.NOP, ()), Mark("here", "x"),
                 AsmInstr(Op.HLT, ())]
        out = assemble(items, base=0x100)
        assert out.marks_of("here") == [("x", 0x101)]

    def test_mark_after_align_sees_padded_address(self):
        items = [AsmInstr(Op.HLT, ()), Align(8), Mark("entry", None),
                 Label("f"), AsmInstr(Op.NOP, ())]
        out = assemble(items, base=0)
        assert out.marks_of("entry")[0][1] == 8
        assert out.labels["f"] == 8

    def test_raw_data_payload(self):
        items = [Data(b"hello\x00"), Label("after"), AsmInstr(Op.NOP, ())]
        out = assemble(items, base=0)
        assert out.code[:6] == b"hello\x00"
        assert out.labels["after"] == 6

    def test_instruction_addresses_recorded(self):
        items = [AsmInstr(Op.NOP, ()), AsmInstr(Op.MOV_RR, (0, 1)),
                 AsmInstr(Op.HLT, ())]
        out = assemble(items, base=0x10)
        assert out.instr_addresses == [0x10, 0x11, 0x14]
