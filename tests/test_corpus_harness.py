"""Differential harness: matrix coverage, findings, determinism.

Tier-1 keeps these cheap: quick generator configs, one or two members,
and the full-matrix case exercised once.  The 500-seed campaign runs
out of band (``python -m repro corpus run gen-deep``).
"""

import dataclasses

import pytest

from repro.workloads.corpus import CorpusConfig, DifferentialHarness, \
    Finding, ProgramReport, SetReport, load_set_report, render_report, \
    run_set, write_set_report
from repro.workloads.generate import GenConfig, generate
from repro.workloads.spec import BenchmarkSet, register_set
from repro.workloads.spec import _SETS


QUICK_CFG = CorpusConfig()


@pytest.fixture(scope="module")
def smoke_report():
    """One full-matrix member, shared by the assertions below."""
    return DifferentialHarness(QUICK_CFG).run_member("gen1000",
                                                     quick=True)


class TestRunMember:
    def test_clean_member_passes(self, smoke_report):
        assert smoke_report.status == "pass"
        assert smoke_report.findings == []

    def test_full_matrix_covers_all_cells(self, smoke_report):
        # 2 arch x 2 devirt build cells, + incremental and lint axes
        assert smoke_report.cells == 6
        assert set(smoke_report.cycles) == {
            "x64/base", "x64/devirt", "x32/base", "x32/devirt"}
        assert set(smoke_report.tx_checks) == set(smoke_report.cycles)

    def test_indirect_heavy_member_pays_tx_checks(self, smoke_report):
        assert all(v > 0 for v in smoke_report.tx_checks.values())

    def test_fixed_workload_member_resolves(self):
        cfg = dataclasses.replace(
            QUICK_CFG, archs=("x64",), incremental=False,
            reference=False, lint=False)
        report = DifferentialHarness(cfg).run_member("mcf")
        assert report.status == "pass"
        assert report.seed is None

    def test_unknown_member_is_harness_error_not_crash(self):
        report = DifferentialHarness(QUICK_CFG).run_member(
            "no-such-workload")
        assert report.status == "error"
        assert report.findings[0].category == "harness_error"


class TestInjectedDivergence:
    """Tampered expectations must surface as structured findings."""

    def _tampered(self, attr, mutate):
        program = generate(1001, GenConfig.quick())
        expected = program.evaluate()
        tampered = dataclasses.replace(expected,
                                       **{attr: mutate(expected)})
        program.evaluate = lambda: tampered  # type: ignore[assignment]
        return DifferentialHarness(QUICK_CFG).run_program(program)

    def test_wrong_oracle_output_reported(self):
        report = self._tampered(
            "output", lambda e: e.output + b"oops\n")
        assert report.status == "diverged"
        assert any(f.category == "oracle_output"
                   for f in report.findings)

    def test_wrong_oracle_exit_reported(self):
        report = self._tampered(
            "exit_code", lambda e: (e.exit_code + 1) & 0xFF)
        assert report.status == "diverged"
        assert any(f.category == "oracle_exit"
                   for f in report.findings)

    def test_finding_carries_cell_and_detail(self):
        report = self._tampered(
            "output", lambda e: e.output + b"oops\n")
        finding = next(f for f in report.findings
                       if f.category == "oracle_output")
        assert finding.member == "gen1001"
        assert finding.seed == 1001
        assert "/" in finding.cell  # e.g. x64/base/dispatch
        assert finding.expected and finding.actual


class TestSetRuns:
    @pytest.fixture()
    def tiny_set(self):
        name = "test-tiny-set"
        register_set(BenchmarkSet(
            name=name, description="2 quick members", kind="generated",
            members=("gen1000", "gen1001"), seeds=(1000, 1001),
            quick=True))
        yield name
        _SETS.pop(name, None)

    @pytest.fixture()
    def broken_set(self):
        name = "test-broken-set"
        register_set(BenchmarkSet(
            name=name, description="one member cannot resolve",
            kind="fixed", members=("mcf", "no-such-workload")))
        yield name
        _SETS.pop(name, None)

    def test_every_member_reported_in_order(self, tiny_set):
        report = run_set(tiny_set)
        assert [r.member for r in report.reports] == \
            ["gen1000", "gen1001"]
        assert report.ok

    def test_failed_member_keeps_set_complete(self, broken_set):
        cfg = dataclasses.replace(
            QUICK_CFG, archs=("x64",), incremental=False,
            reference=False, lint=False)
        report = run_set(broken_set, config=cfg)
        assert [r.member for r in report.reports] == \
            ["mcf", "no-such-workload"]
        assert not report.ok
        assert report.reports[1].status == "error"
        assert report.by_category() == {"harness_error": 1}

    def test_findings_jsonl_roundtrip_and_determinism(
            self, tiny_set, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        run_set(tiny_set, out_path=str(path_a))
        run_set(tiny_set, jobs=2, out_path=str(path_b))
        assert path_a.read_bytes() == path_b.read_bytes()
        loaded = load_set_report(str(path_a))
        assert loaded.set_name == tiny_set
        assert [r.member for r in loaded.reports] == \
            ["gen1000", "gen1001"]
        assert loaded.ok

    def test_limit_recorded_as_truncated(self, tiny_set, tmp_path):
        path = tmp_path / "t.jsonl"
        run_set(tiny_set, out_path=str(path), limit=1)
        from repro.infra.results import load_records
        summary = [r for r in load_records(path)
                   if r["kind"] == "set_summary"][0]
        assert summary["truncated"] is True
        assert summary["members"] == 1

    def test_render_report_lists_every_member(self, tiny_set):
        report = run_set(tiny_set)
        text = render_report(report)
        assert "gen1000" in text and "gen1001" in text
        assert "passed: 2" in text


class TestStepBudget:
    def test_budget_dominates_oracle_fuel(self):
        """The VM step budget must admit every program the oracle's
        fuel budget admits (~10 steps/fuel unit, 5x slack) — campaign
        seed 427 needed 3.98M steps and is a legitimate program."""
        assert CorpusConfig().max_steps >= 10 * GenConfig().fuel * 5


class TestGoldenPin:
    def test_golden_prefix_matches_live_run(self, tmp_path):
        """First two gen-smoke members reproduce the pinned golden
        byte-for-byte (the full-set ``cmp`` gate runs in CI)."""
        from pathlib import Path
        golden = Path(__file__).parent / "golden" / \
            "corpus_smoke_findings.jsonl"
        path = tmp_path / "prefix.jsonl"
        run_set("gen-smoke", out_path=str(path), limit=2)
        live = path.read_text().splitlines()
        pinned = golden.read_text().splitlines()
        assert live[0] == pinned[0]
        assert live[1] == pinned[1]


class TestReportShapes:
    def test_program_report_roundtrip(self):
        report = ProgramReport(
            member="gen5", seed=5, status="diverged",
            findings=[Finding("gen5", "arch", "x64-vs-x32", "boom",
                              seed=5, expected="a", actual="b")],
            cells=4, cycles={"x64/base": 10},
            tx_checks={"x64/base": 2}, source_lines=100)
        clone = ProgramReport.from_dict(report.to_dict())
        assert clone == report

    def test_set_report_category_totals(self):
        reports = [
            ProgramReport(member="a", seed=None, status="pass"),
            ProgramReport(
                member="b", seed=None, status="diverged",
                findings=[Finding("b", "dispatch", "c", "d"),
                          Finding("b", "dispatch", "c2", "d2"),
                          Finding("b", "lint", "c3", "d3")]),
        ]
        set_report = SetReport(set_name="s", reports=reports)
        assert not set_report.ok
        assert set_report.by_category() == {"dispatch": 2, "lint": 1}

    def test_write_report_replaces_stale_file(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text("stale\n")
        write_set_report(
            SetReport(set_name="s", reports=[
                ProgramReport(member="a", seed=None, status="pass")]),
            str(path))
        assert "stale" not in path.read_text()
