"""Tests for the unified to_dict()/from_dict() result protocol (PR 3).

Every result type in the repo serializes through the same pair of
methods, lands in the JSONL store via ``ResultStore.append_record``,
and keeps its old accessor one release longer as a DeprecationWarning
shim.
"""

from __future__ import annotations

import pytest

from repro.errors import CfiViolation, MemoryFault
from repro.faults.harness import SurvivalRecord
from repro.faults.plane import FaultEvent
from repro.infra.pool import JobResult
from repro.infra.results import ResultStore, load_records
from repro.runtime.runtime import RunResult, ViolationRecord
from repro.vm.attacker import AttackReport


class TestRunResult:
    def test_ok_round_trip(self):
        result = RunResult(exit_code=0, output=b"checksum 42",
                           cycles=100, instructions=80, updates=2)
        data = result.to_dict()
        assert data["kind"] == "run"
        assert data["status"] == "ok"
        assert data["output"] == "checksum 42"
        clone = RunResult.from_dict(data)
        assert clone.ok
        assert clone.output == b"checksum 42"
        assert clone.cycles == 100 and clone.updates == 2

    def test_violation_round_trip(self):
        violation = CfiViolation(0x1000, 0x2000, "version-mismatch")
        result = RunResult(violation=violation)
        data = result.to_dict()
        assert data["status"] == "violation"
        clone = RunResult.from_dict(data)
        assert isinstance(clone.violation, CfiViolation)
        assert clone.violation.branch_address == 0x1000
        assert clone.status == "violation"

    def test_fault_round_trip(self):
        result = RunResult(fault=MemoryFault(0x30, "write",
                                             "not writable"))
        data = result.to_dict()
        assert data["status"] == "fault"
        clone = RunResult.from_dict(data)
        assert clone.fault is not None
        assert clone.status == "fault"

    def test_obs_delta_survives_round_trip(self):
        result = RunResult(exit_code=0,
                           obs={"counters": {"vm.runs": 1}})
        clone = RunResult.from_dict(result.to_dict())
        assert clone.obs == {"counters": {"vm.runs": 1}}

    def test_tx_checks_round_trip(self):
        result = RunResult(exit_code=0, tx_checks=17)
        data = result.to_dict()
        assert data["tx_checks"] == 17
        assert RunResult.from_dict(data).tx_checks == 17
        # zero is elided from the dict (schema 3) but restores as 0
        bare = RunResult(exit_code=0).to_dict()
        assert "tx_checks" not in bare
        assert RunResult.from_dict(bare).tx_checks == 0


class TestViolationRecord:
    def test_round_trip(self):
        record = ViolationRecord(thread=1, branch_address=0x10,
                                 target_address=0x20, reason="stale",
                                 action="kill-thread", module="plugin")
        clone = ViolationRecord.from_dict(record.to_dict())
        assert clone == record

    def test_as_dict_deprecated(self):
        record = ViolationRecord(thread=0, branch_address=0,
                                 target_address=0, reason="r",
                                 action="halt")
        with pytest.deprecated_call():
            assert record.as_dict() == record.to_dict()


class TestFaultEvent:
    def test_round_trip(self):
        event = FaultEvent(point="dlopen.cfg", sequence=3, detail="d")
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_as_dict_deprecated(self):
        with pytest.deprecated_call():
            FaultEvent(point="p", sequence=0).as_dict()


class TestSurvivalRecord:
    def test_round_trip_drops_none(self):
        record = SurvivalRecord(injector="bitflip-tary",
                                workload="dispatch", policy="halt",
                                seed=1, probes=5, forged=0)
        data = record.to_dict()
        assert "rolled_back" not in data       # None values filtered
        assert "obs" not in data
        clone = SurvivalRecord.from_dict(data)
        assert clone.injector == "bitflip-tary"
        assert clone.probes == 5

    def test_as_dict_deprecated(self):
        record = SurvivalRecord(injector="i", workload="w",
                                policy="halt", seed=0)
        with pytest.deprecated_call():
            assert record.as_dict() == record.to_dict()


class TestJobResult:
    def test_record_deprecated(self):
        result = JobResult(id="j", ok=True, attempts=1)
        with pytest.deprecated_call():
            assert result.record() == result.to_dict()


class TestAttackReport:
    def test_round_trip(self):
        report = AttackReport(name="rop-gadget", hijacked=False,
                              blocked=True, detail="id check")
        clone = AttackReport.from_dict(report.to_dict())
        assert (clone.name, clone.hijacked, clone.blocked,
                clone.detail) == ("rop-gadget", False, True, "id check")


class TestAppendRecord:
    def test_kinds_from_protocol(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.append_record(RunResult(exit_code=0), target="demo")
        store.append_record(JobResult(id="j", ok=True))
        store.append_record(SurvivalRecord(injector="i", workload="w",
                                           policy="halt", seed=0))
        store.append_record(FaultEvent(point="p", sequence=1))
        store.append_record(AttackReport(name="a", hijacked=False,
                                         blocked=True))
        kinds = [r["kind"] for r in load_records(store.path)]
        assert kinds == ["run", "job", "fault", "fault-event", "attack"]

    def test_extra_fields_merge(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.append_record(JobResult(id="j", ok=True), target="bzip2")
        record = load_records(store.path)[0]
        assert record["target"] == "bzip2"
        assert record["status"] == "ok"

    def test_obs_snapshot_lands_as_metrics(self, tmp_path):
        from repro import obs

        with obs.scoped(seed=0) as state:
            state.metrics.counter("c").inc()
            snap = state.metrics.snapshot()
        store = ResultStore(tmp_path / "results.jsonl")
        store.append_record(snap)
        record = load_records(store.path)[0]
        assert record["kind"] == "metrics"
        assert record["counters"] == {"c": 1}
