"""Tests for type-matching CFG generation (paper Sec. 6)."""

import pytest

from repro.cfg.callgraph import build_call_graph
from repro.cfg.eqclass import UnionFind
from repro.cfg.generator import generate_cfg
from repro.toolchain import compile_and_link


def cfg_of(source, arch="x64"):
    program = compile_and_link({"t": source}, arch=arch, mcfi=True)
    return program, generate_cfg(program.module.aux)


def sites_of(program, kind):
    return [s for s in program.module.aux.branch_sites if s.kind == kind]


class TestUnionFind:
    def test_union_and_find(self):
        union = UnionFind()
        union.union_all([1, 2, 3])
        union.union_all([4, 5])
        assert union.find(1) == union.find(3)
        assert union.find(4) != union.find(1)
        assert len(union) == 2

    def test_overlapping_sets_merge(self):
        union = UnionFind()
        union.union_all([1, 2])
        union.union_all([3, 4])
        union.union_all([2, 3])  # bridges the two classes
        assert len(union) == 1

    def test_class_numbers_deterministic(self):
        union = UnionFind()
        union.union_all([30, 10])
        union.union_all([20, 40])
        numbering = union.class_numbers()
        assert numbering[10] == numbering[30]
        assert numbering[10] != numbering[20]
        # class containing the smallest member gets the smallest number
        assert numbering[10] == 0


class TestTypeMatching:
    SOURCE = """
        typedef long (*unary)(long);
        typedef long (*binary)(long, long);
        long inc(long x) { return x + 1; }
        long dec(long x) { return x - 1; }
        long add(long a, long b) { return a + b; }
        long local_only(long x) { return x; }   /* never address-taken */
        unary u = inc;
        binary b = add;
        int main(void) {
            u = dec;
            print_int(u(1) + b(2, 3));
            print_int(local_only(5));
            return 0;
        }
    """

    def test_icall_targets_match_signature(self):
        program, cfg = cfg_of(self.SOURCE)
        aux = program.module.aux
        unary_sites = [s for s in sites_of(program, "icall")
                       if s.sig.render() == "i64(i64)"]
        assert unary_sites
        targets = cfg.branch_targets[unary_sites[0].site]
        entries = {aux.functions[n].entry for n in ("inc", "dec")}
        assert entries <= targets
        assert aux.functions["add"].entry not in targets
        assert aux.functions["local_only"].entry not in targets

    def test_not_address_taken_excluded(self):
        program, cfg = cfg_of(self.SOURCE)
        aux = program.module.aux
        assert not aux.functions["local_only"].address_taken
        all_targets = set()
        for targets in cfg.branch_targets.values():
            all_targets |= targets
        assert aux.functions["local_only"].entry not in all_targets

    def test_variadic_pointer_matches_prefix(self):
        source = """
            typedef int (*vfmt)(int, ...);
            int handler_a(int x) { return x; }
            int handler_b(int x, long y) { return x + (int)y; }
            long handler_c(int x) { return x; }     /* wrong return */
            vfmt f = handler_a;
            int main(void) {
                int keep = handler_b(1, 2) + (int)handler_c(1);
                int (*pb)(int, long) = handler_b;
                long (*pc)(int) = handler_c;
                return f(3) + keep + pb(1, 1) + (int)pc(1);
            }
        """
        program, cfg = cfg_of(source)
        aux = program.module.aux
        vsite = [s for s in sites_of(program, "icall")
                 if s.sig and s.sig.variadic][0]
        targets = cfg.branch_targets[vsite.site]
        assert aux.functions["handler_a"].entry in targets
        assert aux.functions["handler_b"].entry in targets
        assert aux.functions["handler_c"].entry not in targets


class TestReturnEdges:
    def test_returns_target_callers_retsites(self):
        source = """
            long callee(long x) { return x; }
            int main(void) {
                long a = callee(1);
                long b = callee(2);
                print_int(a + b);
                return 0;
            }
        """
        program, cfg = cfg_of(source)
        aux = program.module.aux
        ret_sites = [s for s in sites_of(program, "ret")
                     if s.fn == "callee"]
        assert len(ret_sites) == 1
        targets = cfg.branch_targets[ret_sites[0].site]
        main_retsites = {r.address for r in aux.retsites
                         if r.caller == "main" and r.callee == "callee"}
        assert len(main_retsites) == 2
        assert main_retsites <= targets

    def test_tail_call_chain_edges(self):
        """f calls g; g tail-calls h => h's return targets f's retsite."""
        source = """
            long h(long x) { return x * 2; }
            long g(long x) { return h(x + 1); }   /* tail call on x64 */
            int main(void) {
                print_int(g(5));
                return 0;
            }
        """
        program, cfg = cfg_of(source, arch="x64")
        aux = program.module.aux
        h_ret = [s for s in sites_of(program, "ret") if s.fn == "h"][0]
        main_retsite = [r.address for r in aux.retsites
                        if r.caller == "main" and r.callee == "g"]
        assert main_retsite
        assert set(main_retsite) <= cfg.branch_targets[h_ret.site]
        # and on x64, g has no ret site at all (its return became a jump)
        assert not [s for s in sites_of(program, "ret") if s.fn == "g"]

    def test_x32_has_no_tail_edges(self):
        source = """
            long h(long x) { return x * 2; }
            long g(long x) { return h(x + 1); }
            int main(void) { print_int(g(5)); return 0; }
        """
        program, _ = cfg_of(source, arch="x32")
        assert [s for s in sites_of(program, "ret") if s.fn == "g"]

    def test_uncalled_function_return_has_no_targets(self):
        source = """
            long orphan(long x) { return x; }
            long (*keep)(long) = orphan;
            int main(void) { return 0; }
        """
        program, cfg = cfg_of(source)
        # orphan is only callable indirectly; its return targets are the
        # retsites of matching icall sites -- there are none.
        orphan_ret = [s for s in sites_of(program, "ret")
                      if s.fn == "orphan"][0]
        assert cfg.branch_targets[orphan_ret.site] == set()
        # its branch ECN matches no target ECN
        ecn = cfg.bary_ecns[orphan_ret.site]
        assert ecn not in set(cfg.tary_ecns.values())


class TestSpecialControlFlow:
    def test_switch_targets_exact(self):
        source = """
            int f(int x) {
                switch (x) {
                    case 0: return 1;
                    case 1: return 2;
                    case 2: return 3;
                    case 3: return 4;
                    default: return 0;
                }
            }
            int main(void) { return f(2); }
        """
        program, cfg = cfg_of(source)
        switch_site = sites_of(program, "switch")[0]
        assert cfg.branch_targets[switch_site.site] == \
            set(switch_site.targets)
        assert len(switch_site.targets) == 4

    def test_longjmp_targets_every_setjmp(self):
        source = """
            long e1[4];
            long e2[4];
            int main(void) {
                int a = setjmp(e1);
                int b = setjmp(e2);
                if (a == 0 && b == 0) { longjmp(e1, 1); }
                return a + b;
            }
        """
        program, cfg = cfg_of(source)
        aux = program.module.aux
        assert len(aux.setjmp_resumes) == 2
        lj_site = sites_of(program, "longjmp")[0]
        assert cfg.branch_targets[lj_site.site] == set(aux.setjmp_resumes)


class TestEquivalenceClasses:
    def test_overlap_merges_classes(self):
        """Two pointer types sharing one target merge into one class."""
        source = """
            typedef long (*u1)(long);
            long shared(long x) { return x; }
            long only1(long x) { return x + 1; }
            u1 a = shared;
            u1 b = only1;
            int main(void) { return (int)(a(1) + b(2)); }
        """
        program, cfg = cfg_of(source)
        aux = program.module.aux
        ecn_shared = cfg.tary_ecns[aux.functions["shared"].entry]
        ecn_only1 = cfg.tary_ecns[aux.functions["only1"].entry]
        assert ecn_shared == ecn_only1  # same icall class

    def test_distinct_signatures_distinct_classes(self):
        source = """
            long f1(long x) { return x; }
            long f2(long a, long b) { return a + b; }
            long (*p1)(long) = f1;
            long (*p2)(long, long) = f2;
            int main(void) { return (int)(p1(1) + p2(1, 2)); }
        """
        program, cfg = cfg_of(source)
        aux = program.module.aux
        assert cfg.tary_ecns[aux.functions["f1"].entry] != \
            cfg.tary_ecns[aux.functions["f2"].entry]

    def test_stats_consistent(self, demo_program):
        cfg = generate_cfg(demo_program.module.aux)
        stats = cfg.stats()
        assert stats["IBs"] == len(demo_program.module.aux.branch_sites)
        assert stats["IBTs"] == len(cfg.tary_ecns)
        assert stats["EQCs"] == len(set(cfg.tary_ecns.values()))
        assert 0 < stats["EQCs"] <= stats["IBTs"]

    def test_permits_matches_target_sets(self, demo_program):
        cfg = generate_cfg(demo_program.module.aux)
        for site, targets in cfg.branch_targets.items():
            for target in list(targets)[:5]:
                assert cfg.permits(site, target)


class TestCallGraph:
    def test_edges_include_direct_and_indirect(self, demo_program):
        graph = build_call_graph(demo_program.module.aux)
        assert ("main", "classify") in graph.edges
        # fptr table dispatch: main may call add/sub/mul
        for callee in ("add", "sub", "mul"):
            assert ("main", callee) in graph.edges
