"""Tests for the TinyC parser, especially C declarator syntax."""

import pytest

from repro.errors import ParseError
from repro.tinyc import ast
from repro.tinyc.parser import parse
from repro.tinyc.types import (
    ArrayType,
    FuncType,
    PointerType,
    StructType,
    canonical,
)


def parse_decl(source):
    """Parse one global declaration; return (name, type)."""
    unit = parse(source)
    if unit.globals:
        var = unit.globals[0]
        return var.name, var.ctype
    decl = unit.decls[0]
    return decl.name, decl.ftype


class TestDeclarators:
    def test_simple_pointer(self):
        name, ctype = parse_decl("int *p;")
        assert name == "p"
        assert canonical(ctype) == "ptr(i32)"

    def test_pointer_to_pointer(self):
        _, ctype = parse_decl("char **argv;")
        assert canonical(ctype) == "ptr(ptr(i8))"

    def test_array_of_pointers(self):
        _, ctype = parse_decl("int *a[10];")
        assert isinstance(ctype, ArrayType)
        assert canonical(ctype) == "arr(ptr(i32),10)"

    def test_pointer_to_array(self):
        _, ctype = parse_decl("int (*a)[10];")
        assert isinstance(ctype, PointerType)
        assert canonical(ctype) == "ptr(arr(i32,10))"

    def test_function_pointer(self):
        name, ctype = parse_decl("int (*cmp)(char *, char *);")
        assert name == "cmp"
        assert isinstance(ctype, PointerType)
        assert isinstance(ctype.pointee, FuncType)
        assert canonical(ctype) == "ptr(fn(i32;ptr(i8),ptr(i8)))"

    def test_array_of_function_pointers(self):
        _, ctype = parse_decl("void (*handlers[4])(int);")
        assert canonical(ctype) == "arr(ptr(fn(void;i32)),4)"

    def test_function_returning_pointer(self):
        name, ctype = parse_decl("char *strdup2(char *s);")
        assert isinstance(ctype, FuncType)
        assert canonical(ctype.ret) == "ptr(i8)"

    def test_function_pointer_parameter(self):
        _, ctype = parse_decl(
            "void qsort2(void *b, int (*cmp)(void *, void *));")
        assert canonical(ctype.params[1]) == \
            "ptr(fn(i32;ptr(void),ptr(void)))"

    def test_variadic_prototype(self):
        _, ctype = parse_decl("int printf2(char *fmt, ...);")
        assert ctype.variadic
        assert len(ctype.params) == 1

    def test_void_params(self):
        _, ctype = parse_decl("int f(void);")
        assert ctype.params == ()

    def test_multiple_declarators_one_line(self):
        unit = parse("int a = 1, *b, c[3];")
        assert [g.name for g in unit.globals] == ["a", "b", "c"]
        assert canonical(unit.globals[1].ctype) == "ptr(i32)"


class TestTypedefsAndStructs:
    def test_typedef_resolution(self):
        unit = parse("typedef unsigned long size_t2; size_t2 n;")
        assert canonical(unit.globals[0].ctype) == "u64"

    def test_typedef_of_function_pointer(self):
        unit = parse("typedef int (*op_t)(int, int); op_t f;")
        assert canonical(unit.globals[0].ctype) == "ptr(fn(i32;i32,i32))"

    def test_struct_definition_and_use(self):
        unit = parse("""
            struct point { long x; long y; };
            struct point origin;
        """)
        ctype = unit.globals[0].ctype
        assert isinstance(ctype, StructType)
        assert ctype.field_type("y") is not None

    def test_self_referential_struct(self):
        unit = parse("""
            typedef struct node { int v; struct node *next; } node;
            node head;
        """)
        ctype = unit.globals[0].ctype
        assert ctype.field_type("next").pointee is ctype

    def test_union(self):
        unit = parse("union u { int i; double d; }; union u x;")
        assert unit.globals[0].ctype.is_union

    def test_enum_constants(self):
        unit = parse("""
            enum color { RED, GREEN = 5, BLUE };
            int f(void) { return BLUE; }
        """)
        ret = unit.funcs[0].body.stmts[0]
        assert isinstance(ret, ast.Return)
        assert ret.value.value == 6


class TestStatementsAndExpressions:
    def test_precedence(self):
        unit = parse("int f(void) { return 1 + 2 * 3; }")
        expr = unit.funcs[0].body.stmts[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_ternary_and_assignment(self):
        unit = parse("int f(int x) { int y = x > 0 ? x : -x; return y; }")
        decl = unit.funcs[0].body.stmts[0]
        assert isinstance(decl.init, ast.Cond)

    def test_switch_with_fallthrough_structure(self):
        unit = parse("""
            int f(int x) {
                switch (x) {
                    case 1:
                    case 2: return 9;
                    default: return 0;
                }
            }
        """)
        switch = unit.funcs[0].body.stmts[0]
        assert [c.value for c in switch.cases] == [1, 2, None]
        assert switch.cases[0].stmts == []

    def test_negative_case_values(self):
        unit = parse("int f(int x) { switch (x) { case -3: return 1; "
                     "default: return 0; } }")
        assert unit.funcs[0].body.stmts[0].cases[0].value == -3

    def test_for_loop_with_declaration(self):
        unit = parse("int f(void) { int s = 0; "
                     "for (int i = 0; i < 4; i++) { s += i; } return s; }")
        loop = unit.funcs[0].body.stmts[1]
        assert isinstance(loop, ast.For)

    def test_do_while(self):
        unit = parse("int f(void) { int i = 0; do { i++; } while (i < 3);"
                     " return i; }")
        assert isinstance(unit.funcs[0].body.stmts[1], ast.DoWhile)

    def test_cast_vs_parenthesized_expression(self):
        unit = parse("typedef int myint; "
                     "long f(long x) { return (myint)x + (x); }")
        expr = unit.funcs[0].body.stmts[0].value
        assert isinstance(expr.left, ast.Cast)
        assert isinstance(expr.right, ast.Ident)

    def test_sizeof_forms(self):
        unit = parse("int f(void) { int a; "
                     "return sizeof(long) + sizeof a; }")
        expr = unit.funcs[0].body.stmts[1].value
        assert isinstance(expr.left, ast.SizeofType)
        assert expr.left.query is not None
        assert expr.right.operand is not None

    def test_string_and_char_literals(self):
        unit = parse("char *s = \"hi\"; int c = 'x';")
        assert unit.globals[0].init.value == b"hi"
        assert unit.globals[1].init.value == 120

    def test_brace_initializer(self):
        unit = parse("int a[3] = {1, 2, 3}; ")
        assert [e.value for e in unit.globals[0].init] == [1, 2, 3]


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int a")

    def test_local_brace_initializer_unsupported(self):
        with pytest.raises(ParseError):
            parse("void f(void) { int a[2] = {1, 2}; }")

    def test_statement_before_case(self):
        with pytest.raises(ParseError):
            parse("void f(int x) { switch (x) { x++; case 1: break; } }")

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse("floatish x;")
