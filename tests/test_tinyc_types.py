"""Tests for the TinyC type system and structural equivalence."""

from repro.tinyc.types import (
    CHAR,
    DOUBLE,
    FuncSig,
    FuncType,
    INT,
    LONG,
    PointerType,
    StructType,
    TypeTable,
    UINT,
    ULONG,
    VOID,
    ArrayType,
    canonical,
    contains_function_pointer,
    decay,
    is_function_pointer,
    is_physical_subtype,
    signatures_match,
    structurally_equal,
)


def fn(ret, *params, variadic=False):
    return FuncType(ret=ret, params=tuple(params), variadic=variadic)


class TestCanonicalForms:
    def test_primitives_distinct(self):
        forms = {canonical(t) for t in (VOID, CHAR, INT, UINT, LONG,
                                        ULONG, DOUBLE)}
        assert len(forms) == 7

    def test_signedness_matters(self):
        assert canonical(INT) != canonical(UINT)

    def test_pointers_and_arrays(self):
        assert canonical(PointerType(INT)) == "ptr(i32)"
        assert canonical(ArrayType(INT, 4)) == "arr(i32,4)"

    def test_function_types(self):
        assert canonical(fn(INT, LONG)) == "fn(i32;i64)"
        assert canonical(fn(VOID, variadic=True)) == "fn(void;,...)"

    def test_struct_expansion(self):
        table = TypeTable()
        s = table.struct("point")
        s.define([("x", LONG), ("y", LONG)])
        assert canonical(s) == "struct{i64,i64}"

    def test_same_shape_different_tags_equal(self):
        a = StructType(tag="a")
        a.define([("v", INT)])
        b = StructType(tag="b")
        b.define([("w", INT)])
        assert structurally_equal(a, b)

    def test_recursive_struct_terminates(self):
        node = StructType(tag="node")
        node.define([("value", LONG), ("next", PointerType(node))])
        form = canonical(node)
        assert "mu0" in form
        # Two isomorphic recursive structs canonicalize identically.
        other = StructType(tag="other")
        other.define([("v", LONG), ("n", PointerType(other))])
        assert canonical(other) == form

    def test_mutually_recursive_structs(self):
        a = StructType(tag="a")
        b = StructType(tag="b")
        a.define([("b", PointerType(b))])
        b.define([("a", PointerType(a))])
        assert canonical(a)  # must terminate
        assert canonical(a) != canonical(b) or canonical(a) == canonical(b)

    def test_union_vs_struct_differ(self):
        s = StructType(tag="s")
        s.define([("x", INT)])
        u = StructType(tag="u", is_union=True)
        u.define([("x", INT)])
        assert canonical(s) != canonical(u)

    def test_incomplete_struct_is_opaque(self):
        s = StructType(tag="fwd")
        assert "opaque" in canonical(s)


class TestSignatureMatching:
    def test_exact_match(self):
        sig = FuncSig.of(fn(INT, LONG, PointerType(CHAR)))
        assert signatures_match(sig, sig)

    def test_mismatch(self):
        a = FuncSig.of(fn(INT, LONG))
        b = FuncSig.of(fn(INT, ULONG))
        assert not signatures_match(a, b)
        assert not signatures_match(a, FuncSig.of(fn(LONG, LONG)))

    def test_variadic_pointer_matches_fixed_prefix(self):
        """The paper's rule: 'int (*)(int, ...)' may call any AT
        function with return int whose first parameter is int."""
        pointer = FuncSig.of(fn(INT, INT, variadic=True))
        assert signatures_match(pointer, FuncSig.of(fn(INT, INT)))
        assert signatures_match(pointer, FuncSig.of(fn(INT, INT, LONG)))
        assert not signatures_match(pointer, FuncSig.of(fn(LONG, INT)))
        assert not signatures_match(pointer, FuncSig.of(fn(INT, LONG)))

    def test_non_variadic_pointer_requires_exact(self):
        pointer = FuncSig.of(fn(INT, INT))
        assert not signatures_match(pointer, FuncSig.of(fn(INT, INT, INT)))

    def test_render(self):
        assert FuncSig.of(fn(INT, LONG, variadic=True)).render() == \
            "i32(i64,...)"


class TestPredicates:
    def test_is_function_pointer(self):
        assert is_function_pointer(PointerType(fn(VOID)))
        assert not is_function_pointer(PointerType(INT))
        assert not is_function_pointer(fn(VOID))

    def test_contains_function_pointer_through_struct(self):
        s = StructType(tag="handler")
        s.define([("cb", PointerType(fn(VOID, INT)))])
        assert contains_function_pointer(s)
        assert contains_function_pointer(PointerType(s))
        assert contains_function_pointer(ArrayType(s, 3))

    def test_contains_handles_recursion(self):
        node = StructType(tag="n")
        node.define([("next", PointerType(node)), ("v", INT)])
        assert not contains_function_pointer(node)

    def test_decay(self):
        assert canonical(decay(ArrayType(INT, 3))) == "ptr(i32)"
        assert is_function_pointer(decay(fn(VOID)))
        assert decay(INT) is INT


class TestPhysicalSubtype:
    def _pair(self):
        base = StructType(tag="base")
        base.define([("op", PointerType(fn(VOID))), ("rc", LONG)])
        concrete = StructType(tag="conc")
        concrete.define([("op", PointerType(fn(VOID))), ("rc", LONG),
                         ("extra", LONG)])
        return base, concrete

    def test_prefix_relation(self):
        base, concrete = self._pair()
        assert is_physical_subtype(concrete, base)
        assert not is_physical_subtype(base, concrete)

    def test_field_type_mismatch_breaks_relation(self):
        base, _ = self._pair()
        other = StructType(tag="other")
        other.define([("op", PointerType(fn(VOID, INT))), ("rc", LONG)])
        assert not is_physical_subtype(other, base)

    def test_empty_abstract_not_a_supertype(self):
        base = StructType(tag="empty")
        base.define([])
        _, concrete = self._pair()
        assert not is_physical_subtype(concrete, base)


class TestStructLayout:
    def test_field_offsets_are_8_byte_slots(self):
        s = StructType(tag="s")
        s.define([("a", CHAR), ("b", LONG), ("c", INT)])
        assert s.field_offset("a") == 0
        assert s.field_offset("b") == 8
        assert s.field_offset("c") == 16
        assert s.size == 24

    def test_union_fields_overlap(self):
        u = StructType(tag="u", is_union=True)
        u.define([("a", LONG), ("b", DOUBLE)])
        assert u.field_offset("a") == 0
        assert u.field_offset("b") == 0
        assert u.size == 8

    def test_unknown_field(self):
        s = StructType(tag="s")
        s.define([("a", INT)])
        assert s.field_type("zzz") is None
        assert s.field_offset("zzz") is None

    def test_type_table_reuses_struct_objects(self):
        table = TypeTable()
        assert table.struct("x") is table.struct("x")
        assert table.struct("x") is not table.struct("x", is_union=True)
