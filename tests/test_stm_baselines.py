"""Tests for the four check-transaction algorithm implementations."""

import pytest

from repro.core.stm_baselines import (
    ALGORITHMS,
    McfiChecker,
    MutexChecker,
    RwlChecker,
    TmlChecker,
    make_workload,
)


@pytest.fixture(params=ALGORITHMS, ids=lambda cls: cls.name)
def checker(request):
    bary, tary = make_workload(n_sites=8, n_targets=64, n_classes=4)
    return request.param(8, 64, bary, tary)


class TestCorrectness:
    def test_permitted_pairs_allowed(self, checker):
        # target index t has ECN t % 4; site s has ECN s % 4.
        assert checker.check(1, 5)      # 1 % 4 == 5 % 4
        assert checker.check(0, 60)     # both class 0

    def test_mismatched_pairs_denied(self, checker):
        assert not checker.check(1, 6)
        assert not checker.check(3, 0)

    def test_update_preserves_policy(self, checker):
        for _ in range(3):
            checker.update()
        assert checker.check(2, 6)
        assert not checker.check(2, 7)

    def test_all_pairs_agree_across_algorithms(self):
        bary, tary = make_workload(n_sites=8, n_targets=32, n_classes=4)
        instances = [cls(8, 32, bary, tary) for cls in ALGORITHMS]
        for site in range(8):
            for target in range(32):
                answers = {inst.check(site, target) for inst in instances}
                assert len(answers) == 1, (
                    f"algorithms disagree on ({site}, {target})")


class TestMcfiSpecifics:
    def test_version_embedded_in_ids(self):
        bary, tary = make_workload(4, 16, 2)
        mcfi = McfiChecker(4, 16, bary, tary)
        from repro.core.idencoding import unpack_id
        assert unpack_id(mcfi.tary[0]).version == 0
        mcfi.update()
        assert unpack_id(mcfi.tary[0]).version == 1
        assert unpack_id(mcfi.bary[0]).version == 1

    def test_unassigned_target_invalid(self):
        mcfi = McfiChecker(2, 8, {0: 0, 1: 1}, {0: 0})
        assert not mcfi.check(0, 5)  # entry 5 never assigned: all-zero ID

    def test_retry_loop_resolves_version_skew(self):
        """Simulate a mid-update read: Tary new, Bary still old."""
        mcfi = McfiChecker(2, 8, {0: 0}, {0: 0, 4: 0})
        from repro.core.idencoding import pack_id
        mcfi.tary[0] = pack_id(0, 1)  # updater wrote Tary first

        class FixAfterOneRead(list):
            def __init__(self, backing, fix):
                super().__init__(backing)
                self.reads = 0
                self.fix = fix

            def __getitem__(self, index):
                self.reads += 1
                if self.reads > 1:
                    return self.fix
                return super().__getitem__(index)

        mcfi.bary = FixAfterOneRead(mcfi.bary, pack_id(0, 1))
        assert mcfi.check(0, 0)


class TestTmlSpecifics:
    def test_seq_lock_blocks_during_write(self):
        bary, tary = make_workload(4, 16, 2)
        tml = TmlChecker(4, 16, bary, tary)
        assert tml.seq % 2 == 0
        tml.update()
        assert tml.seq % 2 == 0
        assert tml.seq == 2


class TestLockBased:
    @pytest.mark.parametrize("cls", [RwlChecker, MutexChecker])
    def test_locks_are_released(self, cls):
        bary, tary = make_workload(4, 16, 2)
        instance = cls(4, 16, bary, tary)
        for _ in range(100):
            instance.check(1, 1)
        instance.update()
        assert instance.check(1, 1)  # would deadlock if a lock leaked
