"""Tests for repro.obs: the tracing + metrics plane (PR 3)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import OBS, Snapshot, clock
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Tracer


class TestTracer:
    def test_span_nesting_via_stack(self):
        tracer = Tracer(seed=0)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        by_name = {s["name"]: s for s in tracer.spans}
        assert by_name["inner"]["parent"] == outer.id
        assert "parent" not in by_name["outer"]
        # completion order: inner ends first
        assert [s["name"] for s in tracer.spans] == ["inner", "outer"]

    def test_begin_does_not_push_stack(self):
        tracer = Tracer(seed=0)
        with tracer.span("ambient") as ambient:
            a = tracer.begin("job", attempt=1)
            b = tracer.begin("job", attempt=2)
            with tracer.span("nested"):
                pass
            b.end()
            a.end(status="ok")
        jobs = [s for s in tracer.spans if s["name"] == "job"]
        # both parented under the ambient span, not under each other
        assert all(s["parent"] == ambient.id for s in jobs)
        nested = next(s for s in tracer.spans if s["name"] == "nested")
        assert nested["parent"] == ambient.id
        assert jobs[-1]["attrs"]["status"] == "ok"

    def test_end_is_idempotent(self):
        tracer = Tracer(seed=0)
        span = tracer.begin("once")
        span.end()
        span.end()
        assert len(tracer.spans) == 1

    def test_exception_unwind_pops_stack(self):
        tracer = Tracer(seed=0)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                inner = tracer.span("inner")  # never explicitly ended
                assert inner is not None
                raise RuntimeError("boom")
        assert tracer._stack == []

    def test_logical_clock_is_deterministic(self):
        def trace_once() -> list:
            tracer = Tracer(seed=42)
            with tracer.span("a", key="v"):
                with tracer.span("b"):
                    pass
            return tracer.spans

        assert trace_once() == trace_once()

    def test_export_jsonl_schema(self, tmp_path):
        tracer = Tracer(seed=0)
        with tracer.span("stage"):
            pass
        path = tracer.export_jsonl(tmp_path / "t.jsonl",
                                   metrics={"kind": "metrics"})
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert lines[0]["kind"] == "trace-header"
        assert lines[0]["version"] == obs.SCHEMA_VERSION
        assert lines[0]["spans"] == 1
        assert lines[1]["kind"] == "span"
        assert lines[-1]["kind"] == "metrics"


class TestSeededExportDeterminism:
    def test_traced_workload_bytes_identical(self, tmp_path):
        from repro.toolchain import compile_and_run

        paths = []
        for i in range(2):
            with obs.scoped(seed=123):
                result = compile_and_run(
                    {"t": "int main(void){ return 7; }"}, mcfi=True)
                assert result.exit_code == 7
                paths.append(obs.export_trace(tmp_path / f"t{i}.jsonl"))
        first, second = (open(p, "rb").read() for p in paths)
        assert first == second

    def test_wall_metrics_suppressed_when_seeded(self):
        with obs.scoped(seed=1):
            assert not obs.wall_metrics_enabled()
        with obs.scoped(seed=None):
            assert obs.wall_metrics_enabled()
        assert not obs.wall_metrics_enabled()  # disabled again


class TestNullFastPath:
    def test_disabled_state_is_shared_singletons(self):
        assert not OBS.enabled
        assert OBS.tracer is NULL_TRACER
        assert OBS.metrics is NULL_METRICS

    def test_null_tracer_allocates_nothing(self):
        span = NULL_TRACER.span("anything", key="value")
        assert span is NULL_SPAN
        assert NULL_TRACER.begin("other") is NULL_SPAN
        span.set(more="attrs")
        span.end(status="ok")
        assert NULL_TRACER.spans == []

    def test_null_metrics_share_instruments(self):
        c1 = NULL_METRICS.counter("a")
        c2 = NULL_METRICS.counter("b")
        assert c1 is c2
        c1.inc(5)
        h = NULL_METRICS.histogram("h")
        h.observe(1.0)
        snap = NULL_METRICS.snapshot()
        assert snap.counters == {} and snap.histograms == {}

    def test_instrumented_run_records_nothing_when_disabled(self):
        from repro.toolchain import compile_and_run

        before_spans = len(OBS.tracer.spans)
        result = compile_and_run({"t": "int main(void){ return 3; }"},
                                 mcfi=True)
        assert result.exit_code == 3
        assert result.obs is None
        assert len(OBS.tracer.spans) == before_spans
        assert OBS.metrics.snapshot().counters == {}


class TestMetrics:
    def test_counter_gauge_histogram(self):
        with obs.scoped(seed=0) as state:
            state.metrics.counter("c").inc()
            state.metrics.counter("c").inc(2)
            state.metrics.gauge("g").set(7)
            state.metrics.histogram("h").observe(1.0)
            state.metrics.histogram("h").observe(3.0)
            snap = state.metrics.snapshot()
        assert snap.counters["c"] == 3
        assert snap.gauges["g"] == 7
        assert snap.histograms["h"]["count"] == 2
        assert snap.histograms["h"]["total"] == 4.0

    def test_snapshot_round_trip(self):
        with obs.scoped(seed=0) as state:
            state.metrics.counter("c").inc(4)
            state.metrics.histogram("h").observe(2.5)
            snap = state.metrics.snapshot()
        clone = Snapshot.from_dict(snap.to_dict())
        assert clone.to_dict() == snap.to_dict()

    def test_snapshot_delta(self):
        with obs.scoped(seed=0) as state:
            state.metrics.counter("c").inc(2)
            earlier = state.metrics.snapshot()
            state.metrics.counter("c").inc(3)
            state.metrics.counter("new").inc()
            later = state.metrics.snapshot()
        delta = later.delta(earlier)
        assert delta.counters == {"c": 3, "new": 1}


class TestInstrumentation:
    def test_compile_and_run_spans_cover_layers(self):
        from repro.toolchain import compile_and_run

        with obs.scoped(seed=0) as state:
            result = compile_and_run(
                {"t": "int main(void){ return 0; }"}, mcfi=True)
            assert result.ok
            names = {s["name"] for s in state.tracer.spans}
        assert {"build.session", "build.frontend", "build.units",
                "build.link", "cfg.generate",
                "vm.run", "runtime.run"} <= names

    def test_run_result_carries_metrics_delta(self):
        from repro.toolchain import compile_and_run

        with obs.scoped(seed=0):
            result = compile_and_run(
                {"t": "int main(void){ return 0; }"}, mcfi=True)
        assert result.obs is not None
        assert result.obs["counters"]["vm.runs"] == 1
        assert result.obs["counters"]["vm.instructions"] > 0

    def test_update_transaction_span_and_counters(self):
        from repro.core.tables import IdTables
        from repro.core.transactions import UpdateLock, UpdateTransaction
        from repro.vm.memory import TableMemory

        tables = IdTables(TableMemory())
        tables.install({0x1000: 1}, {0: 1}, version=0)
        with obs.scoped(seed=0) as state:
            tx = UpdateTransaction(tables, UpdateLock(),
                                   new_tary={0x1000: 1, 0x1004: 2},
                                   new_bary={0: 1, 1: 2})
            for _ in tx.run():
                pass
            assert tx.completed
            names = [s["name"] for s in state.tracer.spans]
            snap = state.metrics.snapshot()
        assert "tx.update" in names
        assert snap.counters["tx.updates"] == 1
        assert snap.counters["tables.tary_writes"] >= 1

    def test_scoped_restores_prior_state(self):
        prior = (OBS.enabled, OBS.tracer, OBS.metrics)
        with obs.scoped(seed=0):
            assert OBS.enabled
        assert (OBS.enabled, OBS.tracer, OBS.metrics) == prior


class TestClock:
    def test_stopwatch(self):
        with clock.Stopwatch() as watch:
            pass
        assert watch.seconds >= 0.0

    def test_now_monotonic(self):
        a = clock.now()
        b = clock.now()
        assert b >= a
