"""Transactional dlopen and the violation policies.

The acceptance property: a ``dlopen`` failed *mid-load* — at any phase
of the linker protocol, in inline or scheduled mode — leaves the Tary
and Bary tables **byte-identical** to the pre-load snapshot, returns 0
to the program, and the program keeps running.
"""

import pytest

from repro.errors import InjectedFault, LinkError, RuntimeError_
from repro.faults.harness import (
    LOAD_PHASES,
    run_load_scenario,
    snapshot_tables,
)
from repro.faults.plane import FaultPlane
from repro.linker.dynamic_linker import DynamicLinker
from repro.runtime.runtime import Runtime, VIOLATION_POLICIES
from repro.toolchain import compile_and_link, compile_module

MAIN_SOURCE = {"main": """
    int libfn(int x);
    int main(void) {
        long h = dlopen("plugin");
        if (h == 0) { print_str("LOAD-FAILED"); return 99; }
        print_int(libfn(10));
        return 0;
    }
"""}

LIB_SOURCE = "int libfn(int x) { return x * 3 + 1; }"


@pytest.fixture(scope="module")
def artifacts():
    program = compile_and_link(MAIN_SOURCE, mcfi=True,
                               allow_unresolved=["libfn"])
    library = compile_module(LIB_SOURCE, name="plugin")
    return program, library


def _runtime_with_plugin(artifacts, plane=None, policy="halt"):
    program, library = artifacts
    runtime = Runtime(program, violation_policy=policy)
    linker = DynamicLinker(runtime, **({} if plane is None else
                                       {"fault_plane": plane}))
    linker.register("plugin", library)
    return runtime, linker


class TestRollbackByteIdentical:
    @pytest.mark.parametrize("phase", LOAD_PHASES)
    def test_inline_mid_load_failure_restores_tables(self, artifacts,
                                                     phase):
        plane = FaultPlane(seed=0).arm(f"dlopen.{phase}")
        runtime, _ = _runtime_with_plugin(artifacts, plane)
        before = snapshot_tables(runtime)
        result = runtime.run()
        after = snapshot_tables(runtime)
        assert after == before, f"tables diverged after {phase} fault"
        assert plane.fired(f"dlopen.{phase}") == 1
        assert result.exit_code == 99
        assert b"LOAD-FAILED" in result.output

    @pytest.mark.parametrize("phase", LOAD_PHASES)
    def test_scheduled_mid_load_failure_restores_tables(self, artifacts,
                                                        phase):
        plane = FaultPlane(seed=0).arm(f"dlopen.{phase}")
        runtime, _ = _runtime_with_plugin(artifacts, plane)
        before = snapshot_tables(runtime)
        result = runtime.run_scheduled(seed=3)
        assert snapshot_tables(runtime) == before
        assert result.exit_code == 99
        assert b"LOAD-FAILED" in result.output

    def test_rollback_restores_linker_state_for_retry(self, artifacts):
        """After a rolled-back load the linker is pristine: the same
        library loads cleanly on the next attempt."""
        plane = FaultPlane(seed=0).arm("dlopen.update", count=1)
        runtime, linker = _runtime_with_plugin(artifacts, plane)
        cursors = (linker._code_cursor, linker._data_cursor,
                   linker._next_site, linker._next_handle)
        assert linker.dlopen("plugin") == 0      # injected failure
        assert (linker._code_cursor, linker._data_cursor,
                linker._next_site, linker._next_handle) == cursors
        assert not linker.loaded
        handle = linker.dlopen("plugin")          # plane count exhausted
        assert handle != 0
        assert linker.dlsym(handle, "libfn") != 0

    def test_journal_restores_update_lock(self, artifacts):
        plane = FaultPlane(seed=0).arm("dlopen.update")
        runtime, linker = _runtime_with_plugin(artifacts, plane)
        assert linker.dlopen("plugin") == 0
        assert not runtime.update_lock.held

    def test_journal_phase_log(self, artifacts):
        runtime, linker = _runtime_with_plugin(artifacts)
        assert linker.dlopen("plugin") != 0
        assert linker.last_journal.phases == \
            ["prepare", "cfg", "update", "seal"]
        assert not linker.last_journal.rolled_back


class TestLoadScenarioHarness:
    @pytest.mark.parametrize("phase", LOAD_PHASES)
    def test_every_phase_degrades_cleanly(self, phase):
        record = run_load_scenario(phase, policy="halt", seed=0)
        assert record.outcome == "degraded", record.detail
        assert record.rolled_back is True

    def test_scheduled_variant(self):
        record = run_load_scenario("update", policy="halt", seed=1,
                                   scheduled=True)
        assert record.outcome == "degraded", record.detail
        assert record.rolled_back is True

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            run_load_scenario("warp")


class TestLinkErrorsStillPropagate:
    def test_unresolved_import_rolls_back_then_raises(self, artifacts):
        program, _ = artifacts
        runtime = Runtime(program)
        linker = DynamicLinker(runtime)
        broken = compile_module(
            "int nope(void); int libfn(int x) { return nope(); }",
            name="plugin")
        linker.register("plugin", broken)
        before = snapshot_tables(runtime)
        with pytest.raises(LinkError):
            linker.dlopen("plugin")
        assert snapshot_tables(runtime) == before
        assert not linker.loaded


class TestQuarantineMethod:
    def test_quarantine_zeroes_module_entries(self, artifacts):
        runtime, linker = _runtime_with_plugin(artifacts)
        handle = linker.dlopen("plugin")
        assert handle != 0
        library = linker.loaded[handle]
        module = library.module
        live = [a for a in runtime.id_tables.tary_ecns
                if module.base <= a < module.limit]
        assert live
        assert linker.quarantine(handle) is True
        for address in live:
            assert address not in runtime.id_tables.tary_ecns
            assert runtime.tables.read_tary(address) == 0
        assert library.quarantined
        assert linker.quarantine(handle) is False  # idempotent

    def test_quarantine_unknown_handle(self, artifacts):
        _, linker = _runtime_with_plugin(artifacts)
        assert linker.quarantine(42) is False


class TestViolationPolicies:
    VIOLATING = {"main": """
        void takes_two(long a, long b) { }
        int main(void) {
            void (*f)(long) = (void (*)(long))(void *)takes_two;
            f(1);
            print_str("after");
            return 7;
        }
    """}

    def test_policy_validated(self, artifacts):
        program, _ = artifacts
        with pytest.raises(RuntimeError_):
            Runtime(program, violation_policy="shrug")
        for policy in VIOLATION_POLICIES:
            Runtime(program, violation_policy=policy)

    def test_halt_is_the_default_paper_behaviour(self):
        program = compile_and_link(self.VIOLATING, mcfi=True)
        result = Runtime(program).run()
        assert result.violation is not None
        assert not result.ok
        assert result.violations == []

    def test_report_policy_records_and_continues(self):
        program = compile_and_link(self.VIOLATING, mcfi=True)
        result = Runtime(program, violation_policy="report").run()
        # The violating transfer was denied, the thread retired; the
        # run is not itself a fault and carries a structured record.
        assert result.violation is None and result.fault is None
        assert len(result.violations) == 1
        record = result.violations[0]
        assert record.action == "kill-thread"
        assert record.reason
        assert record.to_dict()["action"] == "kill-thread"

    def test_report_policy_in_scheduled_mode_other_threads_continue(
            self):
        source = {"main": """
            long done;
            void victim(long ignored) {
                void (*f)(long, long) = 0;
                long fp[2];
                fp[0] = (long)victim;
                f = (void (*)(long, long))fp[0];
                f(1, 2);
            }
            void worker(long n) {
                long i;
                for (i = 0; i < 20; i++) { done += 1; }
            }
            int main(void) {
                thread_spawn(victim, 0);
                thread_spawn(worker, 0);
                long spin = 0;
                while (done < 20 && spin < 200000) { spin++; }
                print_int(done);
                return 0;
            }
        """}
        program = compile_and_link(source, mcfi=True)
        result = Runtime(program,
                         violation_policy="report").run_scheduled(seed=2)
        assert result.ok, result.violation or result.fault
        assert result.output == b"20"
        assert len(result.violations) == 1

    def test_quarantine_policy_retires_violating_module(self, artifacts):
        """A loaded library whose code makes a bad transfer is sealed
        and scrubbed; the violation record names it."""
        program = compile_and_link({"main": """
            int libfn(int x);
            int main(void) {
                long h = dlopen("plugin");
                print_int(libfn(3));
                return 0;
            }
        """}, mcfi=True, allow_unresolved=["libfn"])
        bad_lib = compile_module("""
            void helper(long a, long b) { }
            int libfn(int x) {
                void (*f)(long) = (void (*)(long))(void *)helper;
                f(1);
                return x;
            }
        """, name="plugin")
        runtime = Runtime(program, violation_policy="quarantine")
        linker = DynamicLinker(runtime)
        linker.register("plugin", bad_lib)
        result = runtime.run()
        assert result.violation is None
        assert result.quarantined == ["plugin"]
        [record] = result.violations
        assert record.action == "quarantine"
        assert record.module == "plugin"
        # The module's table entries are gone: nothing can re-enter it.
        library = next(iter(linker.loaded.values()))
        assert library.quarantined
        module = library.module
        assert not any(module.base <= a < module.limit
                       for a in runtime.id_tables.tary_ecns)


class TestRebuildTables:
    def test_rebuild_repairs_corruption_and_zeroes_strays(self,
                                                          artifacts):
        """Metadata-driven recovery: after arbitrary table damage,
        ``rebuild_tables`` restores a clean, audit-passing assignment
        and zeroes forged strays in untracked words."""
        from repro.core.tables import tary_index

        runtime, linker = _runtime_with_plugin(artifacts)
        handle = linker.dlopen("plugin")
        assert handle != 0
        tables = runtime.id_tables
        memory = tables.memory
        # Corrupt one tracked word and forge one untracked stray.
        tracked = sorted(tables.tary_ecns)[0]
        memory.write_tary(tary_index(tracked),
                          memory.read_tary(tary_index(tracked)) ^ 1)
        stray = max(tables.tary_ecns) + 64
        assert stray not in tables.tary_ecns
        memory.write_tary(tary_index(stray), 0x00000101)
        findings = tables.audit()
        assert findings["tary"]

        swept = linker.rebuild_tables()
        assert swept["entries"] > 0
        assert swept["strays"] >= 1
        assert tables.audit() == {"tary": [], "bary": []}
        assert memory.read_tary(tary_index(stray)) == 0
        # The linker still serves the loaded module afterwards.
        assert linker.dlsym(handle, "libfn") != 0

    def test_rebuild_is_idempotent_on_clean_tables(self, artifacts):
        runtime, linker = _runtime_with_plugin(artifacts)
        assert linker.dlopen("plugin") != 0
        decoded = dict(runtime.id_tables.tary_ecns)
        swept = linker.rebuild_tables()
        assert swept["repaired"] == 0
        assert swept["strays"] == 0
        assert runtime.id_tables.tary_ecns == decoded
        assert runtime.id_tables.audit() == {"tary": [], "bary": []}
