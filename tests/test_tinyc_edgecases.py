"""Frontend stress and edge cases: parser depth, declarator zoo, large
constructs, diagnostics."""

import pytest

from repro.errors import ParseError, TypeError_
from repro.tinyc.parser import parse
from repro.tinyc.types import canonical
from tests.conftest import run_source


class TestParserStress:
    def test_deeply_nested_parentheses(self):
        depth = 60
        expr = "(" * depth + "1" + ")" * depth
        unit = parse(f"int f(void) {{ return {expr}; }}")
        assert unit.funcs[0].name == "f"

    def test_deeply_nested_blocks(self):
        body = "{" * 40 + "x++;" + "}" * 40
        unit = parse(f"void f(void) {{ int x = 0; {body} }}")
        assert unit.funcs

    def test_long_expression_chain(self):
        expr = " + ".join(str(i) for i in range(200))
        result = run_source(f"int main(void) {{ print_int({expr}); "
                            f"return 0; }}")
        assert result.output == str(sum(range(200))).encode()

    def test_big_dense_switch(self):
        cases = "\n".join(f"case {i}: return {i * 3};"
                          for i in range(64))
        result = run_source(f"""
            int f(int x) {{ switch (x) {{ {cases} default: return -1; }} }}
            int main(void) {{
                print_int(f(10) + f(63) + f(64));
                return 0;
            }}
        """)
        assert result.output == str(30 + 189 - 1).encode()

    def test_many_functions(self):
        funcs = "\n".join(f"long f{i}(void) {{ return {i}; }}"
                          for i in range(80))
        calls = " + ".join(f"f{i}()" for i in range(80))
        result = run_source(f"{funcs}\nint main(void) "
                            f"{{ print_int({calls}); return 0; }}")
        assert result.output == str(sum(range(80))).encode()


class TestDeclaratorZoo:
    @pytest.mark.parametrize("decl,canon", [
        ("int f(int (*g)(void));",
         "fn(i32;ptr(fn(i32;)))"),
        ("long (*h(void))(int);",          # fn returning fn-pointer
         "fn(ptr(fn(i64;i32));)"),
        ("char *(*table[3])(char *);",
         "arr(ptr(fn(ptr(i8);ptr(i8))),3)"),
        ("unsigned long (**pp)(void);",
         "ptr(ptr(fn(u64;)))"),
    ])
    def test_declarator_types(self, decl, canon):
        unit = parse(decl)
        if unit.globals:
            ctype = unit.globals[0].ctype
        else:
            ctype = unit.decls[0].ftype
        assert canonical(ctype) == canon

    def test_function_returning_function_pointer_runs(self):
        result = run_source("""
            long inc(long x) { return x + 1; }
            long dec(long x) { return x - 1; }
            long (*pick(int up))(long) {
                if (up) { return inc; }
                return dec;
            }
            int main(void) {
                print_int(pick(1)(10) + pick(0)(10));
                return 0;
            }
        """)
        assert result.output == b"20"

    def test_pointer_to_array_arithmetic(self):
        result = run_source("""
            int grid[3][4];
            int main(void) {
                int i;
                for (i = 0; i < 12; i++) { grid[i / 4][i % 4] = i; }
                print_int(grid[2][3] + grid[0][1]);
                return 0;
            }
        """)
        assert result.output == b"12"


class TestLiterals:
    def test_hex_with_suffixes(self):
        result = run_source("""
            int main(void) {
                print_int((long)0xFFu + (long)0x10L);
                return 0;
            }
        """)
        assert result.output == b"271"

    def test_char_escapes_roundtrip(self):
        result = run_source(r"""
            int main(void) {
                print_int('\n'); print_char(' ');
                print_int('\t'); print_char(' ');
                print_int('\\'); print_char(' ');
                print_int('\'');
                return 0;
            }
        """)
        assert result.output == b"10 9 92 39"

    def test_max_like_literals(self):
        result = run_source("""
            int main(void) {
                long big = 9223372036854775807;
                print_int(big); print_char(' ');
                print_int(big + 1 < 0 ? 1 : 0);   /* wraps */
                return 0;
            }
        """)
        assert result.output == b"9223372036854775807 1"


class TestDiagnostics:
    def test_parse_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse("int a;\nint b;\nint 5;")
        assert info.value.line == 3

    def test_lex_error_carries_line(self):
        from repro.errors import LexError
        with pytest.raises(LexError) as info:
            parse("int a;\nint b;\nint @;")
        assert info.value.line == 3

    def test_type_error_carries_line(self):
        from repro.tinyc.typecheck import check
        with pytest.raises(TypeError_) as info:
            check(parse("int f(void) {\n  return zzz;\n}"))
        assert info.value.line == 2

    def test_useful_message_for_unknown_member(self):
        from repro.tinyc.typecheck import check
        with pytest.raises(TypeError_, match="no field 'q'"):
            check(parse("struct s { int a; };"
                        "int f(struct s *p) { return p->q; }"))


class TestStaticFunctions:
    def test_static_functions_not_exported(self):
        from repro.toolchain import compile_module
        raw = compile_module(
            "static long helper(void) { return 1; } "
            "int main(void) { return (int)helper(); }", name="m")
        assert not raw.functions["helper"].exported
        assert raw.functions["main"].exported

    def test_static_functions_have_internal_linkage(self):
        """Two modules may each define a static function of the same
        name; each module's calls resolve to its own copy."""
        from repro.toolchain import compile_and_run
        sources = {
            "a": """
                int b_value(void);
                static int util(void) { return 1; }
                int main(void) {
                    print_int(util() * 10 + b_value());
                    return 0;
                }
            """,
            "b": """
                static int util(void) { return 2; }
                int b_value(void) { return util(); }
            """,
        }
        for mcfi in (False, True):
            result = compile_and_run(sources, mcfi=mcfi)
            assert result.ok, result.violation or result.fault
            assert result.output == b"12"

    def test_exported_collision_still_rejected(self):
        from repro.errors import LinkError
        from repro.linker.static_linker import link
        from repro.toolchain import compile_module
        a = compile_module("int util(void) { return 1; } "
                           "void _start(void) { util(); }", name="a")
        b = compile_module("int util(void) { return 2; }", name="b")
        with pytest.raises(LinkError, match="util"):
            link([a, b])
