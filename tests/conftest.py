"""Shared fixtures: compiled programs are expensive, so cache per session."""

from __future__ import annotations

import pytest

from repro.experiments import compiled
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_and_link, compile_module

#: A small but feature-complete program used across runtime/verifier
#: tests: function pointers, a dense switch, setjmp/longjmp, strings.
DEMO_SOURCE = r"""
typedef int (*binop)(int, int);

int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }

binop ops[3] = {add, sub, mul};

int classify(int x) {
    switch (x) {
        case 0: return 10;
        case 1: return 11;
        case 2: return 12;
        case 3: return 13;
        default: return -1;
    }
}

long jbuf[4];

int main(void) {
    int i;
    int total = 0;
    for (i = 0; i < 3; i++) {
        total += ops[i](10, 3);
    }
    for (i = 0; i < 5; i++) {
        total += classify(i);
    }
    i = setjmp(jbuf);
    total += i;
    if (i < 2) { longjmp(jbuf, i + 1); }
    print_str("demo ");
    print_int(total);
    return total & 63;
}
"""


@pytest.fixture(scope="session")
def demo_program():
    """The demo program, MCFI-instrumented and statically linked."""
    return compile_and_link({"demo": DEMO_SOURCE}, mcfi=True)


@pytest.fixture(scope="session")
def demo_program_native():
    return compile_and_link({"demo": DEMO_SOURCE}, mcfi=False)


@pytest.fixture(scope="session")
def demo_raw():
    """The demo module before instrumentation (symbolic assembly)."""
    return compile_module(DEMO_SOURCE, name="demo")


@pytest.fixture()
def demo_runtime(demo_program):
    return Runtime(demo_program)


def run_source(source: str, mcfi: bool = True, arch: str = "x64",
               max_steps: int = 50_000_000):
    """Compile and run a snippet; helper used throughout the tests."""
    from repro.toolchain import compile_and_run
    return compile_and_run({"t": source}, arch=arch, mcfi=mcfi,
                           max_steps=max_steps)


@pytest.fixture(scope="session")
def bench_program():
    """One real benchmark (libquantum: small) compiled both ways."""
    return {
        "mcfi": compiled("libquantum", "x64", True),
        "native": compiled("libquantum", "x64", False),
    }
