"""Tests for the self-healing service plane (PR 7).

Covers the shard health state machine, quarantine + journal-driven
recovery (byte-identical bands), request parking and deadline budgets,
negative-check load (the zero-forged-edges gate), the service-aware
chaos injectors, and campaign determinism.
"""

import pytest

from repro.core.idencoding import pack_id, parity_ecn, parity_ecn_ok
from repro.core.tables import tary_index
from repro.core.transactions import UpdateTransaction
from repro.faults.plane import FaultPlane
from repro.faults.service_injectors import (
    shard_bit_flip_storm,
    version_gap_storm,
)
from repro.service import (
    HealthPolicy,
    ParityWritesetTemplate,
    ResilientServiceLoop,
    ShardedIdTables,
    ShardHealthMonitor,
    UpdateCoalescer,
    UpdateRequest,
)
from repro.service.coalescer import COMMITTED, DEADLINE, FAILED
from repro.service.health import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    RECOVERING,
)
from repro.service.loop import WritesetTemplate

#: Small-but-complete outage config: one torn-round burst trips one
#: shard, which recovers mid-run (verified across seeds 0..2).
OUTAGE_POLICY = HealthPolicy(rollback_threshold=2, cooldown_ticks=80,
                             cooldown_factor=2.0,
                             max_cooldown_ticks=640, scrub_interval=16)


def _outage_loop(seed=0, **kwargs):
    plane = FaultPlane(seed=seed).arm("service.commit", skip=0, count=3)
    defaults = dict(tenants=6, shards=2, seed=seed, churn=2,
                    policy=OUTAGE_POLICY, fault_plane=plane)
    defaults.update(kwargs)
    return ResilientServiceLoop(**defaults)


def _install(sharded, shard, entries=3):
    """Install a few parity-encoded classes on one shard's band."""
    tary = {shard.tary_lo + 4 * i: parity_ecn(1 + i)
            for i in range(entries)}
    bary = {shard.site_lo + i: parity_ecn(1 + i)
            for i in range(entries)}
    transaction = UpdateTransaction(shard.tables, shard.lock,
                                    new_tary=tary, new_bary=bary,
                                    owner="test")
    for _ in transaction.run():
        pass
    return tary, bary


# ---------------------------------------------------------------------------
# Health state machine
# ---------------------------------------------------------------------------

class TestShardHealthMonitor:
    def _monitor(self, **policy_kwargs):
        ticks = [0]
        policy = HealthPolicy(rollback_threshold=2, cooldown_ticks=50,
                              cooldown_factor=2.0,
                              max_cooldown_ticks=400,
                              **policy_kwargs)
        sharded = ShardedIdTables(shards=2)
        fenced = []
        monitor = ShardHealthMonitor(sharded,
                                     clock=lambda: ticks[0],
                                     policy=policy,
                                     fence=fenced.append)
        return monitor, ticks, fenced

    def test_rollbacks_degrade_then_quarantine(self):
        monitor, _, fenced = self._monitor()
        assert monitor.health(0) == HEALTHY
        monitor.note_rollback(0)
        assert monitor.health(0) == DEGRADED
        assert monitor.serving_updates(0)      # degraded still serves
        monitor.note_rollback(0)               # threshold reached
        assert monitor.health(0) == QUARANTINED
        assert not monitor.serving_updates(0)
        assert monitor.quarantines == 1
        assert fenced == [0]                   # fenced exactly once
        assert monitor.health(1) == HEALTHY    # sibling untouched

    def test_commit_clears_degraded(self):
        monitor, _, _ = self._monitor()
        monitor.note_rollback(0)
        monitor.note_commit(0)
        assert monitor.health(0) == HEALTHY
        monitor.note_rollback(0)
        monitor.note_rollback(0)               # consecutive again
        assert monitor.health(0) == QUARANTINED

    def test_escalation_and_corruption_trip_immediately(self):
        monitor, _, _ = self._monitor()
        monitor.note_escalation(0)
        assert monitor.health(0) == QUARANTINED
        monitor2, _, _ = self._monitor()
        monitor2.note_corruption(1, entries=3)
        assert monitor2.health(1) == QUARANTINED
        assert monitor2.detected_corruptions == 3

    def test_recovery_protocol_and_mttr(self):
        monitor, ticks, _ = self._monitor()
        ticks[0] = 10
        monitor.note_rollback(0)
        monitor.note_rollback(0)               # down at tick 10
        assert not monitor.ready_to_recover(0)
        ticks[0] = 70                          # past the 50-tick cooldown
        assert monitor.ready_to_recover(0)
        assert monitor.begin_recovery(0)
        assert monitor.health(0) == RECOVERING
        assert not monitor.begin_recovery(0)   # single probe slot
        # Failed probe: re-quarantined, outage stamp kept.
        ticks[0] = 75
        monitor.record_probe(0, ok=False)
        assert monitor.health(0) == QUARANTINED
        assert monitor.probes_failed == 1
        assert monitor.quarantined_at[0] == 10
        # Escalated cooldown: 50 * 2 from the re-trip at tick 75.
        ticks[0] = 180
        assert monitor.ready_to_recover(0)
        assert monitor.begin_recovery(0)
        monitor.record_probe(0, ok=True)
        assert monitor.health(0) == HEALTHY
        [recovery] = monitor.recoveries
        assert recovery == {"shard": 0, "down_tick": 10,
                            "up_tick": 180, "mttr": 170}
        assert monitor.mttr_ticks() == [170]

    def test_transitions_trace_is_complete(self):
        monitor, ticks, _ = self._monitor()
        monitor.note_rollback(0)
        monitor.note_rollback(0)
        ticks[0] = 60
        monitor.begin_recovery(0)
        monitor.record_probe(0, ok=True)
        path = [(t["from"], t["to"]) for t in monitor.transitions]
        assert path == [(HEALTHY, DEGRADED), (DEGRADED, QUARANTINED),
                        (QUARANTINED, RECOVERING),
                        (RECOVERING, HEALTHY)]

    def test_scrub_detects_planted_corruption(self):
        monitor, _, fenced = self._monitor(scrub_interval=4)
        shard = monitor.sharded.shards[0]
        _install(monitor.sharded, shard)
        # Flip a live word under the scrubber's nose.
        address = shard.tary_lo
        memory = shard.tables.memory
        memory.write_tary(tary_index(address),
                          memory.read_tary(tary_index(address)) ^ 1)
        task = monitor.scrub_task(active=lambda: True)
        for _ in range(20):            # a few scrub rounds
            next(task)
        assert monitor.health(0) == QUARANTINED
        assert monitor.detected_corruptions >= 1
        assert monitor.audits >= 1
        assert fenced == [0]


# ---------------------------------------------------------------------------
# Parity-spaced placement
# ---------------------------------------------------------------------------

class TestParityTemplate:
    def test_instantiated_ecns_carry_parity(self):
        template = ParityWritesetTemplate(
            *(lambda t: (t.tary, t.bary, t.checks, t.n_classes))(
                WritesetTemplate.default()))
        tary, bary = template.instantiate(tary_base=0, site_base=0,
                                          ecn_base=5)
        for ecn in list(tary.values()) + list(bary.values()):
            assert parity_ecn_ok(ecn)

    def test_loop_wraps_plain_templates(self):
        loop = ResilientServiceLoop(tenants=2, shards=1, seed=0, churn=1)
        assert isinstance(loop.template, ParityWritesetTemplate)

    def test_single_bit_flip_never_aliases(self):
        """The structural half of the zero-undetected gate."""
        used = {parity_ecn(ecn) for ecn in range(1, 256)}
        for encoded in used:
            for bit in range(14):
                assert encoded ^ (1 << bit) not in used


# ---------------------------------------------------------------------------
# Parking, deadlines, admission control
# ---------------------------------------------------------------------------

class _StubMonitor:
    """Minimal monitor: a fixed set of non-serving shards."""

    def __init__(self, down=()):
        self.down = set(down)
        self.outcomes = []

    def serving_updates(self, index):
        return index not in self.down

    def note_commit(self, index):
        self.outcomes.append((index, "commit"))

    def note_rollback(self, index):
        self.outcomes.append((index, "rollback"))


def _drain_steps(coalescer, steps, start=0):
    ticks = [start]
    gen = coalescer.drain(active=lambda: False,
                          clock=lambda: ticks[0])
    for _ in range(steps):
        try:
            next(gen)
        except StopIteration:
            break
        ticks[0] += 1


class TestParkingAndDeadlines:
    def _request(self, shard, tenant="a", seq=0):
        return UpdateRequest(tenant=tenant, kind="dlopen", seq=seq,
                             set_tary={shard.tary_lo: 1},
                             set_bary={shard.site_lo: 1})

    def test_quarantined_shard_requests_park(self):
        sharded = ShardedIdTables(shards=2)
        coalescer = UpdateCoalescer(sharded, window=0)
        coalescer.monitor = _StubMonitor(down={0})
        parked = self._request(sharded.shards[0], "a")
        served = self._request(sharded.shards[1], "b")
        coalescer.submit(parked, tick=0)
        coalescer.submit(served, tick=0)
        _drain_steps(coalescer, 40)
        assert served.status == COMMITTED
        assert parked.status not in (COMMITTED, FAILED)
        assert coalescer.parked_count == 1
        assert coalescer.parked_total == 1
        assert coalescer.trace[0]["parked"] == ["a/0"]

    def test_unpark_requeues_in_order_and_commits(self):
        sharded = ShardedIdTables(shards=1)
        shard = sharded.shards[0]
        coalescer = UpdateCoalescer(sharded, window=0)
        monitor = _StubMonitor(down={0})
        coalescer.monitor = monitor
        first = self._request(shard, "a", 0)
        second = self._request(shard, "b", 0)
        coalescer.submit(first, tick=0)
        coalescer.submit(second, tick=0)
        _drain_steps(coalescer, 10)
        assert coalescer.parked_count == 2
        monitor.down.clear()                   # recovered
        assert coalescer.unpark(0) == 2
        _drain_steps(coalescer, 40)
        assert first.status == COMMITTED
        assert second.status == COMMITTED
        assert coalescer.parked_count == 0

    def test_parked_requests_fail_deadline_not_hang(self):
        sharded = ShardedIdTables(shards=1)
        coalescer = UpdateCoalescer(sharded, window=0)
        coalescer.monitor = _StubMonitor(down={0})
        coalescer.default_deadline = 5
        request = self._request(sharded.shards[0])
        coalescer.submit(request, tick=0)
        _drain_steps(coalescer, 40)            # clock races past 5
        assert request.status == DEADLINE
        assert request.error_code == "deadline-exceeded"
        assert coalescer.deadline_missed == 1
        assert coalescer.parked_count == 0     # drain terminated clean

    def test_poisoned_request_fails_at_the_door(self):
        sharded = ShardedIdTables(shards=1)
        coalescer = UpdateCoalescer(sharded, window=0)
        poisoned = UpdateRequest(tenant="p", kind="dlopen", seq=0,
                                 set_tary={6: 1})   # misaligned
        coalescer.submit(poisoned, tick=3)
        assert poisoned.status == FAILED
        assert poisoned.error_code == "invalid-request"
        assert coalescer.invalid == 1
        assert coalescer.pending == 0          # never queued


# ---------------------------------------------------------------------------
# Chaos injectors
# ---------------------------------------------------------------------------

class TestServiceInjectors:
    def test_bit_flip_storm_flips_one_live_bit(self):
        sharded = ShardedIdTables(shards=2)
        shard = sharded.shards[0]
        _install(sharded, shard)
        plane = FaultPlane(seed=0).arm("service.fault.bitflip", skip=0)
        storm = shard_bit_flip_storm(sharded, plane,
                                     active=lambda: True,
                                     seed=3, interval=2)
        before = {a: shard.tables.memory.read_tary(tary_index(a))
                  for a in shard.tables.tary_ecns}
        for _ in range(12):
            next(storm)
        after = {a: shard.tables.memory.read_tary(tary_index(a))
                 for a in shard.tables.tary_ecns}
        flipped = {a for a in before if before[a] != after[a]}
        assert flipped                         # at least one flip landed
        for address in flipped:
            delta = before[address] ^ after[address]
            assert delta and delta & (delta - 1) == 0   # single bit
        assert plane.fired("service.fault.bitflip") >= 1

    def test_version_gap_storm_writes_stale_version(self):
        sharded = ShardedIdTables(shards=1)
        shard = sharded.shards[0]
        _install(sharded, shard)
        plane = FaultPlane(seed=0).arm("service.fault.stale", skip=0,
                                       count=1)
        storm = version_gap_storm(sharded, plane, active=lambda: True,
                                  seed=1, interval=2)
        for _ in range(8):
            next(storm)
        tables = shard.tables
        stale = [a for a, ecn in tables.tary_ecns.items()
                 if tables.memory.read_tary(tary_index(a))
                 != pack_id(ecn, tables.version)]
        [address] = stale
        expected = pack_id(tables.tary_ecns[address],
                           (tables.version - 1) & 0x3FFF)
        assert tables.memory.read_tary(tary_index(address)) == expected

    def test_storms_are_inert_when_unarmed_and_seeded(self):
        """Unarmed plane: no mutation; same seed: same victim choice."""
        for _ in range(2):
            sharded = ShardedIdTables(shards=2)
            shard = sharded.shards[0]
            _install(sharded, shard)
            plane = FaultPlane(seed=0)          # nothing armed
            storm = shard_bit_flip_storm(sharded, plane,
                                         active=lambda: True,
                                         seed=3, interval=2)
            for _ in range(12):
                next(storm)
            assert shard.tables.audit() == {"tary": [], "bary": []}


# ---------------------------------------------------------------------------
# The resilient loop end to end
# ---------------------------------------------------------------------------

class TestResilientServiceLoop:
    def test_clean_run_matches_base_semantics(self):
        loop = ResilientServiceLoop(tenants=8, shards=4, seed=3,
                                    churn=2)
        report = loop.run()
        assert report.failed == 0
        assert report.escalations == 0
        assert report.negative_checks > 0
        assert report.forged_allows == 0
        assert report.undetected_corruptions == 0
        assert report.quarantines == 0
        assert report.availability == 1.0
        assert set(report.health_states.values()) == {HEALTHY}
        assert loop.sharded.decoded_state() == loop.replay_serial()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_outage_quarantines_then_recovers(self, seed):
        loop = _outage_loop(seed=seed)
        report = loop.run()
        assert report.quarantines >= 1
        assert report.recoveries >= 1
        assert report.rebuilds_verified == report.recoveries
        assert report.parked >= 1
        assert report.mttr_max > 0
        assert report.forged_allows == 0
        assert loop.fenced >= 1
        # Everyone is back by teardown, and the journal replay holds.
        assert set(report.health_states.values()) == {HEALTHY}
        assert loop.sharded.decoded_state() == loop.replay_serial()

    def test_recovered_bands_are_byte_identical(self):
        loop = _outage_loop(seed=0)
        loop.run()
        for shard in loop.sharded.shards:
            assert loop.band_bytes(shard) == \
                loop.expected_band_bytes(shard)

    def test_fold_committed_matches_live_bookkeeping(self):
        loop = _outage_loop(seed=0)
        loop.run()
        for shard in loop.sharded.shards:
            tary, bary = loop._fold_committed(shard.index)
            assert tary == shard.tables.tary_ecns
            assert bary == shard.tables.bary_ecns

    def test_total_outage_fails_deadlines_never_hangs(self):
        slow = HealthPolicy(rollback_threshold=1, cooldown_ticks=4000,
                            max_cooldown_ticks=8000, scrub_interval=16)
        plane = FaultPlane(seed=0).arm("service.commit", skip=0,
                                       count=2)
        loop = ResilientServiceLoop(tenants=6, shards=2, seed=0,
                                    churn=2, policy=slow, deadline=120,
                                    fault_plane=plane)
        report = loop.run()                    # terminates
        assert report.deadline_missed > 0
        assert report.quarantines >= 1
        assert all(request.done for request in loop.coalescer.log)

    def test_storm_run_admits_no_forged_edge(self):
        plane = FaultPlane(seed=0).arm("service.fault.bitflip", skip=0,
                                       count=6)
        loop = ResilientServiceLoop(tenants=6, shards=2, seed=0,
                                    churn=3, policy=OUTAGE_POLICY,
                                    fault_plane=plane,
                                    bitflip_storm=dict(interval=10))
        report = loop.run()
        assert report.faults_injected >= 1
        assert report.forged_allows == 0
        assert report.undetected_corruptions == 0
        # Whatever the storm left behind was found: the final bands
        # byte-match a clean rebuild of the trusted assignment.
        for shard in loop.sharded.shards:
            assert loop.band_bytes(shard) == \
                loop.expected_band_bytes(shard)

    def test_chaos_run_is_deterministic(self):
        def cell():
            loop = _outage_loop(seed=4, bitflip_storm=dict(interval=12))
            report = loop.run()
            return (report.to_dict(), loop.coalescer.trace_jsonl(),
                    loop.monitor.transitions)
        assert cell() == cell()
