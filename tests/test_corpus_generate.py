"""Seeded TinyC generator: determinism, validity, oracle agreement.

The generator's contract: (1) same seed ⇒ byte-identical source,
(2) every emitted program compiles through the full MCFI pipeline with
zero violations, (3) the AST oracle predicts the VM's exact output and
exit code.  Oracle agreement is the keystone — the differential
harness's ground truth is only as good as this equivalence.
"""

import pytest

from repro.toolchain import compile_and_run
from repro.workloads.generate import GenConfig, generate


QUICK = GenConfig.quick()


def _run_x64(program):
    return compile_and_run({program.name: program.source},
                           max_steps=3_000_000)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        assert generate(42).source == generate(42).source
        assert generate(42, QUICK).source == generate(42, QUICK).source

    def test_different_seeds_differ(self):
        sources = {generate(seed).source for seed in range(6)}
        assert len(sources) == 6

    def test_config_changes_output(self):
        assert generate(42).source != generate(42, QUICK).source

    def test_member_name_embeds_seed(self):
        assert generate(1729).name == "gen1729"
        assert "seed=1729" in generate(1729).source


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_vm_matches_oracle_quick(self, seed):
        program = generate(seed, QUICK)
        expected = program.evaluate()
        result = _run_x64(program)
        assert result.output == expected.output
        assert result.exit_code == expected.exit_code
        assert not result.violations

    def test_vm_matches_oracle_full_config(self):
        program = generate(11)
        expected = program.evaluate()
        result = _run_x64(program)
        assert result.output == expected.output
        assert result.exit_code == expected.exit_code

    def test_edit_variant_still_agrees(self):
        variant = generate(3, QUICK).edit_variant()
        expected = variant.evaluate()
        result = _run_x64(variant)
        assert result.output == expected.output
        assert result.exit_code == expected.exit_code

    def test_edit_variant_changes_source(self):
        program = generate(3, QUICK)
        assert program.edit_variant().source != program.source


class TestFeatureCoverage:
    """The ISSUE-10 grammar features all appear across a seed range."""

    @pytest.fixture(scope="class")
    def corpus_text(self):
        return "\n".join(generate(seed).source for seed in range(12))

    @pytest.mark.parametrize("marker", [
        "(*tab",          # function-pointer table globals
        ")(",             # indirect call through a table/parameter
        "...",            # variadic declaration
        "setjmp(", "longjmp(",
        "buf + ((",       # page-straddle buffer accesses
        "switch (",
        "do {",
        "char *",         # string globals
        "(unsigned char)",  # narrow casts
        "return ",
    ])
    def test_feature_present(self, corpus_text, marker):
        assert marker in corpus_text

    def test_casted_function_addresses_present(self, corpus_text):
        assert "(long)" in corpus_text  # fn address cast chains

    def test_line_counts_reasonable(self):
        for seed in range(5):
            assert generate(seed, QUICK).line_count() < 400
