"""Tests for paged memory, protections and the table region."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault
from repro.vm.memory import (
    CODE_LIMIT,
    Memory,
    PAGE_SIZE,
    TableMemory,
)


@pytest.fixture()
def memory():
    mem = Memory()
    mem.map(0x10000, 2 * PAGE_SIZE, readable=True, writable=True)
    return mem


class TestAccess:
    def test_read_write_roundtrip(self, memory):
        memory.write_u64(0x10008, 0x1122334455667788)
        assert memory.read_u64(0x10008) == 0x1122334455667788
        memory.write_u32(0x10100, 0xCAFEBABE)
        assert memory.read_u32(0x10100) == 0xCAFEBABE
        memory.write_u8(0x10200, 0xAB)
        assert memory.read_u8(0x10200) == 0xAB

    def test_cross_page_access(self, memory):
        address = 0x10000 + PAGE_SIZE - 4
        memory.write_u64(address, 0x0102030405060708)
        assert memory.read_u64(address) == 0x0102030405060708

    def test_unmapped_read_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read_u64(0x90000)

    def test_write_to_readonly_faults(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=False)
        with pytest.raises(MemoryFault):
            mem.write_u8(0x10000, 1)
        assert mem.read_u8(0x10000) == 0

    def test_unaligned_map_rejected(self):
        with pytest.raises(MemoryFault):
            Memory().map(0x10001, 100)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF))
    def test_values_masked_to_64_bits(self, value):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, writable=True)
        mem.write_u64(0x10000, value)
        assert mem.read_u64(0x10000) == value & 0xFFFFFFFFFFFFFFFF


class TestProtection:
    def test_protect_changes_flags(self, memory):
        memory.protect(0x10000, PAGE_SIZE, readable=True, writable=False)
        with pytest.raises(MemoryFault):
            memory.write_u8(0x10000, 1)
        # second page unaffected
        memory.write_u8(0x10000 + PAGE_SIZE, 1)

    def test_protect_unmapped_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.protect(0x50000, PAGE_SIZE)

    def test_host_access_bypasses_protection(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=False,
                executable=True)
        mem.host_write(0x10000, b"\x01\x02")
        assert mem.host_read(0x10000, 2) == b"\x01\x02"

    def test_fetch_requires_executable(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=True)
        with pytest.raises(MemoryFault):
            mem.fetch(0x10000, 4)
        mem.protect(0x10000, PAGE_SIZE, readable=True, executable=True)
        assert mem.fetch(0x10000, 4) == b"\x00" * 4

    def test_is_queries(self, memory):
        assert memory.is_mapped(0x10000)
        assert memory.is_writable(0x10000)
        assert not memory.is_executable(0x10000)
        assert not memory.is_mapped(0x99000)


class TestTableMemory:
    def test_tary_roundtrip(self):
        tables = TableMemory()
        tables.write_tary(0x100, 0xDEADBEE1)
        assert tables.read_tary(0x100) == 0xDEADBEE1

    def test_bary_roundtrip(self):
        tables = TableMemory()
        tables.write_bary(8, 0x12345671)
        assert tables.read_bary(8) == 0x12345671

    def test_unwritten_entries_are_zero(self):
        tables = TableMemory()
        assert tables.read_tary(0) == 0
        assert tables.read_bary(0) == 0

    def test_out_of_range_tary_read_faults(self):
        """An out-of-range %gs access segfaults on real hardware —
        fail-safe, not fail-open."""
        tables = TableMemory()
        with pytest.raises(MemoryFault):
            tables.read_tary(CODE_LIMIT)
        with pytest.raises(MemoryFault):
            tables.read_tary(-4)

    def test_unaligned_id_store_rejected(self):
        tables = TableMemory()
        with pytest.raises(MemoryFault):
            tables.write_tary(2, 1)
        with pytest.raises(MemoryFault):
            tables.write_bary(6, 1)

    def test_misaligned_read_spans_entries(self):
        """Unaligned Tary reads see bytes of two adjacent IDs — the
        reserved-bit scheme relies on this producing invalid words."""
        from repro.core.idencoding import is_valid_id, pack_id
        tables = TableMemory()
        tables.write_tary(0, pack_id(1, 1))
        tables.write_tary(4, pack_id(2, 1))
        for offset in (1, 2, 3):
            assert not is_valid_id(tables.read_tary(offset))
