"""Tests for paged memory, protections and the table region."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault
from repro.vm.memory import (
    CODE_LIMIT,
    Memory,
    PAGE_SIZE,
    TableMemory,
)


@pytest.fixture()
def memory():
    mem = Memory()
    mem.map(0x10000, 2 * PAGE_SIZE, readable=True, writable=True)
    return mem


class TestAccess:
    def test_read_write_roundtrip(self, memory):
        memory.write_u64(0x10008, 0x1122334455667788)
        assert memory.read_u64(0x10008) == 0x1122334455667788
        memory.write_u32(0x10100, 0xCAFEBABE)
        assert memory.read_u32(0x10100) == 0xCAFEBABE
        memory.write_u8(0x10200, 0xAB)
        assert memory.read_u8(0x10200) == 0xAB

    def test_cross_page_access(self, memory):
        address = 0x10000 + PAGE_SIZE - 4
        memory.write_u64(address, 0x0102030405060708)
        assert memory.read_u64(address) == 0x0102030405060708

    def test_unmapped_read_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.read_u64(0x90000)

    def test_write_to_readonly_faults(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=False)
        with pytest.raises(MemoryFault):
            mem.write_u8(0x10000, 1)
        assert mem.read_u8(0x10000) == 0

    def test_unaligned_map_rejected(self):
        with pytest.raises(MemoryFault):
            Memory().map(0x10001, 100)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFFFFFFFFFF))
    def test_values_masked_to_64_bits(self, value):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, writable=True)
        mem.write_u64(0x10000, value)
        assert mem.read_u64(0x10000) == value & 0xFFFFFFFFFFFFFFFF


class TestProtection:
    def test_protect_changes_flags(self, memory):
        memory.protect(0x10000, PAGE_SIZE, readable=True, writable=False)
        with pytest.raises(MemoryFault):
            memory.write_u8(0x10000, 1)
        # second page unaffected
        memory.write_u8(0x10000 + PAGE_SIZE, 1)

    def test_protect_unmapped_faults(self, memory):
        with pytest.raises(MemoryFault):
            memory.protect(0x50000, PAGE_SIZE)

    def test_host_access_bypasses_protection(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=False,
                executable=True)
        mem.host_write(0x10000, b"\x01\x02")
        assert mem.host_read(0x10000, 2) == b"\x01\x02"

    def test_fetch_requires_executable(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=True)
        with pytest.raises(MemoryFault):
            mem.fetch(0x10000, 4)
        mem.protect(0x10000, PAGE_SIZE, readable=True, executable=True)
        assert mem.fetch(0x10000, 4) == b"\x00" * 4

    def test_is_queries(self, memory):
        assert memory.is_mapped(0x10000)
        assert memory.is_writable(0x10000)
        assert not memory.is_executable(0x10000)
        assert not memory.is_mapped(0x99000)


class TestTableMemory:
    def test_tary_roundtrip(self):
        tables = TableMemory()
        tables.write_tary(0x100, 0xDEADBEE1)
        assert tables.read_tary(0x100) == 0xDEADBEE1

    def test_bary_roundtrip(self):
        tables = TableMemory()
        tables.write_bary(8, 0x12345671)
        assert tables.read_bary(8) == 0x12345671

    def test_unwritten_entries_are_zero(self):
        tables = TableMemory()
        assert tables.read_tary(0) == 0
        assert tables.read_bary(0) == 0

    def test_out_of_range_tary_read_faults(self):
        """An out-of-range %gs access segfaults on real hardware —
        fail-safe, not fail-open."""
        tables = TableMemory()
        with pytest.raises(MemoryFault):
            tables.read_tary(CODE_LIMIT)
        with pytest.raises(MemoryFault):
            tables.read_tary(-4)

    def test_unaligned_id_store_rejected(self):
        tables = TableMemory()
        with pytest.raises(MemoryFault):
            tables.write_tary(2, 1)
        with pytest.raises(MemoryFault):
            tables.write_bary(6, 1)

    def test_misaligned_read_spans_entries(self):
        """Unaligned Tary reads see bytes of two adjacent IDs — the
        reserved-bit scheme relies on this producing invalid words."""
        from repro.core.idencoding import is_valid_id, pack_id
        tables = TableMemory()
        tables.write_tary(0, pack_id(1, 1))
        tables.write_tary(4, pack_id(2, 1))
        for offset in (1, 2, 3):
            assert not is_valid_id(tables.read_tary(offset))


class TestAtomic16BitAccess:
    """PR 5 bugfix: 16-bit accessors validate both byte addresses
    before touching memory — no torn page-boundary stores."""

    def _boundary_memory(self, second_writable):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=True)
        mem.map(0x10000 + PAGE_SIZE, PAGE_SIZE, readable=True,
                writable=second_writable)
        return mem, 0x10000 + PAGE_SIZE - 1

    def test_u16_roundtrip_within_page(self):
        mem, _ = self._boundary_memory(True)
        mem.write_u16(0x10010, 0xBEEF)
        assert mem.read_u16(0x10010) == 0xBEEF
        assert mem.read_u8(0x10010) == 0xEF
        assert mem.read_u8(0x10011) == 0xBE

    def test_u16_roundtrip_across_pages(self):
        mem, boundary = self._boundary_memory(True)
        mem.write_u16(boundary, 0xBBAA)
        assert mem.read_u16(boundary) == 0xBBAA
        assert mem.read_u8(boundary) == 0xAA
        assert mem.read_u8(boundary + 1) == 0xBB

    def test_store_into_readonly_second_page_not_torn(self):
        mem, boundary = self._boundary_memory(False)
        mem.write_u8(boundary, 0x55)
        with pytest.raises(MemoryFault) as err:
            mem.write_u16(boundary, 0xBBAA)
        assert err.value.address == boundary + 1
        # The bug: the low byte was written before the fault.
        assert mem.read_u8(boundary) == 0x55

    def test_store_into_unmapped_second_page_not_torn(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=True)
        boundary = 0x10000 + PAGE_SIZE - 1
        with pytest.raises(MemoryFault):
            mem.write_u16(boundary, 0xBBAA)
        assert mem.read_u8(boundary) == 0

    def test_read_across_unreadable_second_page_faults_cleanly(self):
        mem = Memory()
        mem.map(0x10000, PAGE_SIZE, readable=True, writable=True)
        boundary = 0x10000 + PAGE_SIZE - 1
        with pytest.raises(MemoryFault) as err:
            mem.read_u16(boundary)
        assert err.value.address == boundary + 1

    def test_wide_straddling_stores_are_atomic_too(self):
        """The same audit applied to 32/64-bit stores: every page is
        validated before any byte is written."""
        mem, boundary = self._boundary_memory(False)
        for width, writer in ((4, mem.write_u32), (8, mem.write_u64)):
            start = 0x10000 + PAGE_SIZE - width + 1
            before = mem.read_bytes(start, width - 1)
            with pytest.raises(MemoryFault):
                writer(start, (1 << (8 * width)) - 1)
            assert mem.read_bytes(start, width - 1) == before

    def test_fault_address_is_first_offending_byte(self):
        mem, _ = self._boundary_memory(False)
        start = 0x10000 + PAGE_SIZE - 4
        with pytest.raises(MemoryFault) as err:
            mem.write_u64(start, 0)
        assert err.value.address == 0x10000 + PAGE_SIZE
