"""Tests for ID tables and the check/update transactions (Sec. 5.2).

Includes the property-based linearizability test: under arbitrary
seeded interleavings of check and update transactions, every check
observes either the fully-old or the fully-new CFG — never a mix that
permits an illegal transfer.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.idencoding import pack_id, unpack_id
from repro.core.tables import IdTables, bary_index, tary_index
from repro.core.transactions import (
    CheckResult,
    UpdateLock,
    UpdateTransaction,
    periodic_updater,
    refresh_transaction,
    tx_check,
    tx_check_gen,
)
from repro.errors import RuntimeError_, TableIntegrityError
from repro.vm.memory import TableMemory
from repro.vm.scheduler import GeneratorTask, Scheduler


def make_tables(tary=None, bary=None, version=0):
    tables = IdTables(TableMemory())
    tables.install(tary or {}, bary or {}, version=version)
    return tables


class TestIdTables:
    def test_install_and_lookup(self):
        tables = make_tables({0x1000: 3, 0x1004: 5}, {0: 3, 1: 5})
        assert tables.target_ecn(0x1000) == 3
        assert tables.target_ecn(0x1004) == 5
        assert tables.target_ecn(0x1008) is None
        assert unpack_id(tables.branch_id(0)).ecn == 3

    def test_permitted_matches_ecn(self):
        tables = make_tables({0x1000: 3, 0x1004: 5}, {0: 3})
        assert tables.permitted(0, 0x1000)
        assert not tables.permitted(0, 0x1004)
        assert not tables.permitted(0, 0x1001)  # unaligned
        assert not tables.permitted(0, 0x2000)  # no entry

    def test_unaligned_target_rejected_at_install(self):
        with pytest.raises(RuntimeError_):
            make_tables({0x1001: 1}, {})

    def test_clear_targets(self):
        tables = make_tables({0x1000: 1}, {})
        tables.clear_targets([0x1000])
        assert tables.target_ecn(0x1000) is None

    def test_stats(self):
        tables = make_tables({0x1000: 1, 0x1004: 1, 0x1008: 2}, {0: 1})
        stats = tables.stats()
        assert stats["targets"] == 3
        assert stats["equivalence_classes"] == 2


class TestTxCheck:
    def test_allowed(self):
        tables = make_tables({0x1000: 7}, {0: 7})
        assert tx_check(tables, 0, 0x1000) == (CheckResult.ALLOWED, 0)

    def test_ecn_mismatch(self):
        tables = make_tables({0x1000: 7, 0x1004: 8}, {0: 7})
        assert tx_check(tables, 0, 0x1004)[0] == CheckResult.ECN_MISMATCH

    def test_invalid_target(self):
        tables = make_tables({0x1000: 7}, {0: 7})
        assert tx_check(tables, 0, 0x2000)[0] == CheckResult.INVALID_TARGET
        assert tx_check(tables, 0, 0x1001)[0] == CheckResult.INVALID_TARGET

    def test_out_of_range_target(self):
        tables = make_tables({0x1000: 7}, {0: 7})
        result, _ = tx_check(tables, 0, 0xFFFFFFF0)
        assert result == CheckResult.OUT_OF_RANGE

    def test_version_mismatch_retries(self):
        tables = make_tables({0x1000: 7}, {0: 7})
        # Manually give the target a newer version: the branch ID is
        # stale, so the check must retry; after we fix the branch ID it
        # completes.  Simulate with a one-shot interleaving.
        tables.memory.write_tary(tary_index(0x1000), pack_id(7, 1))
        original_read = tables.memory.read_bary
        calls = {"n": 0}

        def flaky_read(index):
            calls["n"] += 1
            if calls["n"] >= 2:  # update "finishes"
                return pack_id(7, 1)
            return original_read(index)

        tables.memory.read_bary = flaky_read
        result, retries = tx_check(tables, 0, 0x1000)
        assert result == CheckResult.ALLOWED
        assert retries == 1


class TestUpdateLock:
    def test_serialization(self):
        lock = UpdateLock()
        first = lock.acquire_spin("a")
        list(first)
        assert lock.held
        second = lock.acquire_spin("b")
        assert next(second, "blocked") is None  # still spinning
        lock.release("a")
        list(second)
        assert lock.held
        lock.release("b")

    def test_wrong_owner_release_rejected(self):
        lock = UpdateLock()
        list(lock.acquire_spin("a"))
        with pytest.raises(RuntimeError_):
            lock.release("b")


class TestUpdateTransaction:
    def test_version_bumped_and_ecns_installed(self):
        tables = make_tables({0x1000: 1}, {0: 1})
        tx = UpdateTransaction(tables, UpdateLock(),
                               new_tary={0x1000: 1, 0x1004: 2},
                               new_bary={0: 1, 1: 2})
        for _ in tx.run():
            pass
        assert tx.completed
        assert tables.version == 1
        assert tables.target_ecn(0x1004) == 2
        assert unpack_id(tables.target_id(0x1000)).version == 1

    def test_stale_entries_zeroed(self):
        tables = make_tables({0x1000: 1, 0x1004: 2}, {0: 1})
        tx = UpdateTransaction(tables, UpdateLock(),
                               new_tary={0x1000: 1}, new_bary={0: 1})
        for _ in tx.run():
            pass
        assert tables.target_ecn(0x1004) is None

    def test_tary_updated_before_bary(self):
        """Fig. 3's ordering: when the first Bary write lands, every
        Tary write must already have landed."""
        tables = make_tables({0x1000 + 4 * i: 1 for i in range(64)},
                             {0: 1})
        tx = UpdateTransaction(tables, UpdateLock(),
                               new_tary={0x1000 + 4 * i: 1
                                         for i in range(64)},
                               new_bary={0: 1}, batch=8)
        for _ in tx.run():
            branch_version = unpack_id(tables.branch_id(0)).version
            if branch_version == 1:  # Bary already new ...
                for i in range(64):  # ... then Tary is fully new
                    ident = unpack_id(tables.target_id(0x1000 + 4 * i))
                    assert ident.version == 1

    def test_got_updates_applied_at_barrier(self):
        tables = make_tables({}, {})
        written = {}
        tx = UpdateTransaction(tables, UpdateLock(), new_tary={},
                               new_bary={},
                               got_writer=lambda a, v: written.update(
                                   {a: v}),
                               got_updates=[(0x5000, 0x1234)])
        for _ in tx.run():
            pass
        assert written == {0x5000: 0x1234}

    def test_got_updates_without_writer_rejected(self):
        tables = make_tables({}, {})
        tx = UpdateTransaction(tables, UpdateLock(), new_tary={},
                               new_bary={}, got_updates=[(1, 2)])
        with pytest.raises(RuntimeError_):
            for _ in tx.run():
                pass

    def test_lock_released_on_error(self):
        tables = make_tables({}, {})
        lock = UpdateLock()
        tx = UpdateTransaction(tables, lock, new_tary={0x1001: 1},
                               new_bary={})
        with pytest.raises(Exception):
            for _ in tx.run():
                pass
        assert not lock.held

    def test_refresh_preserves_ecns(self):
        tables = make_tables({0x1000: 3, 0x1004: 4}, {0: 3})
        for _ in refresh_transaction(tables, UpdateLock()).run():
            pass
        assert tables.version == 1
        assert tables.target_ecn(0x1000) == 3
        assert tables.target_ecn(0x1004) == 4


class TestLinearizability:
    """The concurrent correctness property (Sec. 5.2): interleaved
    check and refresh transactions never observe a broken policy."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_checks_never_break_under_refresh(self, seed):
        targets = {0x1000 + 4 * i: i % 5 for i in range(50)}
        branches = {s: s % 5 for s in range(10)}
        tables = make_tables(targets, branches)
        lock = UpdateLock()

        allowed_pairs = [(s, a) for s in branches for a in targets
                         if branches[s] == targets[a]]
        denied_pairs = [(s, a) for s in branches for a in targets
                        if branches[s] != targets[a]][:20]
        results = []

        def checker():
            for i in range(120):
                site, addr = allowed_pairs[i % len(allowed_pairs)]
                sink = []
                yield from tx_check_gen(tables, site, addr, sink)
                results.append(("allow", sink[0][0]))
                site, addr = denied_pairs[i % len(denied_pairs)]
                sink = []
                yield from tx_check_gen(tables, site, addr, sink)
                results.append(("deny", sink[0][0]))
                yield

        def updater():
            for _ in range(3):
                yield from refresh_transaction(tables, lock, batch=4).run()

        scheduler = Scheduler(seed=seed)
        scheduler.add_generator(checker(), "checker")
        scheduler.add_generator(updater(), "updater")
        scheduler.run()

        for expectation, outcome in results:
            if expectation == "allow":
                assert outcome == CheckResult.ALLOWED
            else:
                assert outcome == CheckResult.ECN_MISMATCH

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_policy_change_is_atomic(self, seed):
        """During a policy *change* (not just refresh), a check sees
        either the old or the new ECN assignment in full."""
        old_tary = {0x1000: 1, 0x1004: 2}
        new_tary = {0x1000: 2, 0x1004: 2}  # 0x1000 moves into class 2
        tables = make_tables(old_tary, {0: 1, 1: 2})
        lock = UpdateLock()
        observations = []

        def checker():
            for _ in range(60):
                sink = []
                yield from tx_check_gen(tables, 1, 0x1000, sink)
                observations.append(sink[0][0])
                yield

        def updater():
            yield from UpdateTransaction(
                tables, lock, new_tary=new_tary, new_bary={0: 1, 1: 2},
                batch=1).run()

        scheduler = Scheduler(seed=seed)
        scheduler.add_generator(checker(), "checker")
        scheduler.add_generator(updater(), "updater")
        scheduler.run()
        # site 1 -> 0x1000 is denied under old, allowed under new; the
        # sequence must be monotone: once allowed, never denied again.
        seen_allowed = False
        for outcome in observations:
            assert outcome in (CheckResult.ALLOWED,
                               CheckResult.ECN_MISMATCH)
            if outcome == CheckResult.ALLOWED:
                seen_allowed = True
            else:
                assert not seen_allowed, "policy flapped old<->new"


class TestUpdateOrdering:
    """The TxUpdate ordering property (Fig. 3): Tary before barrier
    before Bary.  Even with an adversarially delayed or dropped
    barrier, a reader interleaved between the Tary and Bary write
    batches must retry (version mismatch) or observe a consistent
    policy — never a forged-valid edge."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from(["delay", "drop"]))
    def test_reader_between_tary_and_bary_never_forges(self, seed, mode):
        from repro.faults.injectors import TornUpdateTransaction

        targets = {0x1000 + 4 * i: i % 3 for i in range(24)}
        branches = {s: s % 3 for s in range(6)}
        tables = make_tables(targets, branches)
        lock = UpdateLock()
        denied = [(s, a) for s in branches for a in targets
                  if branches[s] != targets[a]][:12]
        allowed = [(s, a) for s in branches for a in targets
                   if branches[s] == targets[a]][:12]
        outcomes = []

        def reader():
            for _ in range(4):
                for site, addr in denied:
                    sink = []
                    yield from tx_check_gen(tables, site, addr, sink)
                    outcomes.append(("deny", sink[0]))
                for site, addr in allowed:
                    sink = []
                    yield from tx_check_gen(tables, site, addr, sink)
                    outcomes.append(("allow", sink[0]))
                yield

        torn = TornUpdateTransaction(
            tables, lock, new_tary=dict(targets), new_bary=dict(branches),
            batch=1, mode=mode, stall=12, owner="torn")
        scheduler = Scheduler(seed=seed)
        scheduler.add_generator(reader(), "reader")
        scheduler.add_generator(torn.run(), "torn")
        result = scheduler.run(max_ticks=500_000)
        assert result.ok
        assert outcomes, "reader made no observations"
        for expectation, (outcome, retries) in outcomes:
            # The torn window may force retries, but every completed
            # check lands on the trusted policy: a denied edge is NEVER
            # admitted, with or without the barrier.
            if expectation == "deny":
                assert outcome != CheckResult.ALLOWED
            else:
                assert outcome == CheckResult.ALLOWED
            assert retries >= 0

    def test_torn_modes_validated(self):
        from repro.faults.injectors import TornUpdateTransaction

        tables = make_tables({0x1000: 1}, {0: 1})
        with pytest.raises(ValueError):
            TornUpdateTransaction(tables, UpdateLock(), new_tary={},
                                  new_bary={}, mode="sideways")


class TestBoundedCheckRetry:
    """A checker caught in a never-closing version window must not spin
    forever: the retry budget escalates to TableIntegrityError."""

    def _stale_tables(self):
        # Target rewound to an older version with no update in flight:
        # the retry window never closes.
        tables = make_tables({0x1000: 7}, {0: 7}, version=3)
        tables.memory.write_tary(tary_index(0x1000), pack_id(7, 2))
        return tables

    def test_tx_check_escalates(self):
        with pytest.raises(TableIntegrityError) as err:
            tx_check(self._stale_tables(), 0, 0x1000, max_retries=16)
        assert err.value.retries > 16

    def test_tx_check_gen_escalates(self):
        gen = tx_check_gen(self._stale_tables(), 0, 0x1000, [],
                           max_retries=16)
        with pytest.raises(TableIntegrityError):
            for _ in gen:
                pass

    def test_budget_generous_enough_for_real_updates(self):
        """A genuine in-flight update closes its window in far fewer
        steps than the default budget, so escalation never fires."""
        tables = make_tables({0x1000 + 4 * i: 1 for i in range(8)},
                             {0: 1})
        lock = UpdateLock()
        sink = []

        def checker():
            yield from tx_check_gen(tables, 0, 0x1000, sink)

        scheduler = Scheduler(seed=5)
        scheduler.add_generator(checker(), "checker")
        scheduler.add_generator(
            refresh_transaction(tables, lock, batch=1).run(), "updater")
        assert scheduler.run(max_ticks=100_000).ok
        assert sink[0][0] == CheckResult.ALLOWED


class TestPeriodicUpdater:
    def test_fires_at_interval(self):
        tables = make_tables({0x1000: 1}, {0: 1})
        lock = UpdateLock()
        clock = {"cycles": 0}
        counter = {}

        def ticking_checker():
            for _ in range(100):
                clock["cycles"] += 10
                yield

        scheduler = Scheduler(seed=0)
        scheduler.add_generator(ticking_checker(), "clock")
        scheduler.add_generator(
            periodic_updater(tables, lock, lambda: clock["cycles"],
                             interval=300, counter=counter,
                             stop=lambda: clock["cycles"] >= 1000),
            "updater")
        scheduler.run(max_ticks=10_000)
        assert counter.get("updates", 0) >= 2
        assert tables.version == counter["updates"]


class TestUnifiedRetryBudget:
    """PR 5 bugfix: tx_check and tx_check_gen share one default retry
    budget (DEFAULT_CHECK_RETRIES) and escalate at the same bound."""

    def _stale_tables(self):
        tables = make_tables({0x1000: 7}, {0: 7}, version=3)
        tables.memory.write_tary(tary_index(0x1000), pack_id(7, 2))
        return tables

    def test_defaults_agree(self):
        import inspect
        from repro.core.transactions import DEFAULT_CHECK_RETRIES

        check_default = inspect.signature(tx_check) \
            .parameters["max_retries"].default
        gen_default = inspect.signature(tx_check_gen) \
            .parameters["max_retries"].default
        assert check_default == gen_default == DEFAULT_CHECK_RETRIES

    def test_both_escalate_at_the_same_bound(self):
        """Under the default budget, both transcriptions give up after
        exactly DEFAULT_CHECK_RETRIES retries."""
        from repro.core.transactions import DEFAULT_CHECK_RETRIES

        with pytest.raises(TableIntegrityError) as direct:
            tx_check(self._stale_tables(), 0, 0x1000)

        gen = tx_check_gen(self._stale_tables(), 0, 0x1000, [])
        with pytest.raises(TableIntegrityError) as scheduled:
            for _ in gen:
                pass

        assert direct.value.retries == scheduled.value.retries \
            == DEFAULT_CHECK_RETRIES + 1


class TestOrphanZeroingBatched:
    """PR 5 bugfix: the stale-Bary zeroing loop in UpdateTransaction
    yields per batch, so unloading a large module is not one unbounded
    atomic step."""

    N_ORPHANS = 64

    def _unload_transaction(self, batch):
        # All Bary sites present, then an update that drops every one
        # of them (a full module unload): the old run() zeroed them in
        # a single atomic stretch after the last copy-loop yield.
        tables = make_tables(
            {0x1000 + 4 * i: 1 for i in range(4)},
            {site: 1 for site in range(self.N_ORPHANS)})
        return tables, UpdateTransaction(
            tables, UpdateLock(),
            new_tary={0x1000 + 4 * i: 1 for i in range(4)},
            new_bary={}, batch=batch)

    def _zeroed(self, tables):
        from repro.core.tables import bary_index as bidx
        return sum(1 for site in range(self.N_ORPHANS)
                   if tables.memory.read_bary(bidx(site)) == 0)

    def test_zeroing_yields_per_batch(self):
        batch = 8
        tables, update = self._unload_transaction(batch)
        observed = []
        for _ in update.run():
            observed.append(self._zeroed(tables))
        assert update.completed
        assert self._zeroed(tables) == self.N_ORPHANS
        # The scheduler observes the zeroing in progress: several
        # distinct partial states, none of them jumping by more than
        # one batch of sites.
        partial = [z for z in observed if 0 < z < self.N_ORPHANS]
        assert len(set(partial)) >= self.N_ORPHANS // batch - 1
        progress = [z for z in observed if z > 0]
        for before, after in zip(progress, progress[1:]):
            assert after - before <= batch

    @given(st.integers(min_value=0, max_value=99))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_checker_sees_partial_unload(self, seed):
        """Property: under any seeded interleaving, a concurrent reader
        can observe the unload mid-zeroing — the transaction never
        holds the scheduler through the whole orphan loop."""
        tables, update = self._unload_transaction(batch=4)
        partials = []

        def reader():
            while not update.completed:
                partials.append(self._zeroed(tables))
                yield

        scheduler = Scheduler(seed=seed)
        scheduler.add_generator(reader(), "reader")
        scheduler.add_generator(update.run(), "updater")
        assert scheduler.run(max_ticks=100_000).ok
        assert update.completed
        assert any(0 < z < self.N_ORPHANS for z in partials), \
            "reader never observed the zeroing in progress"
