"""Disassembler fidelity: decode -> re-encode must be byte-identity.

The binary verifier's soundness rests on the disassembler seeing the
*same* instruction stream the CPU will execute.  These tests pin that
down: every decoded instruction of every workload re-encodes to the
exact bytes it was decoded from, decoding is total over the declared
code ranges, and instruction boundaries behave at page-straddling
addresses.
"""

from __future__ import annotations

import pytest

from repro.errors import EncodingError
from repro.isa.encoding import decode, encode
from repro.isa.disasm import sweep_ranges
from repro.isa.instructions import Instruction, Op
from repro.workloads.spec import BENCHMARKS

PAGE = 4096


@pytest.mark.parametrize("name", BENCHMARKS)
def test_workload_reencodes_byte_identical(name):
    from repro.experiments import compiled
    module = compiled(name, "x64", True).module
    decoded = sweep_ranges(module.code, module.base, module.code_ranges)
    assert decoded
    for d in decoded:
        raw = module.code[d.address - module.base:
                          d.address - module.base + d.length]
        assert encode(d.instr) == raw, \
            f"{name}: {d.instr.spec.mnemonic} at {d.address:#x}"


@pytest.mark.parametrize("name", BENCHMARKS)
def test_workload_ranges_decode_contiguously(name):
    from repro.experiments import compiled
    module = compiled(name, "x64", True).module
    decoded = sweep_ranges(module.code, module.base, module.code_ranges)
    by_range = {start: [] for start, _ in module.code_ranges}
    for d in decoded:
        for start, end in module.code_ranges:
            if start <= d.address < end:
                by_range[start].append(d)
                break
    for (start, end), instrs in zip(sorted(module.code_ranges),
                                    (by_range[s] for s, _ in
                                     sorted(module.code_ranges))):
        assert instrs[0].address == start
        assert instrs[-1].end == end
        for prev, cur in zip(instrs, instrs[1:]):
            assert prev.end == cur.address


class TestPageStraddle:
    def test_instruction_across_page_boundary(self):
        # a 10-byte mov immediate starting 5 bytes before a page edge
        instr = Instruction(Op.MOV_RI, (3, 0x1122334455667788))
        blob = bytes([Op.NOP]) * (PAGE - 5) + encode(instr)
        start = PAGE - 5
        decoded, length = decode(blob, start)
        assert decoded == instr
        assert start + length == len(blob)
        swept = sweep_ranges(blob, 0, [(0, len(blob))])
        assert swept[-1].address == start
        assert swept[-1].end == len(blob)

    def test_boundary_never_bisects_an_instruction(self):
        instr = Instruction(Op.MOV_RI, (3, 99))
        blob = bytes([Op.NOP]) * (PAGE - 5) + encode(instr)
        with pytest.raises(EncodingError):
            sweep_ranges(blob, 0, [(0, PAGE)])

    def test_truncated_tail_rejected(self):
        instr = Instruction(Op.MOV_RI, (3, 99))
        blob = bytes([Op.NOP]) * 4 + encode(instr)[:-2]
        with pytest.raises(EncodingError):
            sweep_ranges(blob, 0, [(0, len(blob))])
