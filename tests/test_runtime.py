"""Tests for the MCFI runtime: loading, W^X, syscalls, execution."""

import pytest

from repro.errors import CfiViolation, MemoryFault, RuntimeError_, \
    WxViolation
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_and_link
from tests.conftest import run_source


class TestLoading:
    def test_code_pages_sealed(self, demo_runtime):
        module = demo_runtime.program.module
        memory = demo_runtime.memory
        assert memory.is_executable(module.base)
        assert not memory.is_writable(module.base)

    def test_rodata_sealed(self, demo_runtime):
        data = demo_runtime.program.data
        if data.rodata_end:
            assert not demo_runtime.memory.is_writable(data.base)

    def test_bary_slots_patched(self, demo_runtime):
        """Every tload immediate must hold 4 * global site number."""
        module = demo_runtime.program.module
        for site, offset in module.bary_slots.items():
            raw = demo_runtime.memory.host_read(module.base + offset, 4)
            assert int.from_bytes(raw, "little") == 4 * site

    def test_tables_installed(self, demo_runtime):
        stats = demo_runtime.id_tables.stats()
        assert stats["targets"] > 0
        assert stats["branch_sites"] == \
            len(demo_runtime.program.module.aux.branch_sites)

    def test_program_runs(self, demo_runtime):
        result = demo_runtime.run()
        assert result.ok
        assert result.output.startswith(b"demo ")


class TestSyscalls:
    def test_exit_code(self):
        result = run_source("int main(void) { exit(7); return 0; }")
        assert result.exit_code == 7

    def test_write_collects_output(self):
        result = run_source(
            'int main(void) { write(1, "xyz", 3); return 0; }')
        assert result.output == b"xyz"

    def test_sbrk_grows_heap(self):
        result = run_source("""
            int main(void) {
                long a = __syscall(3, 64, 0, 0);
                long b = __syscall(3, 64, 0, 0);
                print_int(b - a);
                return 0;
            }
        """)
        assert result.output == b"64"

    def test_sbrk_exhaustion_returns_minus_one(self):
        result = run_source("""
            int main(void) {
                long r = __syscall(3, 0x40000000, 0, 0);
                print_int(r == -1 ? 1 : 0);
                return 0;
            }
        """)
        assert result.output == b"1"

    def test_time_returns_cycles(self):
        result = run_source("""
            int main(void) {
                long t0 = time_now();
                long t1 = time_now();
                print_int(t1 > t0 ? 1 : 0);
                return 0;
            }
        """)
        assert result.output == b"1"

    def test_unknown_syscall_rejected(self):
        result = run_source(
            "int main(void) { __syscall(999, 0, 0, 0); return 0; }")
        assert isinstance(result.fault, Exception) or not result.ok


class TestWxInvariant:
    def test_mprotect_wx_refused(self):
        source = """
            int main(void) {
                /* PROT_READ|PROT_WRITE|PROT_EXEC = 7 on the heap */
                long r = __syscall(9, 0x1400000, 4096, 7);
                return (int)r;
            }
        """
        result = run_source(source)
        assert isinstance(result.fault, WxViolation)

    def test_mprotect_code_region_refused(self):
        result = run_source("""
            int main(void) {
                long r = __syscall(9, 0x10000, 4096, 3); /* RW on code */
                print_int(r == -1 ? 1 : 0);
                return 0;
            }
        """)
        assert result.output == b"1"

    def test_mprotect_data_exec_refused(self):
        result = run_source("""
            int main(void) {
                long r = __syscall(9, 0x1400000, 4096, 5); /* R+X data */
                print_int(r == -1 ? 1 : 0);
                return 0;
            }
        """)
        assert result.output == b"1"

    def test_data_is_not_executable(self):
        """Jumping into writable data must fault, not execute."""
        result = run_source("""
            long buf[4];
            int main(void) {
                void (*f)(void) = (void (*)(void))(void *)buf;
                f();
                return 0;
            }
        """, mcfi=False)
        assert isinstance(result.fault, MemoryFault)

    def test_mcfi_blocks_data_jump_before_fetch(self):
        # A data-region target is outside the Tary table entirely: the
        # table read faults (the paper's fail-safe %gs segfault) before
        # any fetch from non-executable memory happens.
        result = run_source("""
            long buf[4];
            int main(void) {
                void (*f)(void) = (void (*)(void))(void *)buf;
                f();
                return 0;
            }
        """, mcfi=True)
        assert result.violation is not None or \
            isinstance(result.fault, MemoryFault)
        assert result.exit_code is None  # never completed


class TestThreads:
    SOURCE = """
        long counters[2];
        void worker(long index) {
            long i;
            for (i = 0; i < 50; i++) { counters[index] += 1; }
        }
        int main(void) {
            int t1 = thread_spawn(worker, 0);
            int t2 = thread_spawn(worker, 1);
            long spin = 0;
            while (counters[0] + counters[1] < 100 && spin < 200000) {
                spin++;
            }
            print_int(counters[0] + counters[1]);
            return 0;
        }
    """

    def test_threads_require_scheduled_mode(self):
        program = compile_and_link({"t": self.SOURCE}, mcfi=True)
        runtime = Runtime(program)
        result = runtime.run()
        assert not result.ok  # thread_spawn raises in fast mode

    def test_threads_run_interleaved(self):
        program = compile_and_link({"t": self.SOURCE}, mcfi=True)
        runtime = Runtime(program)
        result = runtime.run_scheduled(seed=5, burst=8)
        assert result.ok, result.violation or result.fault
        assert result.output == b"100"

    def test_thread_entry_is_type_checked(self):
        """A thread entry of the wrong type is caught by the CFI check
        in __thread_start's indirect call."""
        source = """
            void bad_entry(long a, long b) { }
            int main(void) {
                thread_spawn((void (*)(long))(void *)bad_entry, 1);
                sched_yield();
                return 0;
            }
        """
        program = compile_and_link({"t": source}, mcfi=True)
        runtime = Runtime(program)
        result = runtime.run_scheduled(seed=1, burst=4)
        assert result.violation is not None


class TestRunResult:
    def test_cycle_and_instruction_counts(self, demo_program):
        result = Runtime(demo_program).run()
        assert result.instructions > 0
        assert result.cycles > 0

    def test_fresh_runtime_per_run(self, demo_program):
        first = Runtime(demo_program).run()
        second = Runtime(demo_program).run()
        assert first.output == second.output
        assert first.cycles == second.cycles  # fully deterministic


class TestCodeSharing:
    """Paper Sec. 4: "code pages for applications and libraries can be
    shared among processes" because instrumentation is parameterized
    over the ID tables, not over embedded IDs."""

    def test_identical_code_bytes_across_processes(self, demo_program):
        first = Runtime(demo_program)
        second = Runtime(demo_program)
        module = demo_program.module
        code_a = first.memory.host_read(module.base, len(module.code))
        code_b = second.memory.host_read(module.base, len(module.code))
        assert code_a == code_b

    def test_same_code_different_policies(self, demo_program):
        """Two processes run the same bytes under different CFGs: the
        tables differ, the code does not (classic CFI cannot do this —
        its ECNs live in the code bytes)."""
        from repro.baselines.policies import bincfi_policy
        module = demo_program.module
        strict = Runtime(demo_program)
        coarse = Runtime(demo_program)
        policy = bincfi_policy(module.aux)
        coarse.id_tables.install(policy.tary_ecns, policy.bary_ecns)
        assert strict.memory.host_read(module.base, len(module.code)) == \
            coarse.memory.host_read(module.base, len(module.code))
        # and both processes still run the legal program fine
        assert strict.run().ok
        assert coarse.run().ok
        # but their installed policies differ
        assert strict.id_tables.tary_ecns != coarse.id_tables.tary_ecns
