// Regression: corpus-surfaced generator/harness invariant (PR 10
// triage, seeds 1012/1016).  Every function reachable through a
// `long(*)(long,long)` table or parameter must really have that
// signature — an arity-mismatched pointee is an MCFI type-class
// violation at the indirect call.  This pins the well-typed shape:
// table dispatch and pointer-parameter dispatch both check and pass.
// expect-exit: 0
// expect-output: 7
// expect-output: 12
// expect-output: 14
long add(long a, long b) { return a + b; }
long mul(long a, long b) { return a * b; }
long (*tab[2])(long, long) = {add, mul};

long via(long a, long b, long (*f)(long, long)) {
    return f(a, b) + f(b, a);
}

int main() {
    print_int(tab[0](3, 4));
    print_char(10);
    print_int(tab[1](3, 4));
    print_char(10);
    print_int(via(2, 5, add));
    print_char(10);
    return 0;
}
