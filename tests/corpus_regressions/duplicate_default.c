// Regression: PR 10 frontend hardening.
// Two default arms were accepted the same way duplicate case labels
// were; only one can run, and which one was a lowering accident.
// expect-error: duplicate default
int main() {
    switch (9) {
        default: print_int(1); break;
        default: print_int(2); break;
    }
    return 0;
}
