// Regression: PR 10 frontend hardening.
// Before the fix, duplicate case labels were accepted; which arm ran
// depended on the lowering strategy (jump table: last write wins,
// compare chain: first match wins) — a silent behavior fork between
// the dense and sparse switch paths.
// expect-error: duplicate case label
int main() {
    switch (1) {
        case 1: print_int(10); break;
        case 1: print_int(20); break;
    }
    return 0;
}
