// Regression: corpus-surfaced lowering subtlety (PR 10 triage).
// A statically-unsigned operand must flip `>>` to a logical shift
// and comparisons to unsigned — mid-expression, not just at stores.
// The oracle initially modeled values only and missed the static
// type's effect; this pins the compiled behavior on both shapes.
// expect-exit: 0
// expect-output: 15
// expect-output: -4
// expect-output: 1
// expect-output: 0
unsigned long u = 0;
long s = 0;

int main() {
    u = 0 - 1;
    s = -8;
    print_int(u >> 60);
    print_char(10);
    print_int(s >> 1);
    print_char(10);
    print_int((s >> 1) < 1);
    print_char(10);
    print_int(((unsigned long)s) < 1);
    print_char(10);
    return 0;
}
