// Regression: corpus miscompile, seeds 14/99 (PR 10 campaign).
// TinyC evaluates strictly left to right, callee designator
// included: the table index below must read `counter` BEFORE the
// argument call bumps it.  `_emit_call` used to lower arguments
// first, so the compiled program dispatched through tab[1] while
// the oracle (and the language rule) picked tab[0].
// expect-exit: 0
// expect-output: 0
long counter = 0;

long zero(long a, long b) { return 0; }
long one(long a, long b) { return 1; }
long (*tab[2])(long, long) = {zero, one};

long bump(long a) {
    counter = counter + 1;
    return a;
}

int main(void) {
    print_int(tab[(counter) & 1](bump(1), 1));
    print_char(10);
    return 0;
}
