// Regression: PR 10 frontend hardening.
// Before the fix, initializer words past the array's extent were
// silently emitted into the data image (offsets 16 and 24 of a
// 16-byte object), clobbering whatever the linker placed next.
// expect-error: too many initializers
long a[2] = {1, 2, 3, 4};
long b = 7;

int main() {
    print_int(b);
    print_char(10);
    return 0;
}
