"""Tests for the repro.vm.dispatch fast-path plane (PR 5).

The dispatch plane replaces the monolithic ``if/elif`` interpreter with
per-opcode closures, a decoded basic-block cache and fused check
transactions.  The original chain survives as ``CPU.step_reference``;
every test here holds the two to the same architectural observables:
registers, flags, ``rip``, ``cycles``, ``instructions``, ``tx_checks``,
output bytes and fault identity.

Also hosts the regression tests for the PR 5 interpreter-semantics
bugfix batch that lives on the same paths: FCMP_RR NaN flags, torn
16-bit stores at page boundaries, and block/closure-cache invalidation
when code is re-mapped under a previously executed address.
"""

import struct

import pytest

from repro.errors import CfiViolation, MemoryFault, VMError
from repro.isa.assembler import AsmInstr, Label, LabelRef, assemble
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.vm.cpu import CPU, ProgramExit
from repro.vm.dispatch import DispatchCache
from repro.vm.memory import Memory, PAGE_SIZE, TableMemory
from repro.vm.trace import BranchTracer

CODE = 0x10000
DATA = 0x20000
STACK = 0x30000

_MASK = 0xFFFFFFFFFFFFFFFF


def _bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


NAN = _bits(float("nan"))


def make_cpu(code: bytes, tables=None, icache=None, dispatch_cache=None,
             data_pages=1):
    """Map ``code`` at CODE plus a data and a stack page; return a CPU."""
    mem = Memory()
    mem.map(CODE, ((len(code) // PAGE_SIZE) + 1) * PAGE_SIZE,
            readable=True, executable=True)
    mem.host_write(CODE, code)
    mem.map(DATA, data_pages * PAGE_SIZE, readable=True, writable=True)
    mem.map(STACK, PAGE_SIZE, readable=True, writable=True)

    def handler(cpu):
        raise ProgramExit(cpu.regs[Reg.RAX] & 0xFF)

    cpu = CPU(mem, tables if tables is not None else TableMemory(),
              syscall_handler=handler, icache=icache,
              dispatch_cache=dispatch_cache)
    cpu.rip = CODE
    cpu.regs[Reg.RSP] = STACK + PAGE_SIZE - 16
    return cpu


def run_both(items, regs=None, max_steps=10_000, data_pages=1):
    """Run one program through dispatch and through the reference chain.

    Returns ``(dispatch_cpu, reference_cpu, dispatch_outcome,
    reference_outcome)`` where an outcome is the exit code or the raised
    exception instance.
    """
    code = assemble(list(items) + [AsmInstr(Op.SYSCALL, ())],
                    base=CODE).code

    def execute(reference):
        cpu = make_cpu(code, data_pages=data_pages)
        if reference:
            cpu.step = cpu.step_reference
        for index, value in (regs or {}).items():
            cpu.regs[index] = value & _MASK
        try:
            outcome = cpu.run(max_steps=max_steps)
        except Exception as exc:  # noqa: BLE001 - compared structurally
            outcome = exc
        return cpu, outcome

    fast_cpu, fast_out = execute(reference=False)
    ref_cpu, ref_out = execute(reference=True)
    return fast_cpu, ref_cpu, fast_out, ref_out


def assert_identical(fast_cpu, ref_cpu, fast_out, ref_out):
    if isinstance(ref_out, Exception):
        assert type(fast_out) is type(ref_out), (fast_out, ref_out)
    else:
        assert fast_out == ref_out
    assert fast_cpu.snapshot() == ref_cpu.snapshot()
    assert fast_cpu.tx_checks == ref_cpu.tx_checks


class TestDispatchConformance:
    """The dispatch plane is bit-identical to ``step_reference``."""

    def test_straightline_arithmetic(self):
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RAX, 7)),
            AsmInstr(Op.MOV_RI, (Reg.RBX, 5)),
            AsmInstr(Op.IMUL_RR, (Reg.RAX, Reg.RBX)),
            AsmInstr(Op.ADD_RI, (Reg.RAX, 1)),
            AsmInstr(Op.NEG, (Reg.RBX,)),
            AsmInstr(Op.XOR_RI, (Reg.RBX, 0xFF)),
            AsmInstr(Op.SHL_RI, (Reg.RCX, 3)),
        ]
        assert_identical(*run_both(items, regs={Reg.RCX: 9}))

    def test_memory_and_stack_traffic(self):
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RBX, DATA)),
            AsmInstr(Op.MOV_RI, (Reg.RAX, 0x1122334455667788)),
            AsmInstr(Op.STORE64, (Reg.RBX, 0, Reg.RAX)),
            AsmInstr(Op.STORE16, (Reg.RBX, 16, Reg.RAX)),
            AsmInstr(Op.PUSH, (Reg.RAX,)),
            AsmInstr(Op.POP, (Reg.RCX,)),
            AsmInstr(Op.LOAD16, (Reg.RDX, Reg.RBX, 16)),
            AsmInstr(Op.LOAD64, (Reg.RSI, Reg.RBX, 0)),
        ]
        assert_identical(*run_both(items))

    def test_branches_and_calls(self):
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RAX, 0)),
            AsmInstr(Op.MOV_RI, (Reg.RBX, 5)),
            Label("loop"),
            AsmInstr(Op.ADD_RI, (Reg.RAX, 3)),
            AsmInstr(Op.SUB_RI, (Reg.RBX, 1)),
            AsmInstr(Op.CMP_RI, (Reg.RBX, 0)),
            AsmInstr(Op.JNE, (LabelRef("loop"),)),
            AsmInstr(Op.CALL, (LabelRef("fn"),)),
            AsmInstr(Op.JMP, (LabelRef("done"),)),
            Label("fn"),
            AsmInstr(Op.ADD_RI, (Reg.RAX, 100)),
            AsmInstr(Op.RET, ()),
            Label("done"),
        ]
        fast_cpu, ref_cpu, fast_out, ref_out = run_both(items)
        assert_identical(fast_cpu, ref_cpu, fast_out, ref_out)
        assert fast_cpu.regs[Reg.RAX] == 115

    def test_faulting_load_leaves_identical_state(self):
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RAX, 1)),
            AsmInstr(Op.MOV_RI, (Reg.RBX, 0x900000)),
            AsmInstr(Op.ADD_RI, (Reg.RAX, 1)),
            AsmInstr(Op.LOAD64, (Reg.RCX, Reg.RBX, 0)),  # unmapped
            AsmInstr(Op.ADD_RI, (Reg.RAX, 1)),           # never reached
        ]
        fast_cpu, ref_cpu, fast_out, ref_out = run_both(items)
        assert isinstance(ref_out, MemoryFault)
        assert_identical(fast_cpu, ref_cpu, fast_out, ref_out)
        # rip names the faulting instruction, counters include it
        assert fast_cpu.rip == ref_cpu.rip
        assert fast_cpu.instructions == 4

    def test_division_fault_mid_block(self):
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RAX, 10)),
            AsmInstr(Op.MOV_RI, (Reg.RBX, 0)),
            AsmInstr(Op.IDIV_RR, (Reg.RAX, Reg.RBX)),
        ]
        assert_identical(*run_both(items))

    def test_step_limit_raises_at_same_instruction(self):
        items = [
            Label("loop"),
            AsmInstr(Op.ADD_RI, (Reg.RAX, 1)),
            AsmInstr(Op.JMP, (LabelRef("loop"),)),
        ]
        for limit in (1, 2, 3, 64, 65, 129, 1000):
            fast_cpu, ref_cpu, fast_out, ref_out = run_both(
                items, max_steps=limit)
            assert isinstance(ref_out, VMError)
            assert_identical(fast_cpu, ref_cpu, fast_out, ref_out)

    def test_run_off_end_decode_fault(self):
        # Straight-line code that runs past the last assembled byte
        # into zero padding: the dispatch plane pre-decodes ahead, but
        # the decode fault must only fire when execution actually
        # reaches the undecodable address, charging no counters for it.
        from repro.errors import InvalidInstruction

        items = [AsmInstr(Op.ADD_RI, (Reg.RAX, 1))] * 3
        code = assemble(items, base=CODE).code

        def execute(reference):
            cpu = make_cpu(code)
            if reference:
                cpu.step = cpu.step_reference
            try:
                cpu.run(max_steps=100)
            except (MemoryFault, InvalidInstruction) as fault:
                return cpu, fault
            raise AssertionError("expected a fetch fault")

        fast_cpu, fast_fault = execute(False)
        ref_cpu, ref_fault = execute(True)
        assert type(fast_fault) is type(ref_fault)
        assert fast_cpu.snapshot() == ref_cpu.snapshot()
        assert fast_cpu.instructions == 3

    def test_demo_program_identical(self, demo_program):
        from repro.runtime.runtime import Runtime

        fast = Runtime(demo_program)
        fast_result = fast.run()

        ref = Runtime(demo_program)
        cpu = ref.main_cpu()
        cpu.step = cpu.step_reference
        ref_result = ref.run()

        assert fast_result.ok and ref_result.ok
        assert fast_result.exit_code == ref_result.exit_code
        assert fast_result.output == ref_result.output
        assert fast_result.cycles == ref_result.cycles
        assert fast_result.instructions == ref_result.instructions
        assert fast_result.tx_checks == ref_result.tx_checks

    @pytest.mark.parametrize("name", ["libquantum", "mcf"])
    def test_workload_identical(self, name):
        from repro.experiments import compiled
        from repro.runtime.runtime import Runtime

        program = compiled(name, "x64", mcfi=True)
        fast_result = Runtime(program).run()
        ref = Runtime(program)
        cpu = ref.main_cpu()
        cpu.step = cpu.step_reference
        ref_result = ref.run()
        assert fast_result.ok and ref_result.ok
        assert (fast_result.exit_code, fast_result.output,
                fast_result.cycles, fast_result.instructions,
                fast_result.tx_checks) == \
               (ref_result.exit_code, ref_result.output,
                ref_result.cycles, ref_result.instructions,
                ref_result.tx_checks)

    def test_violation_identical(self, demo_program):
        """A CFI violation (stale fptr) reports the same rip/target."""
        from repro.runtime.runtime import Runtime

        def corrupted(reference):
            runtime = Runtime(demo_program)
            cpu = runtime.main_cpu()
            if reference:
                cpu.step = cpu.step_reference
            # Corrupt the first Bary entry after a few checks so a
            # later check transaction mismatches.
            result = runtime.run()
            return result

        # Plain runs agree; now force a mismatch through table state.
        fast = corrupted(False)
        ref = corrupted(True)
        assert fast.status == ref.status


class TestFcmpNanSemantics:
    """PR 5 bugfix: unordered FCMP must behave like x86 ucomisd
    (ZF=CF=1, SF=OF=0), not like 'greater'."""

    def _flags_after(self, left_bits, right_bits, reference):
        items = [AsmInstr(Op.FCMP_RR, (Reg.RAX, Reg.RBX))]
        code = assemble(items + [AsmInstr(Op.SYSCALL, ())], base=CODE).code
        cpu = make_cpu(code)
        if reference:
            cpu.step = cpu.step_reference
        cpu.regs[Reg.RAX] = left_bits
        cpu.regs[Reg.RBX] = right_bits
        cpu.run(max_steps=8)
        return cpu.zf, cpu.lt, cpu.ltu

    @pytest.mark.parametrize("reference", [False, True],
                             ids=["dispatch", "reference"])
    def test_unordered_sets_zf_and_cf(self, reference):
        for left, right in ((NAN, _bits(1.0)), (_bits(1.0), NAN),
                            (NAN, NAN)):
            zf, lt, ltu = self._flags_after(left, right, reference)
            assert (zf, lt, ltu) == (True, False, True)

    @pytest.mark.parametrize("reference", [False, True],
                             ids=["dispatch", "reference"])
    def test_ordered_flags_unchanged(self, reference):
        assert self._flags_after(_bits(2.0), _bits(3.0), reference) == \
            (False, True, True)
        assert self._flags_after(_bits(3.0), _bits(2.0), reference) == \
            (False, False, False)
        assert self._flags_after(_bits(2.0), _bits(2.0), reference) == \
            (True, False, False)

    #: (opcode, taken-on-unordered?) for every float-conditional jump,
    #: per ucomisd: ZF=CF=1 means je/jb/jbe taken, jne/jae/jl/jg not,
    #: jle/jge taken (jle via ZF, jge via SF=OF).
    JUMPS = [
        (Op.JE, True),
        (Op.JNE, False),
        (Op.JB, True),
        (Op.JAE, False),
        (Op.JL, False),
        (Op.JLE, True),
        (Op.JG, False),
        (Op.JGE, True),
    ]

    @pytest.mark.parametrize("opcode,taken", JUMPS,
                             ids=[op.name for op, _ in JUMPS])
    def test_every_float_conditional_jump_on_nan(self, opcode, taken):
        items = [
            AsmInstr(Op.FCMP_RR, (Reg.RAX, Reg.RBX)),
            AsmInstr(opcode, (LabelRef("taken"),)),
            AsmInstr(Op.MOV_RI, (Reg.RCX, 1)),
            AsmInstr(Op.JMP, (LabelRef("out"),)),
            Label("taken"),
            AsmInstr(Op.MOV_RI, (Reg.RCX, 2)),
            Label("out"),
        ]
        fast_cpu, ref_cpu, fast_out, ref_out = run_both(
            items, regs={Reg.RAX: NAN, Reg.RBX: _bits(1.0)})
        assert_identical(fast_cpu, ref_cpu, fast_out, ref_out)
        assert fast_cpu.regs[Reg.RCX] == (2 if taken else 1)

    def test_nan_comparison_is_not_greater(self):
        """The old bug: NaN left all flags false, so JG was taken."""
        fast_cpu, _, _, _ = run_both([
            AsmInstr(Op.FCMP_RR, (Reg.RAX, Reg.RBX)),
            AsmInstr(Op.JG, (LabelRef("greater"),)),
            AsmInstr(Op.MOV_RI, (Reg.RDX, 0)),
            AsmInstr(Op.JMP, (LabelRef("out"),)),
            Label("greater"),
            AsmInstr(Op.MOV_RI, (Reg.RDX, 1)),
            Label("out"),
        ], regs={Reg.RAX: NAN, Reg.RBX: _bits(0.0)})
        assert fast_cpu.regs[Reg.RDX] == 0


class TestTornStore16:
    """PR 5 bugfix: STORE16 must validate both byte addresses before
    mutating memory — a page-boundary fault may not leave one byte."""

    BOUNDARY = DATA + PAGE_SIZE - 1  # low byte on page 1, high on page 2

    def _cpu_with_readonly_second_page(self, items, regs, reference):
        code = assemble(list(items) + [AsmInstr(Op.SYSCALL, ())],
                        base=CODE).code
        mem = Memory()
        mem.map(CODE, PAGE_SIZE, readable=True, executable=True)
        mem.host_write(CODE, code)
        mem.map(DATA, PAGE_SIZE, readable=True, writable=True)
        mem.map(DATA + PAGE_SIZE, PAGE_SIZE, readable=True, writable=False)
        mem.map(STACK, PAGE_SIZE, readable=True, writable=True)
        cpu = CPU(mem, TableMemory(),
                  syscall_handler=lambda c: (_ for _ in ()).throw(
                      ProgramExit(0)))
        if reference:
            cpu.step = cpu.step_reference
        cpu.rip = CODE
        cpu.regs[Reg.RSP] = STACK + PAGE_SIZE - 16
        for index, value in regs.items():
            cpu.regs[index] = value & _MASK
        return cpu

    @pytest.mark.parametrize("reference", [False, True],
                             ids=["dispatch", "reference"])
    def test_store16_page_straddle_is_atomic(self, reference):
        cpu = self._cpu_with_readonly_second_page(
            [AsmInstr(Op.STORE16, (Reg.RBX, 0, Reg.RAX))],
            {Reg.RBX: self.BOUNDARY, Reg.RAX: 0xBBAA}, reference)
        # Pre-fill the writable low byte so a torn store is detectable.
        cpu.memory.write_u8(self.BOUNDARY, 0x55)
        with pytest.raises(MemoryFault) as err:
            cpu.run(max_steps=4)
        assert err.value.address == self.BOUNDARY + 1
        # The bug left 0xAA here after the fault.
        assert cpu.memory.read_u8(self.BOUNDARY) == 0x55

    @pytest.mark.parametrize("reference", [False, True],
                             ids=["dispatch", "reference"])
    def test_load16_page_straddle_fault_address(self, reference):
        mem_items = [AsmInstr(Op.LOAD16, (Reg.RCX, Reg.RBX, 0))]
        code = assemble(mem_items + [AsmInstr(Op.SYSCALL, ())],
                        base=CODE).code
        mem = Memory()
        mem.map(CODE, PAGE_SIZE, readable=True, executable=True)
        mem.host_write(CODE, code)
        mem.map(DATA, PAGE_SIZE, readable=True, writable=True)
        # second page unmapped: high byte unreadable
        cpu = CPU(mem, TableMemory())
        if reference:
            cpu.step = cpu.step_reference
        cpu.rip = CODE
        cpu.regs[Reg.RBX] = self.BOUNDARY
        with pytest.raises(MemoryFault) as err:
            cpu.run(max_steps=4)
        assert err.value.address == self.BOUNDARY + 1
        assert cpu.regs[Reg.RCX] == 0  # no partial result

    def test_store16_load16_roundtrip_across_pages(self):
        """Both pages writable: the straddling access works and agrees
        with the reference interpreter."""
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RBX, self.BOUNDARY)),
            AsmInstr(Op.MOV_RI, (Reg.RAX, 0xBEEF)),
            AsmInstr(Op.STORE16, (Reg.RBX, 0, Reg.RAX)),
            AsmInstr(Op.LOAD16, (Reg.RCX, Reg.RBX, 0)),
        ]
        fast_cpu, ref_cpu, fast_out, ref_out = run_both(items,
                                                        data_pages=2)
        assert_identical(fast_cpu, ref_cpu, fast_out, ref_out)
        assert fast_cpu.regs[Reg.RCX] == 0xBEEF


def check_sequence(bary_index=0):
    """The instrumenter's five-instruction check-transaction Try block,
    followed by the Check fallback (HLT)."""
    return [
        Label("try"),
        AsmInstr(Op.TLOAD_RI, (Reg.RDI, bary_index)),
        AsmInstr(Op.TLOAD_RR, (Reg.RSI, Reg.RCX)),
        AsmInstr(Op.CMP_RR, (Reg.RDI, Reg.RSI)),
        AsmInstr(Op.JNE, (LabelRef("check"),)),
        AsmInstr(Op.JMP_R, (Reg.RCX,)),
        Label("check"),
        AsmInstr(Op.HLT, ()),
    ]


class TestFusedCheckTransaction:
    """The fused macro-op: identical observables, generation-stamped
    branch-ID caching invalidated by every table update."""

    def _program(self):
        # Target lands after the check block; give it a valid Tary ID.
        items = check_sequence() + [
            Label("target"),
            AsmInstr(Op.MOV_RI, (Reg.RAX, 0)),
            AsmInstr(Op.SYSCALL, ()),
        ]
        out = assemble(items, base=CODE)
        target = out.labels["target"]
        return out.code, target

    def _run(self, code, target, tables, icache=None, cache=None,
             reference=False):
        cpu = make_cpu(code, tables=tables, icache=icache,
                       dispatch_cache=cache)
        if reference:
            cpu.step = cpu.step_reference
        cpu.regs[Reg.RCX] = target
        try:
            exit_code = cpu.run(max_steps=2000)
            return cpu, exit_code
        except CfiViolation as violation:
            return cpu, violation

    def test_fused_match_identical_to_reference(self):
        code, target = self._program()
        tables_a = TableMemory()
        tables_a.write_bary(0, 0x41)
        tables_a.write_tary(target, 0x41)
        fast_cpu, fast_out = self._run(code, target, tables_a)
        tables_b = TableMemory()
        tables_b.write_bary(0, 0x41)
        tables_b.write_tary(target, 0x41)
        ref_cpu, ref_out = self._run(code, target, tables_b,
                                     reference=True)
        assert fast_out == ref_out == 0
        assert fast_cpu.snapshot() == ref_cpu.snapshot()
        assert fast_cpu.tx_checks == ref_cpu.tx_checks == 1
        assert fast_cpu.dispatch_cache.fused_sites == 1

    def test_fused_mismatch_identical_to_reference(self):
        code, target = self._program()

        def tables_with(branch, tgt):
            tables = TableMemory()
            tables.write_bary(0, branch)
            tables.write_tary(target, tgt)
            return tables

        fast_cpu, fast_out = self._run(code, target,
                                       tables_with(0x41, 0x99))
        ref_cpu, ref_out = self._run(code, target,
                                     tables_with(0x41, 0x99),
                                     reference=True)
        assert isinstance(fast_out, CfiViolation)
        assert isinstance(ref_out, CfiViolation)
        assert fast_cpu.snapshot() == ref_cpu.snapshot()
        assert fast_cpu.tx_checks == ref_cpu.tx_checks == 1

    def test_generation_stamp_invalidates_cached_branch_id(self):
        """An update transaction's table stores must defeat the fused
        op's cached Bary read — a stale cached ID would either forge or
        spuriously halt after re-instrumentation."""
        code, target = self._program()
        tables = TableMemory()
        tables.write_bary(0, 0x41)
        tables.write_tary(target, 0x41)
        icache, cache = {}, DispatchCache()

        cpu, out = self._run(code, target, tables, icache, cache)
        assert out == 0
        assert cache.fused_sites == 1

        # Re-ID the world, as an UpdateTransaction would: both tables
        # move to a new ID.  write_tary/write_bary bump `generation`.
        tables.write_bary(0, 0x99)
        tables.write_tary(target, 0x99)
        cpu2, out2 = self._run(code, target, tables, icache, cache)
        assert out2 == 0, "fused path served a stale branch ID"
        assert cpu2.tx_checks == 1

        # And a divergent update (only Tary moves) must now *halt*.
        tables.write_tary(target, 0x123)
        cpu3, out3 = self._run(code, target, tables, icache, cache)
        assert isinstance(out3, CfiViolation)

    def test_note_update_bumps_generation(self):
        from repro.core.tables import IdTables

        tables = IdTables(TableMemory())
        tables.install({0x1000: 1}, {0: 1})
        before = tables.memory.generation
        tables.note_update()
        assert tables.memory.generation > before

    def test_fused_counts_each_attempt(self):
        """tx_checks counts once per fused execution, like TLOAD_RI."""
        code, target = self._program()
        tables = TableMemory()
        tables.write_bary(0, 0x41)
        tables.write_tary(target, 0x41)
        icache, cache = {}, DispatchCache()
        for expected in (1, 1, 1):
            cpu, out = self._run(code, target, tables, icache, cache)
            assert out == 0
            assert cpu.tx_checks == expected

    def test_partial_template_not_fused(self):
        """A TLOAD_RI not followed by the full Try block executes
        unfused and still matches the reference."""
        items = [
            AsmInstr(Op.TLOAD_RI, (Reg.RDI, 0)),
            AsmInstr(Op.ADD_RI, (Reg.RDI, 1)),
        ]
        fast_cpu, ref_cpu, fast_out, ref_out = run_both(items)
        assert_identical(fast_cpu, ref_cpu, fast_out, ref_out)
        assert fast_cpu.dispatch_cache.fused_sites == 0


class TestBlockCacheInvalidation:
    """Re-mapping or JIT-installing code at a previously executed
    address must never execute stale decoded entries."""

    def _mov_exit(self, value):
        return assemble([
            AsmInstr(Op.MOV_RI, (Reg.RAX, value)),
            AsmInstr(Op.SYSCALL, ()),
        ], base=CODE).code

    def test_invalidate_range_drops_closures_and_blocks(self):
        code_v1 = self._mov_exit(1)
        icache, cache = {}, DispatchCache()
        cpu = make_cpu(code_v1, icache=icache, dispatch_cache=cache)
        assert cpu.run(max_steps=2000) == 1
        assert cache.blocks and cache.closures

        # JIT-install new code over the same address range.
        code_v2 = self._mov_exit(2)
        cpu.memory.host_write(CODE, code_v2)
        for address in [a for a in icache
                        if CODE <= a < CODE + len(code_v1)]:
            del icache[address]
        cache.invalidate_range(CODE, CODE + len(code_v1))
        assert not cache.blocks and not cache.closures

        cpu2 = make_cpu(code_v2, icache=icache, dispatch_cache=cache)
        cpu2.memory = cpu.memory  # same address space
        cpu2.rip = CODE
        assert cpu2.run(max_steps=2000) == 2

    def test_stale_entries_without_invalidation_would_win(self):
        """Sanity check on the hazard itself: with the icache scrubbed
        but the dispatch cache left stale, the old closures execute —
        which is exactly why the linker must invalidate both."""
        code_v1 = self._mov_exit(1)
        icache, cache = {}, DispatchCache()
        cpu = make_cpu(code_v1, icache=icache, dispatch_cache=cache)
        assert cpu.run(max_steps=2000) == 1

        code_v2 = self._mov_exit(2)
        cpu.memory.host_write(CODE, code_v2)
        icache.clear()  # icache scrubbed, dispatch cache NOT
        cpu.rip = CODE
        assert cpu.run(max_steps=2000) == 1  # stale block still wins

    def test_block_overlap_invalidation_covers_interior(self):
        """Invalidating a range inside a block drops the whole block,
        not only blocks whose entry falls inside the range."""
        items = [AsmInstr(Op.ADD_RI, (Reg.RAX, 1))] * 8 + [
            AsmInstr(Op.SYSCALL, ())]
        code = assemble(items, base=CODE).code
        icache, cache = {}, DispatchCache()
        cpu = make_cpu(code, icache=icache, dispatch_cache=cache)
        cpu.run(max_steps=2000)
        assert CODE in cache.blocks
        # invalidate one byte in the middle of the block's span
        middle = CODE + len(code) // 2
        cache.invalidate_range(middle, middle + 1)
        assert CODE not in cache.blocks

    def test_dlclose_leaves_no_stale_decoded_code(self):
        """After the demo dlopen/dlclose program runs, no cached block
        or closure survives on a page that is no longer executable."""
        from repro.linker.dynamic_linker import DynamicLinker
        from repro.runtime.runtime import Runtime
        from repro.toolchain import compile_and_link, compile_module

        source = r"""
            int main(void) {
                long h = dlopen("plugin");
                long sym = dlsym(h, "libfn");
                int (*f)(int) = (int (*)(int))sym;
                print_int(f(10));
                dlclose(h);
                return 0;
            }
        """
        program = compile_and_link({"main": source}, mcfi=True)
        runtime = Runtime(program)
        linker = DynamicLinker(runtime)
        linker.register("plugin", compile_module(
            "int libfn(int x) { return x * 3 + 1; }", name="plugin"))
        result = runtime.run()
        assert result.output.startswith(b"31")
        memory = runtime.memory
        for address in runtime.dispatch_cache.closures:
            assert memory.is_executable(address)
        for block in runtime.dispatch_cache.blocks.values():
            assert memory.is_executable(block.entry)
        for address in runtime.icache:
            assert memory.is_executable(address)

    def test_reload_after_unload_executes_new_code(self):
        """dlclose + re-register + dlopen: calling through the fresh
        module must execute the *new* body, through the dispatch plane."""
        from repro.linker.dynamic_linker import DynamicLinker
        from repro.runtime.runtime import Runtime
        from repro.toolchain import compile_and_link, compile_module

        source = r"""
            int main(void) {
                long h = dlopen("plugin");
                int (*f)(int) = (int (*)(int))dlsym(h, "libfn");
                print_int(f(10));
                print_char(' ');
                dlclose(h);
                long h2 = dlopen("plugin");
                int (*g)(int) = (int (*)(int))dlsym(h2, "libfn");
                print_int(g(10));
                return 0;
            }
        """
        program = compile_and_link({"main": source}, mcfi=True)
        runtime = Runtime(program)
        linker = DynamicLinker(runtime)
        plugin_v1 = compile_module(
            "int libfn(int x) { return x * 3 + 1; }", name="plugin")
        plugin_v2 = compile_module(
            "int libfn(int x) { return x + 1000; }", name="plugin2")
        versions = [plugin_v1, plugin_v2]

        original_dlopen = linker.dlopen

        def swapping_dlopen(name, *args, **kwargs):
            linker.registry[name] = versions.pop(0)
            return original_dlopen(name, *args, **kwargs)

        linker.dlopen = swapping_dlopen
        result = runtime.run()
        assert result.ok, (result.violation, result.fault)
        assert result.output == b"31 1010"


class TestTracerInteraction:
    """Instance-level step hooks force the per-instruction path and
    detach cleanly back to block dispatch."""

    def test_tracer_attach_detach_restores_block_dispatch(self):
        code = assemble([
            AsmInstr(Op.MOV_RI, (Reg.RAX, 0)),
            AsmInstr(Op.SYSCALL, ()),
        ], base=CODE).code
        cpu = make_cpu(code)
        assert "step" not in cpu.__dict__
        tracer = BranchTracer(cpu)
        assert "step" in cpu.__dict__
        tracer.detach()
        assert "step" not in cpu.__dict__

    def test_traced_run_matches_untraced_counters(self, demo_program):
        from repro.runtime.runtime import Runtime

        untraced = Runtime(demo_program).run()
        runtime = Runtime(demo_program)
        tracer = BranchTracer(runtime.main_cpu())
        traced = runtime.run()
        assert traced.ok and untraced.ok
        assert (traced.cycles, traced.instructions, traced.tx_checks) == \
            (untraced.cycles, untraced.instructions, untraced.tx_checks)
        assert len(tracer.events) > 0

    def test_nested_tracer_detach_preserves_outer_hook(self):
        code = assemble([AsmInstr(Op.SYSCALL, ())], base=CODE).code
        cpu = make_cpu(code)
        outer = BranchTracer(cpu)
        inner = BranchTracer(cpu)
        inner.detach()
        assert cpu.step == outer._traced_step
        outer.detach()
        assert "step" not in cpu.__dict__
