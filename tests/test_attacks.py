"""Tests for the attack suite: gadgets, hijacks, ROP, table tampering."""

import pytest

from repro.attacks.gadgets import (
    GADGET_ENDS,
    analyze_image,
    find_gadgets,
    gadget_at,
    unique_gadgets,
)
from repro.attacks.hijack import fptr_to_execve, return_to_secret
from repro.attacks.rop import compare_schemes
from repro.isa.encoding import encode_all
from repro.isa.instructions import Instruction, Op


class TestGadgetScanner:
    def test_gadgets_end_in_indirect_branch(self, bench_program):
        module = bench_program["native"].module
        gadgets = find_gadgets(module.code[:4096], base=module.base,
                               depth=4)
        assert gadgets
        for gadget in gadgets[:50]:
            last = gadget.text[-1]
            assert last.startswith(("ret", "jmp %", "call %")), last

    def test_direct_branch_breaks_gadget(self):
        code = encode_all([Instruction(Op.JMP, (0,)),
                           Instruction(Op.RET, ())])
        assert gadget_at(code, 0) is None       # starts with direct jmp
        assert gadget_at(code, 5) == ("ret",)   # the ret alone

    def test_mid_instruction_gadget_found(self):
        # MOV_RI with an immediate whose bytes decode as RET.
        code = encode_all([Instruction(Op.MOV_RI, (0, int(Op.RET)))])
        gadgets = find_gadgets(code)
        addresses = {g.address for g in gadgets}
        assert 2 in addresses  # inside the mov's immediate field

    def test_depth_limit(self):
        instrs = [Instruction(Op.NOP, ())] * 10 + [Instruction(Op.RET, ())]
        code = encode_all(instrs)
        assert gadget_at(code, 0, depth=5) is None
        assert gadget_at(code, 0, depth=11) is not None

    def test_unique_deduplicates_by_content(self):
        code = encode_all([Instruction(Op.RET, ()),
                           Instruction(Op.RET, ())])
        gadgets = find_gadgets(code)
        assert len(gadgets) == 2
        assert len(unique_gadgets(gadgets)) == 1

    def test_report_elimination_rate(self):
        code = encode_all([Instruction(Op.NOP, ()),
                           Instruction(Op.RET, ())])
        unrestricted = analyze_image(code, 0)
        assert unrestricted.elimination_rate == 0.0
        restricted = analyze_image(code, 0, permitted_targets=set())
        assert restricted.elimination_rate == 1.0


class TestGadgetElimination:
    def test_mcfi_eliminates_most_gadgets(self, bench_program):
        from repro.cfg.generator import generate_cfg
        hardened = bench_program["mcfi"]
        cfg = generate_cfg(hardened.module.aux)
        report = analyze_image(hardened.module.code, hardened.module.base,
                               permitted_targets=set(cfg.tary_ecns),
                               depth=4)
        assert report.unique_total > 0
        assert report.elimination_rate > 0.9  # paper: ~96%


class TestHijacks:
    @pytest.fixture(scope="class")
    def fptr_outcomes(self):
        return fptr_to_execve()

    def test_native_is_hijacked(self, fptr_outcomes):
        assert fptr_outcomes["native"].hijacked
        assert not fptr_outcomes["native"].blocked

    def test_coarse_cfi_is_hijacked(self, fptr_outcomes):
        """The paper's point: execve is a function entry, so binCFI
        permits the jump; MCFI's type matching does not."""
        assert fptr_outcomes["binCFI"].hijacked
        assert not fptr_outcomes["binCFI"].blocked

    def test_mcfi_blocks_type_mismatch(self, fptr_outcomes):
        assert fptr_outcomes["MCFI"].blocked
        assert not fptr_outcomes["MCFI"].hijacked
        assert "mismatch" in fptr_outcomes["MCFI"].detail

    def test_return_hijack(self):
        outcomes = return_to_secret()
        assert outcomes["native"].hijacked
        assert outcomes["MCFI"].blocked
        assert outcomes["binCFI"].blocked  # entries are not retsites


class TestRop:
    def test_pivot_blocked_under_mcfi_only(self):
        native, mcfi = compare_schemes(seed=3)
        assert native.scheme == "native"
        assert native.pivoted and not native.blocked
        assert mcfi.blocked and not mcfi.pivoted


class TestTableProtection:
    def test_sandboxed_code_cannot_reach_tables(self, demo_program):
        """No store instruction in an instrumented module can write the
        table region: the verifier enforces masked addresses and the
        table region is not part of the sandboxed address space at all.
        Corollary: running the whole demo program never changes a
        single installed ID."""
        from repro.runtime.runtime import Runtime
        runtime = Runtime(demo_program)
        before = bytes(runtime.tables.tary[:4096])
        result = runtime.run()
        assert result.ok
        after = bytes(runtime.tables.tary[:4096])
        assert before == after
