"""Tests for .mcfo object files and the command-line tools."""

import pytest

from repro.module import objectfile
from repro.module.objectfile import ObjectFileError
from repro.toolchain import compile_module

SOURCE = """
    long triple(long x) { return 3 * x; }
    long (*slot)(long) = triple;
    int main(void) { print_int(slot(14)); return 0; }
"""


@pytest.fixture()
def raw_module():
    return compile_module(SOURCE, name="objtest")


class TestObjectFiles:
    def test_roundtrip_in_memory(self, raw_module):
        blob = objectfile.dumps(raw_module)
        loaded = objectfile.loads(blob)
        assert loaded.name == raw_module.name
        assert loaded.arch == raw_module.arch
        assert set(loaded.functions) == set(raw_module.functions)
        assert loaded.imports == raw_module.imports
        assert loaded.taken_names == raw_module.taken_names

    def test_roundtrip_on_disk(self, raw_module, tmp_path):
        path = objectfile.save(raw_module, tmp_path / "objtest.mcfo")
        loaded = objectfile.load(path)
        assert loaded.name == "objtest"

    def test_loaded_object_links_and_runs(self, raw_module, tmp_path):
        """Instrument-once-reuse-anywhere: a module loaded from disk is
        linkable like a freshly compiled one."""
        from repro.linker.static_linker import link
        from repro.runtime.runtime import Runtime
        from repro.workloads.libc import LIBC_SOURCE
        path = objectfile.save(raw_module, tmp_path / "m.mcfo")
        loaded = objectfile.load(path)
        libc = compile_module(LIBC_SOURCE, name="libc")
        program = link([loaded, libc], mcfi=True)
        result = Runtime(program, verify=True).run()
        assert result.ok and result.output == b"42"

    def test_bad_magic_rejected(self):
        with pytest.raises(ObjectFileError, match="magic"):
            objectfile.loads(b"NOTANOBJ" + b"\x00" * 64)

    def test_truncated_rejected(self):
        with pytest.raises(ObjectFileError, match="truncated"):
            objectfile.loads(b"MC")

    def test_corruption_detected(self, raw_module):
        blob = bytearray(objectfile.dumps(raw_module))
        blob[-1] ^= 0xFF
        with pytest.raises(ObjectFileError, match="corrupted"):
            objectfile.loads(bytes(blob))

    def test_wrong_payload_type_rejected(self):
        import hashlib
        import pickle
        payload = pickle.dumps({"not": "a module"})
        header = bytes((objectfile.FORMAT_VERSION, 0x40))
        blob = (objectfile.MAGIC + header
                + hashlib.sha256(header + payload).digest() + payload)
        with pytest.raises(ObjectFileError, match="module"):
            objectfile.loads(blob)

    def test_old_format_version_rejected(self, raw_module):
        """A v1 .mcfo (no arch tag) must never be silently loaded."""
        blob = bytearray(objectfile.dumps(raw_module))
        blob[len(objectfile.MAGIC)] = 1  # pretend format version 1
        with pytest.raises(ObjectFileError, match="format version"):
            objectfile.loads(bytes(blob))

    def test_cross_arch_load_rejected(self, raw_module):
        blob = objectfile.dumps(raw_module)  # compiled for x64
        with pytest.raises(ObjectFileError, match="arch mismatch"):
            objectfile.loads(blob, expect_arch="x32")

    def test_matching_arch_accepted(self, raw_module):
        loaded = objectfile.loads(objectfile.dumps(raw_module),
                                  expect_arch="x64")
        assert loaded.arch == "x64"

    def test_header_payload_arch_disagreement_rejected(self, raw_module):
        """A header claiming x32 over an x64 payload is tampering."""
        import hashlib
        import pickle
        payload = pickle.dumps(raw_module,
                               protocol=pickle.HIGHEST_PROTOCOL)
        header = bytes((objectfile.FORMAT_VERSION, 0x20))  # x32 tag
        blob = (objectfile.MAGIC + header
                + hashlib.sha256(header + payload).digest() + payload)
        with pytest.raises(ObjectFileError, match="arch mismatch"):
            objectfile.loads(blob)

    def test_describe(self, raw_module):
        text = objectfile.describe(raw_module)
        assert "objtest" in text and "triple" in text


class TestCliTools:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(SOURCE)
        return path

    def test_cc_compile_only(self, source_file, tmp_path, capsys):
        from repro.tools.cc import main
        output = tmp_path / "prog.mcfo"
        assert main(["-c", str(source_file), "-o", str(output)]) == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out

    def test_cc_link_and_run(self, source_file, capsys):
        from repro.tools.cc import main
        code = main([str(source_file), "--run", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "42" in out

    def test_cc_runs_object_files(self, source_file, tmp_path, capsys):
        from repro.tools.cc import main
        obj = tmp_path / "prog.mcfo"
        assert main(["-c", str(source_file), "-o", str(obj)]) == 0
        capsys.readouterr()
        assert main([str(obj), "--run"]) == 0
        assert "42" in capsys.readouterr().out

    def test_cc_reports_cfi_violation_exit_code(self, tmp_path, capsys):
        from repro.tools.cc import main
        bad = tmp_path / "bad.c"
        bad.write_text("""
            void wrong(int a, int b) { }
            int main(void) {
                void (*f)(void) = (void (*)(void))wrong;
                f();
                return 0;
            }
        """)
        assert main([str(bad), "--run"]) == 40
        assert "CFI violation" in capsys.readouterr().err

    def test_cc_compile_only_requires_one_input(self, source_file,
                                                tmp_path, capsys):
        from repro.tools.cc import main
        other = tmp_path / "b.c"
        other.write_text("int helper(void) { return 1; }")
        assert main(["-c", str(source_file), str(other)]) == 2

    def test_objdump(self, source_file, capsys):
        from repro.tools.objdump import main
        assert main([str(source_file), "--max-lines", "20"]) == 0
        out = capsys.readouterr().out
        assert "triple" in out and "address-taken" in out
        assert "indirect-branch sites" in out

    def test_objdump_native(self, source_file, capsys):
        from repro.tools.objdump import main
        assert main([str(source_file), "--native", "--aux-only"]) == 0
        assert "native" in capsys.readouterr().out

    def test_analyze_clean_source(self, tmp_path, capsys):
        from repro.tools.analyze import main
        clean = tmp_path / "clean.c"
        clean.write_text("int main(void) { return 0; }")
        assert main([str(clean)]) == 0
        assert "VBE): 0" in capsys.readouterr().out.replace("(", "(")

    def test_analyze_reports_violations(self, tmp_path, capsys):
        from repro.tools.analyze import main
        dirty = tmp_path / "dirty.c"
        dirty.write_text("""
            void g(void) { }
            void f(void) { void *p = (void *)g; }
            int main(void) { f(); return 0; }
        """)
        assert main([str(dirty), "--verbose"]) == 3
        out = capsys.readouterr().out
        assert "K2" in out and "classified casts" in out

    def test_analyze_missing_file(self, tmp_path, capsys):
        from repro.tools.analyze import main
        with pytest.raises(SystemExit):
            main([])  # argparse: missing required input


class TestGadgetsCli:
    def test_native_scan(self, tmp_path, capsys):
        from repro.tools.gadgets import main
        source = tmp_path / "g.c"
        source.write_text("""
            long f(long x) { return x * 3; }
            long (*p)(long) = f;
            int main(void) { return (int)p(2); }
        """)
        assert main([str(source), "--show", "2"]) == 0
        out = capsys.readouterr().out
        assert "unique gadgets" in out and "ret" in out

    def test_mcfi_reachability(self, tmp_path, capsys):
        from repro.tools.gadgets import main
        source = tmp_path / "g.c"
        source.write_text("int main(void) { return 0; }")
        assert main([str(source), "--mcfi", "--show", "0"]) == 0
        out = capsys.readouterr().out
        assert "eliminated" in out and "hardened" in out
