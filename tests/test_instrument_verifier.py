"""Tests for the MCFI instrumentation pass and the modular verifier."""

import pytest

from repro.core.instrument import instrument_items, lower_native
from repro.core.verifier import disassemble_module, verify_module
from repro.errors import VerificationError
from repro.isa.disasm import sweep_ranges
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.toolchain import compile_and_link, compile_module


@pytest.fixture(scope="module")
def demo_module(demo_program):
    return demo_program.module


class TestInstrumentation:
    def test_no_bare_rets_after_instrumentation(self, demo_module):
        instrs = sweep_ranges(demo_module.code, demo_module.base,
                              demo_module.code_ranges)
        assert all(d.instr.op != Op.RET for d in instrs)

    def test_native_lowering_keeps_rets(self, demo_program_native):
        module = demo_program_native.module
        instrs = sweep_ranges(module.code, module.base, module.code_ranges)
        assert any(d.instr.op == Op.RET for d in instrs)

    def test_every_indirect_branch_through_rcx(self, demo_module):
        instrs = sweep_ranges(demo_module.code, demo_module.base,
                              demo_module.code_ranges)
        for decoded in instrs:
            if decoded.instr.op in (Op.JMP_R, Op.CALL_R):
                assert decoded.instr.operands[0] == Reg.RCX

    def test_site_count_matches_branches(self, demo_module):
        instrs = sweep_ranges(demo_module.code, demo_module.base,
                              demo_module.code_ranges)
        branches = sum(1 for d in instrs
                       if d.instr.op in (Op.JMP_R, Op.CALL_R))
        assert branches == len(demo_module.aux.branch_sites)

    def test_bary_slots_one_per_site(self, demo_module):
        sites = {s.site for s in demo_module.aux.branch_sites}
        assert set(demo_module.bary_slots) == sites

    def test_site_kinds_present(self, demo_module):
        kinds = {s.kind for s in demo_module.aux.branch_sites}
        # demo has returns, fptr calls, a dense switch, and longjmp
        assert {"ret", "icall", "switch", "longjmp"} <= kinds

    def test_targets_are_aligned(self, demo_module):
        aux = demo_module.aux
        for func in aux.functions.values():
            assert func.entry % 4 == 0
        for retsite in aux.retsites:
            assert retsite.address % 4 == 0
        for resume in aux.setjmp_resumes:
            assert resume % 4 == 0

    def test_write_sandboxing_on_x64(self):
        raw = compile_module(
            "long g; void f(long *p) { *p = 1; g = 2; }", name="w")
        instrumented = instrument_items(raw)
        from repro.isa.assembler import AsmInstr
        items = [i for i in instrumented.items if isinstance(i, AsmInstr)]
        for index, item in enumerate(items):
            if item.op in (Op.STORE8, Op.STORE16, Op.STORE32, Op.STORE64):
                base = item.operands[0]
                if base in (Reg.RSP, Reg.RBP):
                    continue
                previous = items[index - 1]
                assert previous.op == Op.MOVZX32
                assert previous.operands[0] == base

    def test_x32_has_no_write_masks(self):
        raw = compile_module("long g; void f(void) { g = 2; }",
                             name="w", arch="x32")
        instrumented = instrument_items(raw)
        from repro.isa.assembler import AsmInstr
        assert all(not (isinstance(i, AsmInstr) and i.op == Op.MOVZX32
                        and False)
                   for i in instrumented.items)
        # x32 sandboxes by segmentation: stores are unmasked.
        stores_masked = 0
        items = [i for i in instrumented.items if isinstance(i, AsmInstr)]
        for index, item in enumerate(items[1:], start=1):
            if item.op == Op.STORE64 and \
                    items[index - 1].op == Op.MOVZX32:
                stores_masked += 1
        assert stores_masked == 0

    def test_instrumentation_is_per_module(self):
        """Separate compilation: instrumenting a module must not need
        any information from other modules."""
        raw_a = compile_module(
            "int helper(int x); int main(void) { return helper(1); }",
            name="a")
        raw_b = compile_module("int helper(int x) { return x + 1; }",
                               name="b")
        asm_a = instrument_items(raw_a)   # works in isolation
        asm_b = instrument_items(raw_b)
        assert asm_a.sites is not None and asm_b.sites is not None


class TestVerifier:
    def test_accepts_instrumented_module(self, demo_module):
        report = verify_module(demo_module)
        assert report.ok
        assert report.stats["checked_branches"] == \
            len(demo_module.aux.branch_sites)

    def test_rejects_native_module(self, demo_program_native):
        with pytest.raises(VerificationError):
            verify_module(demo_program_native.module)

    def test_rejects_corrupted_code(self, demo_program):
        import copy
        module = copy.deepcopy(demo_program.module)
        code = bytearray(module.code)
        # Find a CMP_RR inside a check sequence and neuter it to NOPs.
        instrs = sweep_ranges(module.code, module.base, module.code_ranges)
        for index, decoded in enumerate(instrs):
            if decoded.instr.op in (Op.JMP_R, Op.CALL_R):
                compare = instrs[index - 2]
                offset = compare.address - module.base
                for k in range(compare.length):
                    code[offset + k] = int(Op.NOP)
                break
        module.code = bytes(code)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_rejects_undeclared_branch_site(self, demo_program):
        import copy
        module = copy.deepcopy(demo_program.module)
        module.aux.branch_sites = module.aux.branch_sites[:-1]
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_rejects_unaligned_target_claim(self, demo_program):
        import copy
        from repro.module.auxinfo import RetSiteAux
        module = copy.deepcopy(demo_program.module)
        module.aux.retsites.append(
            RetSiteAux(address=module.base + 1, caller="x", callee=None))
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_complete_disassembly(self, demo_module):
        instrs = disassemble_module(demo_module)
        assert instrs
        # jump-table data ranges are excluded from the sweep
        data_addresses = set()
        for start, end in demo_module.aux.data_ranges:
            data_addresses.update(range(start, end))
        assert all(d.address not in data_addresses for d in instrs)

    def test_rejects_junk_bytes(self, demo_program):
        import copy
        module = copy.deepcopy(demo_program.module)
        instrs = sweep_ranges(module.code, module.base, module.code_ranges)
        code = bytearray(module.code)
        code[instrs[2].address - module.base] = 0xFE  # invalid opcode
        module.code = bytes(code)
        with pytest.raises(VerificationError):
            verify_module(module)


class TestVerifierNegativePaths:
    """A module from a buggy or malicious rewriter must not verify."""

    def test_rejects_clobber_between_mask_and_store(self):
        """A register write between the movzx32 mask and the store
        re-opens the sandbox: the masked value may be replaced by an
        attacker-controlled one, so the verifier must reject."""
        from repro.isa.assembler import AsmInstr, assemble
        from repro.core.instrument import InstrumentedAsm
        from repro.module.module import build_module

        raw = compile_module("void f(long *p) { *p = 1; }", name="clob")
        instrumented = instrument_items(raw)
        items = list(instrumented.items)
        stores = (Op.STORE8, Op.STORE16, Op.STORE32, Op.STORE64)
        patched = False
        for index, item in enumerate(items[:-1]):
            nxt = items[index + 1]
            if (isinstance(item, AsmInstr) and item.op == Op.MOVZX32
                    and isinstance(nxt, AsmInstr) and nxt.op in stores
                    and nxt.operands[0] == item.operands[0]
                    # frame-relative stores are exempt from masking
                    and nxt.operands[0] not in (Reg.RSP, Reg.RBP)):
                items.insert(index + 1,
                             AsmInstr(Op.ADD_RI, (item.operands[0], 0)))
                patched = True
                break
        assert patched, "no mask/store pair found to tamper with"

        assembled = assemble(items)
        module = build_module(
            raw, InstrumentedAsm(items=items, sites=instrumented.sites,
                                 setjmp_resumes=instrumented.setjmp_resumes),
            assembled)
        with pytest.raises(VerificationError, match="unsandboxed store"):
            verify_module(module)

    def test_rejects_misaligned_switch_target_in_aux(self, demo_program):
        """Auxiliary info claiming a misaligned switch-case target must
        fail check 4 — a misaligned target could land mid-instruction."""
        import copy
        import dataclasses
        module = copy.deepcopy(demo_program.module)
        for index, site in enumerate(module.aux.branch_sites):
            if site.kind == "switch" and site.targets:
                bad = (site.targets[0] + 1,) + site.targets[1:]
                module.aux.branch_sites[index] = \
                    dataclasses.replace(site, targets=bad)
                break
        else:
            pytest.fail("demo module has no switch site")
        with pytest.raises(VerificationError, match="aligned"):
            verify_module(module)
