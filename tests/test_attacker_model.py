"""Tests for the concurrent-attacker primitives (paper Sec. 4 model)."""

import pytest

from repro.vm.attacker import (
    AttackReport,
    conditional_attacker,
    table_tamper_attacker,
    write_word_attacker,
)
from repro.vm.memory import Memory, PAGE_SIZE, TableMemory
from repro.vm.scheduler import GeneratorTask, Scheduler


@pytest.fixture()
def memory():
    mem = Memory()
    mem.map(0x100000, PAGE_SIZE, readable=True, writable=True)
    return mem


class TestWriteWordAttacker:
    def test_persistently_corrupts(self, memory):
        attacker = write_word_attacker(memory, 0x100008, 0xBAD)
        for _ in range(3):
            next(attacker)
            memory.write_u64(0x100008, 0)  # victim restores ...
        next(attacker)                      # ... attacker strikes again
        assert memory.read_u64(0x100008) == 0xBAD

    def test_one_shot(self, memory):
        attacker = write_word_attacker(memory, 0x100000, 7, repeat=False)
        next(attacker)
        with pytest.raises(StopIteration):
            next(attacker)
        assert memory.read_u64(0x100000) == 7

    def test_survives_protected_pages(self):
        mem = Memory()
        mem.map(0x100000, PAGE_SIZE, readable=True, writable=False)
        attacker = write_word_attacker(mem, 0x100000, 1)
        next(attacker)  # must not raise: the attacker just fails
        assert mem.read_u64(0x100000) == 0


class TestConditionalAttacker:
    def test_waits_for_trigger(self, memory):
        armed = {"go": False}
        attacker = conditional_attacker(
            memory, lambda: armed["go"], [(0x100000, 1), (0x100008, 2)])
        next(attacker)
        next(attacker)
        assert memory.read_u64(0x100000) == 0  # not yet
        armed["go"] = True
        next(attacker)
        assert memory.read_u64(0x100000) == 1
        next(attacker)
        assert memory.read_u64(0x100008) == 2


class TestTableTamper:
    def test_tables_stay_intact(self):
        """The in-sandbox attacker has no path to the table region:
        it writes through Memory, which does not contain the tables."""
        tables = TableMemory()
        tables.write_tary(0, 0x11)
        mem = Memory()
        mem.map(0x100000, PAGE_SIZE, writable=True)
        reports = []
        scheduler = Scheduler(seed=0)
        scheduler.add(GeneratorTask(
            table_tamper_attacker(tables, forged_id=0x99, index=0,
                                  sink=reports),
            "tamper"))
        scheduler.add(GeneratorTask(
            write_word_attacker(mem, 0x100000, 0x99, repeat=False),
            "writer"))
        outcome = scheduler.run()
        assert outcome.ok
        assert tables.read_tary(0) == 0x11
        assert len(reports) == 1
        assert reports[0].blocked and not reports[0].hijacked
        assert "BLOCKED" in repr(reports[0])

    def test_reports_hypothetical_corruption(self):
        tables = TableMemory()
        tables.write_tary(0, 0x11)
        reports = []
        attacker = table_tamper_attacker(tables, forged_id=0x99, index=0,
                                         sink=reports)
        next(attacker)
        tables.write_tary(0, 0x99)  # simulate a (privileged) corruption
        with pytest.raises(StopIteration) as stop:
            next(attacker)
        report = stop.value.value
        assert report.hijacked and not report.blocked
        assert reports == [report]
        assert "0x99" in report.detail

    def test_unrelated_writes_are_not_hijacks(self):
        tables = TableMemory()
        tables.write_tary(0, 0x11)
        attacker = table_tamper_attacker(tables, forged_id=0x99, index=0)
        next(attacker)
        tables.write_tary(0, 0x12)  # changed, but not the forged value
        with pytest.raises(StopIteration) as stop:
            next(attacker)
        assert stop.value.value.blocked


class TestAttackReport:
    def test_repr_states_outcome(self):
        blocked = AttackReport("x", hijacked=False, blocked=True)
        assert "BLOCKED" in repr(blocked)
        owned = AttackReport("x", hijacked=True, blocked=False)
        assert "HIJACKED" in repr(owned)
        nothing = AttackReport("x", hijacked=False, blocked=False)
        assert "NO-EFFECT" in repr(nothing)


class TestErrorTypes:
    """Exception metadata used by tooling and reports."""

    def test_cfi_violation_fields(self):
        from repro.errors import CfiViolation
        err = CfiViolation(0x1000, 0x2000, "test reason")
        assert err.branch_address == 0x1000
        assert err.target_address == 0x2000
        assert "0x1000" in str(err) and "test reason" in str(err)

    def test_tinyc_errors_carry_position(self):
        from repro.errors import ParseError
        err = ParseError("bad token", 12, 3)
        assert err.line == 12 and err.column == 3
        assert str(err).startswith("12:3:")

    def test_memory_fault_fields(self):
        from repro.errors import MemoryFault
        err = MemoryFault(0xFF, "write", "unmapped")
        assert err.address == 0xFF and err.kind == "write"
        assert "unmapped" in str(err)

    def test_verification_error_address(self):
        from repro.errors import VerificationError
        err = VerificationError("bad branch", address=0x42)
        assert err.address == 0x42 and "0x42" in str(err)
