"""The unified error taxonomy: stable codes + to_dict() payloads (PR 7).

Every ``repro`` error derives from :class:`ReproError`, carries a
stable kebab-case ``code`` (the wire identifier — it must survive
Python-class renames), and serializes through ``to_dict()`` in the same
shape the result-store records use.
"""

import json

import pytest

from repro import errors
from repro.errors import (
    DeadlineExceeded,
    InjectedFault,
    ReproError,
    RuntimeError_,
    ServiceBackpressure,
    ShardQuarantined,
    TableIntegrityError,
)


def _error_classes():
    # dedupe by identity: an alias (CompileError -> TinyCError) is the
    # same definition, not a sibling declaration
    seen = []
    for obj in vars(errors).values():
        if isinstance(obj, type) and issubclass(obj, ReproError) \
                and obj not in seen:
            seen.append(obj)
    return seen


class TestTaxonomy:
    def test_every_error_class_has_a_stable_code(self):
        for cls in _error_classes():
            assert isinstance(cls.code, str) and cls.code, cls
            # kebab-case, machine-matchable
            assert cls.code == cls.code.lower()
            assert " " not in cls.code and "_" not in cls.code

    def test_codes_are_unique_per_concrete_class(self):
        # Abstract bases share their code downward until a subclass
        # overrides it, but no two *sibling* definitions may collide:
        # every class that declares a code declares a distinct one.
        declared = {}
        for cls in _error_classes():
            if "code" in vars(cls):
                assert vars(cls)["code"] not in declared.values(), cls
                declared[cls.__name__] = vars(cls)["code"]
        assert declared["ReproError"] == "repro-error"

    def test_service_errors_inherit_the_common_base(self):
        for cls in (ServiceBackpressure, TableIntegrityError,
                    ShardQuarantined, DeadlineExceeded):
            assert issubclass(cls, RuntimeError_)
            assert issubclass(cls, ReproError)

    def test_base_to_dict_shape(self):
        err = ReproError("boom")
        assert err.to_dict() == {
            "code": "repro-error", "type": "ReproError",
            "message": "boom"}


class TestPayloads:
    def test_backpressure_payload(self):
        err = ServiceBackpressure(pending=7, limit=8)
        payload = err.to_dict()
        assert payload["code"] == "service-backpressure"
        assert payload["pending"] == 7 and payload["limit"] == 8

    def test_table_integrity_payload(self):
        err = TableIntegrityError("corrupt", index=3, retries=4096)
        payload = err.to_dict()
        assert payload["code"] == "table-integrity"
        assert payload["index"] == 3 and payload["retries"] == 4096

    def test_shard_quarantined_payload(self):
        err = ShardQuarantined(shard=2, reason="audit found 3 bad words")
        payload = err.to_dict()
        assert payload["code"] == "shard-quarantined"
        assert payload["shard"] == 2
        assert "audit" in payload["reason"]
        assert "quarantined" in str(err)

    def test_deadline_payload(self):
        err = DeadlineExceeded("tenant3/5", deadline_tick=900,
                               now_tick=1024)
        payload = err.to_dict()
        assert payload["code"] == "deadline-exceeded"
        assert payload["request_id"] == "tenant3/5"
        assert payload["deadline_tick"] == 900
        assert payload["now_tick"] == 1024

    def test_injected_fault_payload(self):
        err = InjectedFault("service.commit", "shard1")
        payload = err.to_dict()
        assert payload["code"] == "injected-fault"
        assert payload["point"] == "service.commit"
        assert payload["detail"] == "shard1"

    @pytest.mark.parametrize("err", [
        ServiceBackpressure(1, 2),
        TableIntegrityError("x", index=0, retries=1),
        ShardQuarantined(0),
        DeadlineExceeded("t/0", 10, 20),
        InjectedFault("p", "d"),
    ])
    def test_payloads_are_json_serializable(self, err):
        line = json.dumps(err.to_dict(), sort_keys=True)
        assert json.loads(line)["code"] == err.code
