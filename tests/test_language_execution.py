"""End-to-end language tests: compile TinyC, run on the SimVM, check
output — every test runs both native and MCFI-instrumented and the two
must agree (the instrumentation-transparency property)."""

import pytest

from tests.conftest import run_source


def outputs(source, arch="x64"):
    native = run_source(source, mcfi=False, arch=arch)
    hardened = run_source(source, mcfi=True, arch=arch)
    assert native.ok, f"native run failed: {native.fault}"
    assert hardened.ok, (f"MCFI run failed: "
                         f"{hardened.violation or hardened.fault}")
    assert native.output == hardened.output
    assert native.exit_code == hardened.exit_code
    return native


def expect(source, expected_output, arch="x64"):
    result = outputs(source, arch=arch)
    assert result.output == expected_output
    return result


class TestArithmetic:
    def test_integer_ops(self):
        expect("""
            int main(void) {
                print_int(7 + 3); print_char(' ');
                print_int(7 - 10); print_char(' ');
                print_int(6 * 7); print_char(' ');
                print_int(17 / 5); print_char(' ');
                print_int(-17 / 5); print_char(' ');
                print_int(17 % 5); print_char(' ');
                print_int(-17 % 5);
                return 0;
            }
        """, b"10 -3 42 3 -3 2 -2")

    def test_bitwise_and_shifts(self):
        expect("""
            int main(void) {
                print_int(0xF0 & 0x3C); print_char(' ');
                print_int(0xF0 | 0x0F); print_char(' ');
                print_int(0xFF ^ 0x0F); print_char(' ');
                print_int(~0); print_char(' ');
                print_int(1 << 10); print_char(' ');
                print_int(-16 >> 2); print_char(' ');
                long u = 16;
                print_int(u >> 2);
                return 0;
            }
        """, b"48 255 240 -1 1024 -4 4")

    def test_unsigned_comparison_semantics(self):
        expect("""
            int main(void) {
                unsigned long big = 0;
                big = big - 1;    /* wraps to max */
                if (big > 10u) { print_str("wrapped"); }
                long sbig = -1;
                if (sbig < 10) { print_str(" signed"); }
                return 0;
            }
        """, b"wrapped signed")

    def test_doubles(self):
        expect("""
            int main(void) {
                double x = 2.5;
                double y = x * 4.0 - 1.0;   /* 9.0 */
                print_int((long)y); print_char(' ');
                print_int((long)(y / 2.0)); print_char(' ');
                if (y > 8.5) { print_str("gt"); }
                print_char(' ');
                print_int((long)sqrt_d(144.0));
                return 0;
            }
        """, b"9 4 gt 12")

    def test_char_narrowing(self):
        expect("""
            int main(void) {
                char c = (char)300;     /* 300 - 256 = 44 */
                unsigned char u = (unsigned char)300;
                print_int(c); print_char(' ');
                print_int(u);
                return 0;
            }
        """, b"44 44")

    def test_increment_decrement(self):
        expect("""
            int main(void) {
                int i = 5;
                print_int(i++); print_int(i); print_int(++i);
                print_int(i--); print_int(--i);
                return 0;
            }
        """, b"56775")


class TestControlFlow:
    def test_loops(self):
        expect("""
            int main(void) {
                int total = 0;
                int i;
                for (i = 0; i < 5; i++) { total += i; }
                while (total < 20) { total += 3; }
                do { total++; } while (total < 0);
                print_int(total);
                return 0;
            }
        """, b"23")

    def test_break_continue(self):
        expect("""
            int main(void) {
                int total = 0;
                int i;
                for (i = 0; i < 10; i++) {
                    if (i == 3) { continue; }
                    if (i == 7) { break; }
                    total += i;
                }
                print_int(total);
                return 0;
            }
        """, b"18")

    def test_short_circuit(self):
        expect("""
            int bomb(void) { print_str("BOOM"); return 1; }
            int main(void) {
                if (0 && bomb()) { }
                if (1 || bomb()) { print_str("ok"); }
                int v = (2 > 1) && (3 > 2);
                print_int(v);
                return 0;
            }
        """, b"ok1")

    def test_dense_switch_uses_jump_table(self):
        source = """
            int f(int x) {
                switch (x) {
                    case 2: return 20;
                    case 3: return 30;
                    case 4: return 40;
                    case 5: { int y = x; return y * 10; }
                    default: return -1;
                }
            }
            int main(void) {
                int i;
                for (i = 0; i < 8; i++) {
                    print_int(f(i)); print_char(',');
                }
                return 0;
            }
        """
        expect(source, b"-1,-1,20,30,40,50,-1,-1,")
        # confirm a jump table was emitted (an ijump site exists)
        from repro.toolchain import compile_and_link
        program = compile_and_link({"t": source}, mcfi=True)
        kinds = {s.kind for s in program.module.aux.branch_sites}
        assert "switch" in kinds

    def test_sparse_switch_uses_compare_chain(self):
        source = """
            int f(int x) {
                switch (x) {
                    case 1: return 1;
                    case 1000: return 2;
                    case 100000: return 3;
                    default: return 0;
                }
            }
            int main(void) {
                print_int(f(1) + f(1000) + f(100000) + f(5));
                return 0;
            }
        """
        expect(source, b"6")
        from repro.toolchain import compile_and_link
        program = compile_and_link({"t": source}, mcfi=True)
        kinds = [s.kind for s in program.module.aux.branch_sites
                 if s.kind == "switch"]
        assert kinds == []

    def test_switch_fallthrough(self):
        expect("""
            int main(void) {
                int x = 1;
                int acc = 0;
                switch (x) {
                    case 0: acc += 1;
                    case 1: acc += 10;
                    case 2: acc += 100; break;
                    case 3: acc += 1000;
                }
                print_int(acc);
                return 0;
            }
        """, b"110")

    def test_ternary(self):
        expect("""
            int main(void) {
                int a = 5;
                print_int(a > 3 ? a * 2 : -1);
                print_char(' ');
                print_int(a > 9 ? 1 : a > 4 ? 2 : 3);
                return 0;
            }
        """, b"10 2")


class TestPointersAndMemory:
    def test_pointer_basics(self):
        expect("""
            int main(void) {
                long x = 11;
                long *p = &x;
                *p = *p + 1;
                print_int(x);
                return 0;
            }
        """, b"12")

    def test_arrays_and_pointer_arithmetic(self):
        expect("""
            int main(void) {
                int a[5];
                int *p = a;
                int i;
                for (i = 0; i < 5; i++) { a[i] = i * i; }
                print_int(*(p + 3)); print_char(' ');
                print_int(p[4]); print_char(' ');
                print_int((int)(&a[4] - &a[1]));
                return 0;
            }
        """, b"9 16 3")

    def test_structs(self):
        expect("""
            struct point { long x; long y; };
            struct rect { struct point lo; struct point hi; };
            long area(struct rect *r) {
                return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
            }
            int main(void) {
                struct rect r;
                r.lo.x = 1; r.lo.y = 1; r.hi.x = 5; r.hi.y = 4;
                print_int(area(&r));
                return 0;
            }
        """, b"12")

    def test_heap_allocation(self):
        expect("""
            int main(void) {
                long *a = (long *)malloc(10u * 8u);
                int i;
                long total = 0;
                for (i = 0; i < 10; i++) { a[i] = i; }
                for (i = 0; i < 10; i++) { total += a[i]; }
                free((void *)a);
                /* free list reuse */
                {
                    long *b = (long *)malloc(8u);
                    *b = 100;
                    total += *b;
                }
                print_int(total);
                return 0;
            }
        """, b"145")

    def test_strings(self):
        expect("""
            int main(void) {
                char buf[16];
                strcpy(buf, "abc");
                print_int((long)strlen(buf)); print_char(' ');
                print_int(strcmp(buf, "abc")); print_char(' ');
                print_int(strcmp(buf, "abd") < 0 ? -1 : 1);
                print_char(' ');
                print_str(buf);
                return 0;
            }
        """, b"3 0 -1 abc")

    def test_global_initializers(self):
        expect("""
            long table[4] = {10, 20, 30};
            struct cfg { long a; long b; };
            struct cfg config = {7, 8};
            long scalar = -5;
            char *greeting = "hey";
            int main(void) {
                print_int(table[0] + table[1] + table[2] + table[3]);
                print_int(config.a + config.b);
                print_int(scalar);
                print_str(greeting);
                return 0;
            }
        """, b"6015-5hey")

    def test_memcpy_memset(self):
        expect("""
            int main(void) {
                char a[8];
                char b[8];
                memset((void *)a, 7, 8u);
                memcpy((void *)b, (void *)a, 8u);
                print_int(b[0] + b[7]);
                return 0;
            }
        """, b"14")


class TestFunctions:
    def test_recursion(self):
        expect("""
            long fib(long n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main(void) { print_int(fib(15)); return 0; }
        """, b"610")

    def test_many_arguments_spill_to_stack(self):
        expect("""
            long f(long a, long b, long c, long d, long e, long g) {
                return a + 10 * b + 100 * c + 1000 * d + 10000 * e
                       + 100000 * g;
            }
            int main(void) { print_int(f(1, 2, 3, 4, 5, 6)); return 0; }
        """, b"654321")

    def test_function_pointers_in_table(self):
        expect("""
            typedef long (*op)(long, long);
            long add(long a, long b) { return a + b; }
            long mul(long a, long b) { return a * b; }
            op ops[2] = {add, mul};
            int main(void) {
                print_int(ops[0](3, 4));
                print_int(ops[1](3, 4));
                return 0;
            }
        """, b"712")

    def test_function_pointer_as_argument(self):
        expect("""
            long twice(long (*f)(long), long x) { return f(f(x)); }
            long inc(long x) { return x + 1; }
            int main(void) { print_int(twice(inc, 5)); return 0; }
        """, b"7")

    def test_qsort_with_comparator(self):
        expect("""
            int cmp_long(void *a, void *b) {
                long x = *(long *)a;
                long y = *(long *)b;
                if (x < y) { return -1; }
                if (x > y) { return 1; }
                return 0;
            }
            int main(void) {
                long v[6];
                int i;
                v[0] = 5; v[1] = 2; v[2] = 9; v[3] = 1; v[4] = 5; v[5] = 0;
                qsort((void *)v, 6u, 8u, cmp_long);
                for (i = 0; i < 6; i++) { print_int(v[i]); }
                return 0;
            }
        """, b"012559")

    def test_setjmp_longjmp(self):
        expect("""
            long env[4];
            void bail(int code) { longjmp(env, code); }
            int main(void) {
                int r = setjmp(env);
                print_int(r);
                if (r < 3) { bail(r + 1); }
                return 0;
            }
        """, b"0123")

    def test_tail_call_result_correct_on_both_arches(self):
        source = """
            long helper(long x) { return x * 2 + 1; }
            long tail(long x) { return helper(x + 5); }
            int main(void) { print_int(tail(10)); return 0; }
        """
        expect(source, b"31", arch="x64")
        expect(source, b"31", arch="x32")

    def test_comma_operator(self):
        expect("""
            int main(void) {
                int a = 1;
                int b = (a++, a + 10);
                print_int(b);
                return 0;
            }
        """, b"12")


class TestMultiModule:
    def test_two_modules_link_and_call(self):
        from repro.toolchain import compile_and_run
        sources = {
            "alpha": """
                int beta_fn(int x);
                int main(void) { print_int(beta_fn(4)); return 0; }
            """,
            "beta": """
                int beta_fn(int x) { return x * x; }
            """,
        }
        for mcfi in (False, True):
            result = compile_and_run(sources, mcfi=mcfi)
            assert result.ok
            assert result.output == b"16"

    def test_cross_module_function_pointer(self):
        from repro.toolchain import compile_and_run
        sources = {
            "alpha": """
                int beta_fn(int x);
                int main(void) {
                    int (*fp)(int) = beta_fn;
                    print_int(fp(6));
                    return 0;
                }
            """,
            "beta": "int beta_fn(int x) { return x + 100; }",
        }
        result = compile_and_run(sources, mcfi=True)
        assert result.ok and result.output == b"106"
