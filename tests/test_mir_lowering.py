"""Direct unit tests for the MIR layer: structural validation, tail-call
marking, switch lowering decisions, and global-data layout."""

import pytest

from repro.mir import ir
from repro.mir.lowering import lower_unit
from repro.tinyc.parser import parse
from repro.tinyc.typecheck import check


def lower(source):
    return lower_unit(check(parse(source)))


def blocks_of(module, fn):
    return {b.label: b for b in module.function(fn).blocks}


class TestValidation:
    def test_valid_function_passes(self):
        module = lower("long f(long x) { return x + 1; }")
        module.function("f").validate()

    def test_unterminated_block_rejected(self):
        func = ir.MirFunction(name="f", ftype=None, params=[])
        func.blocks.append(ir.BasicBlock(label="entry"))
        with pytest.raises(ValueError, match="terminator"):
            func.validate()

    def test_unknown_target_rejected(self):
        func = ir.MirFunction(name="f", ftype=None, params=[])
        block = ir.BasicBlock(label="entry")
        block.instrs.append(ir.Jump(target="nowhere"))
        func.blocks.append(block)
        with pytest.raises(ValueError, match="nowhere"):
            func.validate()

    def test_mid_block_terminator_rejected(self):
        func = ir.MirFunction(name="f", ftype=None, params=[])
        block = ir.BasicBlock(label="entry")
        block.instrs.append(ir.Ret())
        block.instrs.append(ir.Const(dst=0, value=1))
        block.instrs.append(ir.Ret())
        func.blocks.append(block)
        with pytest.raises(ValueError, match="mid-block"):
            func.validate()

    def test_duplicate_labels_rejected(self):
        func = ir.MirFunction(name="f", ftype=None, params=[])
        for _ in range(2):
            block = ir.BasicBlock(label="entry")
            block.instrs.append(ir.Ret())
            func.blocks.append(block)
        with pytest.raises(ValueError, match="duplicate"):
            func.validate()


class TestTailCallMarking:
    def _calls(self, source, fn):
        module = lower(source)
        out = []
        for block in module.function(fn).blocks:
            for inst in block.instrs:
                if isinstance(inst, (ir.Call, ir.CallInd)):
                    out.append(inst)
        return out

    def test_return_call_marked_tail(self):
        calls = self._calls("""
            long g(long x) { return x; }
            long f(long x) { return g(x + 1); }
        """, "f")
        assert [c.tail for c in calls] == [True]

    def test_non_terminal_call_not_tail(self):
        calls = self._calls("""
            long g(long x) { return x; }
            long f(long x) { return g(x) + 1; }
        """, "f")
        assert [c.tail for c in calls] == [False]

    def test_void_tail_position(self):
        calls = self._calls("""
            void g(void) { }
            void f(void) { g(); }
        """, "f")
        assert [c.tail for c in calls] == [True]

    def test_stack_arg_calls_never_tail(self):
        calls = self._calls("""
            long g(long a, long b, long c, long d, long e) {
                return a + e;
            }
            long f(void) { return g(1, 2, 3, 4, 5); }
        """, "f")
        assert [c.tail for c in calls] == [False]  # 5 args > 4 regs

    def test_indirect_tail_candidate(self):
        calls = self._calls("""
            long f(long (*p)(long), long x) { return p(x); }
        """, "f")
        assert isinstance(calls[0], ir.CallInd)
        assert calls[0].tail
        assert calls[0].sig.render() == "i64(i64)"


class TestSwitchLowering:
    def _terminators(self, source, fn="f"):
        module = lower(source)
        return [b.terminator for b in module.function(fn).blocks]

    def test_dense_switch_becomes_table(self):
        terms = self._terminators("""
            int f(int x) {
                switch (x) {
                    case 0: return 1; case 1: return 2;
                    case 2: return 3; case 4: return 5;
                    default: return 0;
                }
            }
        """)
        switches = [t for t in terms if isinstance(t, ir.SwitchBr)]
        assert len(switches) == 1
        # the hole at 3 routes to default
        assert len(switches[0].targets) == 5
        assert switches[0].targets[3] == switches[0].default

    def test_sparse_switch_becomes_chain(self):
        terms = self._terminators("""
            int f(int x) {
                switch (x) {
                    case 0: return 1;
                    case 500: return 2;
                    case 90000: return 3;
                    default: return 0;
                }
            }
        """)
        assert not any(isinstance(t, ir.SwitchBr) for t in terms)

    def test_two_cases_never_a_table(self):
        terms = self._terminators("""
            int f(int x) {
                switch (x) { case 0: return 1; case 1: return 2;
                             default: return 0; }
            }
        """)
        assert not any(isinstance(t, ir.SwitchBr) for t in terms)


class TestGlobalData:
    def test_scalar_words(self):
        module = lower("long a = -7; int b = 9;")
        assert module.globals["a"].words == [(0, 8, -7)]
        assert module.globals["b"].words == [(0, 4, 9)]

    def test_array_and_struct_offsets(self):
        module = lower("""
            struct pair { long x; long y; };
            struct pair p = {3, 4};
            int arr[4] = {10, 20, 30};
        """)
        assert module.globals["p"].words == [(0, 8, 3), (8, 8, 4)]
        assert module.globals["arr"].words == \
            [(0, 4, 10), (4, 4, 20), (8, 4, 30)]

    def test_function_reloc(self):
        module = lower("""
            void cb(void) { }
            void (*slots[2])(void) = {cb, cb};
        """)
        assert module.globals["slots"].relocs == \
            [(0, "func", "cb"), (8, "func", "cb")]

    def test_string_reloc_and_interning(self):
        module = lower('char *a = "hi"; char *b = "hi";')
        relocs = (module.globals["a"].relocs +
                  module.globals["b"].relocs)
        sids = {sid for _, kind, sid in relocs if kind == "str"}
        assert len(sids) == 1  # deduplicated blob
        assert module.strings[sids.pop()] == b"hi\x00"

    def test_global_address_reloc(self):
        module = lower("long target; long *p = &target;")
        assert module.globals["p"].relocs == [(0, "global", "target")]

    def test_unsupported_initializer_rejected(self):
        from repro.errors import CodegenError
        with pytest.raises(CodegenError):
            lower("long a = 1; long b = a + 2;")


class TestVregDiscipline:
    def test_vreg_count_matches_uses(self):
        module = lower("long f(long x) { return x * 2 + 1; }")
        func = module.function("f")
        used = set()
        for block in func.blocks:
            for inst in block.instrs:
                for attr in ("dst", "src", "left", "right", "addr",
                             "pointer", "value", "buf"):
                    value = getattr(inst, attr, None)
                    if isinstance(value, int):
                        used.add(value)
        assert used <= set(range(func.n_vregs))
