"""Tests for the TinyC type checker and its semantic-fact collection."""

import pytest

from repro.errors import TypeError_
from repro.tinyc.parser import parse
from repro.tinyc.typecheck import check
from repro.tinyc.types import canonical


def checked(source):
    return check(parse(source))


class TestTyping:
    def test_arithmetic_promotion_to_double(self):
        unit = checked("double f(int x) { return x + 1.5; }")
        ret = unit.functions["f"].body.stmts[0]
        assert canonical(ret.value.ctype) == "f64"

    def test_pointer_arithmetic_type(self):
        unit = checked("long *f(long *p, int n) { return p + n; }")
        ret = unit.functions["f"].body.stmts[0]
        assert canonical(ret.value.ctype) == "ptr(i64)"

    def test_comparison_yields_int(self):
        unit = checked("int f(long a, long b) { return a < b; }")
        ret = unit.functions["f"].body.stmts[0]
        assert canonical(ret.value.ctype) == "i32"

    def test_member_access_types(self):
        unit = checked("""
            struct pair { long a; double b; };
            double f(struct pair *p) { return p->b; }
        """)
        ret = unit.functions["f"].body.stmts[0]
        assert canonical(ret.value.ctype) == "f64"

    def test_locals_get_unique_names(self):
        unit = checked("""
            int f(int x) {
                int y = x;
                { int y = 2; x += y; }
                return y;
            }
        """)
        names = [name for name, _ in unit.functions["f"].locals]
        assert len(names) == len(set(names)) == 3  # x, y, inner y

    def test_implicit_return_coercion(self):
        unit = checked("double f(void) { return 3; }")
        from repro.tinyc import ast
        ret = unit.functions["f"].body.stmts[0]
        assert isinstance(ret.value, ast.Cast)
        assert not ret.value.explicit


class TestAddressTaken:
    def test_direct_call_does_not_take_address(self):
        unit = checked("""
            int g(void) { return 1; }
            int f(void) { return g(); }
        """)
        assert "g" not in unit.address_taken

    def test_value_use_takes_address(self):
        unit = checked("""
            int g(void) { return 1; }
            int (*p)(void);
            int f(void) { p = g; return 0; }
        """)
        assert "g" in unit.address_taken

    def test_explicit_addressof_takes_address(self):
        unit = checked("""
            int g(void) { return 1; }
            int (*p)(void);
            int f(void) { p = &g; return 0; }
        """)
        assert "g" in unit.address_taken


class TestCallRecords:
    def test_direct_and_indirect_calls_recorded(self):
        unit = checked("""
            int g(int x) { return x; }
            int f(int (*fp)(int)) { return g(1) + fp(2); }
        """)
        direct = [c for c in unit.calls if c.direct == "g"]
        indirect = [c for c in unit.calls if c.direct is None]
        assert len(direct) == 1 and direct[0].caller == "f"
        assert len(indirect) == 1
        assert indirect[0].sig.render() == "i32(i32)"

    def test_variadic_call_allows_extra_args(self):
        unit = checked("""
            int v(int first, ...);
            int f(void) { return v(1, 2, 3); }
        """)
        assert unit.calls[0].direct == "v"

    def test_deref_call_normalizes_to_indirect(self):
        unit = checked("""
            int f(int (*fp)(int)) { return (*fp)(3); }
        """)
        assert unit.calls[0].direct is None


class TestCastRecords:
    def test_only_fptr_casts_recorded(self):
        unit = checked("""
            void f(void) {
                long a = (long)3.5;         /* numeric: not recorded */
                void *p = (void *)&a;        /* no fptr: not recorded */
            }
        """)
        assert unit.casts == []

    def test_fptr_to_void_star_recorded(self):
        unit = checked("""
            void g(void) { }
            void f(void) { void *p = (void *)g; }
        """)
        assert len(unit.casts) == 1
        record = unit.casts[0]
        assert record.operand_func == "g"
        assert record.explicit

    def test_null_initialization_flagged_zero(self):
        unit = checked("""
            void (*handler)(int);
            void f(void) { handler = 0; }
        """)
        assert unit.casts[0].operand_zero
        assert unit.casts[0].assign_to_fptr

    def test_malloc_cast_flagged(self):
        unit = checked("""
            void *malloc(unsigned long n);
            struct obj { void (*cb)(void); };
            void f(void) {
                struct obj *o = (struct obj *)malloc(8u);
            }
        """)
        assert unit.casts[0].via_alloc

    def test_member_nonfptr_flagged(self):
        unit = checked("""
            struct xpv { long len; void (*magic)(void); };
            long f(void *any) {
                return ((struct xpv *)any)->len;
            }
        """)
        assert unit.casts[0].member_nonfptr

    def test_fptr_field_access_not_nf(self):
        unit = checked("""
            struct xpv { long len; void (*magic)(void); };
            void f(void *any) {
                ((struct xpv *)any)->magic();
            }
        """)
        assert not unit.casts[0].member_nonfptr


class TestErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(TypeError_):
            checked("int f(void) { return zzz; }")

    def test_wrong_arity(self):
        with pytest.raises(TypeError_):
            checked("int g(int a) { return a; } int f(void) "
                    "{ return g(1, 2); }")

    def test_call_of_non_function(self):
        with pytest.raises(TypeError_):
            checked("int f(int x) { return x(1); }")

    def test_assign_to_rvalue(self):
        with pytest.raises(TypeError_):
            checked("void f(int x) { x + 1 = 3; }")

    def test_deref_non_pointer(self):
        with pytest.raises(TypeError_):
            checked("int f(int x) { return *x; }")

    def test_unknown_member(self):
        with pytest.raises(TypeError_):
            checked("struct s { int a; }; int f(struct s *p) "
                    "{ return p->b; }")

    def test_conflicting_redeclaration(self):
        with pytest.raises(TypeError_):
            checked("int g(int); long g(int);")

    def test_redeclared_local(self):
        with pytest.raises(TypeError_):
            checked("void f(void) { int a; int a; }")

    def test_void_return_with_value(self):
        with pytest.raises(TypeError_):
            checked("void f(void) { return 3; }")

    def test_struct_condition_rejected(self):
        with pytest.raises(TypeError_):
            checked("struct s { int a; }; void f(struct s x) "
                    "{ if (x) { } }")
