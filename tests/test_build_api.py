"""Tests for the redesigned ``repro.build`` surface.

The load-bearing property is *byte identity*: every path through the
incremental toolchain — cold unit-grain link, cache-hit rebuild, pool
compile, mini-frontend incremental rebuild, single-unit splice — must
produce exactly the image the monolithic pipeline (whole-module
codegen + instrument + link) produces.  ``_assert_same_image`` holds
them to that, excluding only the ``__mcfi.*`` internal labels whose
*names* differ between per-function and per-module instrumentation
namespaces (they are unreferenced and never affect bytes).
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.build import (
    BuildGraph,
    BuildResult,
    BuildSession,
    build_program,
    compile_object,
)
from repro.build.fingerprint import prelude_digest, source_body_key
from repro.build.graph import compile_module_units
from repro.build.link import link_units
from repro.build.source_index import diff_bodies, index_source, stub_source
from repro.build.units import UnitArtifact
from repro.linker.static_linker import link as static_link
from repro.runtime.runtime import Runtime
from repro.workloads.libc import LIBC_SOURCE
from repro.workloads.spec import BENCHMARKS, workload


def _monolithic(sources, arch="x64", allow_unresolved=None):
    """The legacy pipeline: whole-module compiles, instrument-at-link."""
    raws = [compile_object(text, name=name, arch=arch)
            for name, text in sources.items()]
    return static_link(raws, mcfi=True, allow_unresolved=allow_unresolved)


def _with_libc(sources):
    out = dict(sources)
    out.setdefault("libc", LIBC_SOURCE)
    return out


def _public_labels(module):
    return {name: addr for name, addr in module.labels.items()
            if not name.startswith("__mcfi.")}


def _assert_same_image(legacy, fast):
    assert legacy.module.code == fast.module.code
    assert legacy.data.image == fast.data.image
    assert legacy.entry == fast.entry
    assert legacy.module.bary_slots == fast.module.bary_slots
    assert legacy.module.code_ranges == fast.module.code_ranges
    assert legacy.heap_base == fast.heap_base
    assert legacy.parts == fast.parts
    assert legacy.got_slots == fast.got_slots
    assert _public_labels(legacy.module) == _public_labels(fast.module)
    al, af = legacy.module.aux, fast.module.aux
    assert al.functions == af.functions
    assert al.retsites == af.retsites
    assert al.branch_sites == af.branch_sites
    assert al.setjmp_resumes == af.setjmp_resumes
    assert al.direct_calls == af.direct_calls
    assert al.data_ranges == af.data_ranges
    assert al.exports == af.exports
    assert al.imports == af.imports


class TestWorkloadByteIdentity:
    """Cold unit-grain builds reproduce the monolithic images exactly."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_workload_matches_monolithic(self, name):
        sources = _with_libc({name: workload(name).source})
        legacy = _monolithic(sources)
        fast = build_program({name: workload(name).source}).program
        _assert_same_image(legacy, fast)

    def test_unit_cache_hit_rebuild_is_identical(self, tmp_path):
        from repro.infra.cache import open_cache
        cache = open_cache(tmp_path / "cache")
        sources = {"lbm": workload("lbm").source}
        first = build_program(sources, cache=cache)
        second = build_program(sources, cache=cache)
        assert second.stats["unit_hits"] == second.stats["units"]
        _assert_same_image(first.program, second.program)


DEAD_STRING_SOURCE = r"""
int shout(int noisy) {
    if (noisy) {
        print_str("alive\n");
        return 1;
    }
    return 0;
    print_str("dead branch string never interned late");
}

int main(void) {
    return shout(1) - 1;
}
"""


class TestRegressions:
    def test_dead_string_pruning_matches_monolithic(self):
        # Lowering interns strings before pruning unreachable blocks;
        # the unit linker must replay intern order, not referenced-ness.
        sources = _with_libc({"t": DEAD_STRING_SOURCE})
        _assert_same_image(_monolithic(sources),
                           build_program({"t": DEAD_STRING_SOURCE}).program)

    def test_prelude_flag_separates_object_keys(self, tmp_path):
        from repro.infra.cache import ArtifactCache
        cache = ArtifactCache(tmp_path / "cache")
        source = "int main(void) { return 4; }"
        with_prelude = cache.object_key(
            "t", "x64", source, prelude=prelude_digest(True))
        without = cache.object_key(
            "t", "x64", source, prelude=prelude_digest(False))
        assert with_prelude != without

    def test_prelude_flag_separates_body_memo_keys(self):
        body = "int f(void) { return 1; }"
        assert (source_body_key("m", "x64", body, True)
                != source_body_key("m", "x64", body, False))

    def test_prelude_flag_never_cross_hits_shared_cache(self, tmp_path):
        from repro.infra.cache import open_cache
        cache = open_cache(tmp_path / "cache")
        source = "int counter; void _start(void) { counter = 7; }"
        first = BuildSession(mcfi=False, with_libc=False, prelude=True,
                             cache=cache).build({"t": source})
        second = BuildSession(mcfi=False, with_libc=False, prelude=False,
                              cache=cache).build({"t": source})
        assert first.stats["object_hits"] == 0
        assert second.stats["object_hits"] == 0
        third = BuildSession(mcfi=False, with_libc=False, prelude=False,
                             cache=cache).build({"t": source})
        assert third.stats["object_hits"] == 1


#: Seeded-random incremental workload: editable function bodies whose
#: exit code the test can predict.
_EDIT_TEMPLATE = """
int f0(int x) {{ return x + {c0}; }}
int f1(int x) {{ return x * {c1}; }}
int f2(int x) {{ return x - {c2}; }}
int f3(int x) {{ return x + {c3} + 1; }}

int main(void) {{
    return (f0(1) + f1(2) + f2(3) + f3(4)) % 100;
}}
"""


def _edit_source(consts):
    return _EDIT_TEMPLATE.format(c0=consts[0], c1=consts[1],
                                 c2=consts[2], c3=consts[3])


def _edit_exit(consts):
    return ((1 + consts[0]) + (2 * consts[1]) + (3 - consts[2])
            + (4 + consts[3] + 1)) % 100


class TestIncrementalProperty:
    def test_random_edits_stay_byte_identical_to_cold(self, tmp_path):
        from repro.infra.cache import open_cache
        rng = random.Random(20140610)
        cache = open_cache(tmp_path / "cache")
        session = BuildSession(cache=cache)
        consts = [1, 2, 3, 4]
        session.build({"prog": _edit_source(consts)})
        for _ in range(6):
            consts[rng.randrange(4)] = rng.randrange(1, 50)
            source = _edit_source(consts)
            result = session.build({"prog": source})
            assert result.kind in ("incremental", "warm")
            cold = build_program({"prog": source}).program
            _assert_same_image(cold, result.program)
            run = Runtime(result.program).run()
            assert run.exit_code == _edit_exit(consts)

    def test_single_edit_splices_in_place(self):
        session = BuildSession()
        consts = [1, 2, 3, 4]
        session.build({"prog": _edit_source(consts)})
        consts[1] = 9
        result = session.build({"prog": _edit_source(consts)})
        assert result.kind == "incremental"
        assert result.stats["spliced"] == 1
        assert result.stats["modules_mini"] == 1

    def test_revert_edit_hits_body_memo(self):
        # cold build, edit (memoizes the edited body), revert (memoizes
        # the original body), then re-edit: that last rebuild must be
        # served entirely from the body memo — no new entries.
        session = BuildSession()
        original = _edit_source([1, 2, 3, 4])
        edited = _edit_source([1, 2, 3, 40])
        session.build({"prog": original})
        session.build({"prog": edited})
        session.build({"prog": original})
        before = set(session._body_memo)
        result = session.build({"prog": edited})
        assert result.kind == "incremental"
        assert set(session._body_memo) == before
        _assert_same_image(build_program({"prog": edited}).program,
                           result.program)

    def test_unchanged_rebuild_is_warm(self):
        session = BuildSession()
        source = _edit_source([1, 2, 3, 4])
        first = session.build({"prog": source})
        second = session.build({"prog": source})
        assert first.kind == "cold"
        assert second.kind == "warm"
        assert second.program is first.program

    def test_structural_edit_falls_back_to_full_rebuild(self):
        session = BuildSession()
        session.build({"prog": _edit_source([1, 2, 3, 4])})
        grown = _edit_source([1, 2, 3, 4]) + "\nint f4(void) { return 0; }\n"
        result = session.build({"prog": grown})
        assert result.kind == "incremental"
        assert result.stats["modules_rebuilt"] == 1
        _assert_same_image(build_program({"prog": grown}).program,
                           result.program)


class _FaultyPool:
    """Wrap a real WorkerPool so every job runs a fault plan first."""

    def __init__(self, inner, plan, attempt_file):
        self.inner = inner
        self.plan = plan
        self.attempt_file = attempt_file

    def map(self, fn, argses):
        from repro.faults.injectors import faulty_job
        return self.inner.map(faulty_job(fn, self.plan, self.attempt_file),
                              argses)


class _TamperedPool:
    """A pool whose workers return corrupted artifacts (truncated code,
    mismatched fingerprint) — the parent-side validation must reject
    every one of them before publishing to the cache."""

    def map(self, fn, argses):
        from repro.infra.pool import JobResult
        results = []
        for index, args in enumerate(argses):
            artifact = fn(*args)
            artifact.code = artifact.code[:3]
            artifact.fingerprint = "deadbeef"
            results.append(JobResult(id=str(index), ok=True, value=artifact))
        return results


def _assert_cache_units_whole(cache):
    units_dir = cache.root / "units"
    for path in units_dir.iterdir():
        fingerprint = path.stem
        artifact = cache.get_unit(fingerprint)
        assert isinstance(artifact, UnitArtifact)
        assert artifact.code
        assert artifact.fingerprint == fingerprint


class TestPoolSafety:
    def test_worker_crash_never_publishes_partial_unit(self, tmp_path):
        from repro.infra.cache import open_cache
        from repro.infra.pool import WorkerPool
        cache = open_cache(tmp_path / "cache")
        pool = _FaultyPool(WorkerPool(workers=2, retries=0),
                           plan="cc", attempt_file=str(tmp_path / "attempts"))
        source = _edit_source([5, 6, 7, 8])
        result = build_program({"prog": source}, cache=cache, pool=pool)
        _assert_same_image(build_program({"prog": source}).program,
                           result.program)
        _assert_cache_units_whole(cache)

    def test_tampered_results_are_rejected(self, tmp_path):
        from repro.infra.cache import open_cache
        cache = open_cache(tmp_path / "cache")
        source = _edit_source([5, 6, 7, 8])
        result = build_program({"prog": source}, cache=cache,
                               pool=_TamperedPool())
        assert result.stats["unit_parallel"] == 0
        _assert_same_image(build_program({"prog": source}).program,
                           result.program)
        _assert_cache_units_whole(cache)
        assert not (cache.root / "units" / "deadbeef.unit").exists()

    def test_pool_compile_is_byte_identical(self, tmp_path):
        from repro.infra.pool import WorkerPool
        from repro.mir.lowering import lower_unit
        from repro.toolchain import frontend
        source = workload("lbm").source
        checked = frontend(source, name="lbm")
        mir = lower_unit(checked)
        libc_checked = frontend(LIBC_SOURCE, name="libc")
        libc, _, _ = compile_module_units(lower_unit(libc_checked),
                                          libc_checked, "x64")
        serial, _, _ = compile_module_units(mir, checked, "x64")
        pooled, _, stats = compile_module_units(
            mir, checked, "x64", pool=WorkerPool(workers=2),
            parallel_threshold=2)
        assert stats["unit_parallel"] > 0
        _assert_same_image(link_units([serial, libc]).program,
                           link_units([pooled, libc]).program)


class TestLegacyShims:
    def test_compile_and_link_still_works(self):
        from repro.toolchain import compile_and_link
        program = compile_and_link({"t": "int main(void) { return 9; }"})
        assert Runtime(program).run().exit_code == 9

    def test_renamed_optimize_kwarg_warns(self):
        from repro.toolchain import compile_and_link, compile_module
        with pytest.warns(DeprecationWarning, match="devirtualize"):
            compile_module("int main(void) { return 0; }", optimize=True)
        with pytest.warns(DeprecationWarning, match="devirtualize"):
            compile_and_link({"t": "int main(void) { return 0; }"},
                             optimize=False)

    def test_default_call_does_not_warn(self):
        from repro.toolchain import compile_and_run, compile_module
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compile_module("int main(void) { return 0; }")
            result = compile_and_run({"t": "int main(void) { return 2; }"})
        assert result.exit_code == 2

    def test_build_result_round_trips(self):
        result = build_program({"t": "int main(void) { return 0; }"})
        clone = BuildResult.from_dict(result.to_dict())
        assert clone.program is None
        assert clone.kind == result.kind
        assert clone.arch == result.arch
        assert clone.mcfi == result.mcfi
        assert clone.modules == result.modules
        assert clone.stats == result.stats

    def test_devirtualize_matches_monolithic(self):
        source = workload("sjeng").source
        raws = [compile_object(source, name="sjeng", devirtualize=True),
                compile_object(LIBC_SOURCE, name="libc")]
        legacy = static_link(raws, mcfi=True)
        fast = build_program({"sjeng": source}, devirtualize=True).program
        _assert_same_image(legacy, fast)


class TestBuildGraph:
    def test_dirty_set_is_the_edited_function(self):
        from repro.mir.lowering import lower_unit
        from repro.toolchain import frontend

        def graph_of(source):
            checked = frontend(source, name="m")
            return BuildGraph.of(lower_unit(checked), checked, "x64")

        before = graph_of(_edit_source([1, 2, 3, 4]))
        after = graph_of(_edit_source([1, 2, 99, 4]))
        assert after.dirty_against(before) == {"f2"}
        assert after.dirty_against(None) == set(after.fingerprints)

    def test_string_renumbering_keeps_fingerprints(self):
        # Unit fingerprints digest string *content*, not string ids: a
        # new string in an earlier function must not dirty later ones.
        from repro.mir.lowering import lower_unit
        from repro.toolchain import frontend
        a = ('int f(void) { print_str("one"); return 0; }\n'
             'int g(void) { print_str("late"); return 1; }\n'
             'int main(void) { return f() + g(); }\n')
        b = ('int f(void) { print_str("one"); print_str("two"); return 0; }\n'
             'int g(void) { print_str("late"); return 1; }\n'
             'int main(void) { return f() + g(); }\n')

        def graph_of(source):
            checked = frontend(source, name="m")
            return BuildGraph.of(lower_unit(checked), checked, "x64")

        assert graph_of(b).dirty_against(graph_of(a)) == {"f"}


class TestSourceIndex:
    def test_braces_in_comments_and_strings_are_skipped(self):
        source = ('// a } stray { comment\n'
                  'int f(void) { print_str("}{"); return 0; } /* { */\n'
                  'int main(void) { return f(); }\n')
        spans = index_source(source)
        assert [s.name for s in spans if s.kind == "func"] == ["f", "main"]

    def test_global_initializer_braces_are_not_functions(self):
        spans = index_source("int a[2] = {1, 2};\n"
                             "int main(void) { return a[0]; }\n")
        assert [(s.kind, s.name) for s in spans] == [
            ("other", ""), ("func", "main")]

    def test_unbalanced_source_is_unclassifiable(self):
        assert index_source("int main(void) {") is None
        assert index_source("}") is None

    def test_diff_bodies_flags_only_body_edits(self):
        old = index_source(_edit_source([1, 2, 3, 4]))
        new = index_source(_edit_source([1, 2, 3, 7]))
        assert diff_bodies(old, new) == {"f3"}
        # A head (signature) edit is structural.
        changed = index_source(_edit_source([1, 2, 3, 4]).replace(
            "int f1(int x)", "long f1(int x)"))
        assert diff_bodies(old, changed) is None

    def test_stub_source_keeps_only_dirty_bodies(self):
        spans = index_source(_edit_source([1, 2, 3, 4]))
        stub = stub_source(spans, {"f2"})
        assert "int f2(int x) { return x - 3; }" in stub
        assert "int f0(int x);" in stub
        assert "int main(void);" in stub


class TestCacheBudget:
    def test_unit_entries_evict_lru_under_budget(self, tmp_path):
        from repro.infra.cache import open_cache
        cache = open_cache(tmp_path / "cache")
        build_program({"lbm": workload("lbm").source}, cache=cache)
        assert cache.entry_count()["units"] > 0
        cache.max_mb = 0.0001
        evicted = cache.trim()
        assert evicted > 0
        assert cache.size_bytes() <= 1024

    def test_infra_cache_cli_stats_and_trim(self, tmp_path, capsys):
        from repro.infra.cache import open_cache
        from repro.tools.infra import main
        cache_dir = str(tmp_path / "cache")
        build_program({"t": "int main(void) { return 0; }"},
                      cache=open_cache(cache_dir))
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "units" in out and "MB on disk" in out
        assert main(["cache", "trim", "--cache-dir", cache_dir,
                     "--cache-max-mb", "0.00001"]) == 0
        assert "evicted" in capsys.readouterr().out
        assert main(["cache", "trim", "--cache-dir", cache_dir]) == 2


class TestBuildCli:
    def test_workload_build_reports_and_hashes(self, capsys):
        from repro.tools.build import main
        assert main(["--workload", "lbm", "--rebuilds", "1",
                     "--hash"]) == 0
        out = capsys.readouterr().out
        assert "cold" in out and "warm" in out
        assert "artifact sha256" in out

    def test_artifact_hash_is_deterministic(self):
        from repro.tools.build import artifact_hash
        source = {"t": "int main(void) { return 1; }"}
        assert (artifact_hash(build_program(source).program)
                == artifact_hash(build_program(source).program))

    def test_source_file_build_runs(self, tmp_path, capsys):
        from repro.tools.build import main
        path = tmp_path / "hello.c"
        path.write_text('int main(void) { print_str("hi"); return 0; }')
        assert main([str(path), "--run"]) == 0
        assert "hi" in capsys.readouterr().out


class TestTenantChurn:
    def test_writeset_template_comes_from_real_cfg(self):
        from repro.service.tenancy import tenant_source, writeset_from_program
        program = build_program({"tenant1": tenant_source(1)}).program
        template = writeset_from_program(program)
        assert template.tary and template.bary and template.checks
        assert template.n_classes > 1
        sites = {site for site, _ in template.bary}
        offsets = {off for off, _ in template.tary}
        assert all(site in sites for site, _ in template.checks)
        assert all(target in offsets for _, target in template.checks)

    def test_session_churn_goes_incremental(self):
        from repro.service.tenancy import churn_compile_latencies
        out = churn_compile_latencies(tenants=1, rounds=3)
        assert len(out["seconds"]) == 3
        assert out["kinds"].get("cold") == 1
        assert (out["kinds"].get("incremental", 0)
                + out["kinds"].get("warm", 0)) == 2

    def test_legacy_churn_stays_cold(self):
        from repro.service.tenancy import churn_compile_latencies
        out = churn_compile_latencies(tenants=1, rounds=2, legacy=True)
        assert out["kinds"] == {"cold": 2}
