"""Tests for analysis.report rendering and cfg.typematch explanations."""

import pytest

from repro.analysis.analyzer import analyze_source
from repro.analysis.report import (
    classification_detail,
    fix_guidance,
    table1_markdown,
    table1_text,
    table2_text,
)
from repro.cfg.typematch import (
    explain_match,
    match_report,
    sanity_check,
    why_blocked,
)
from repro.tinyc.types import FuncSig
from repro.toolchain import compile_and_link


@pytest.fixture(scope="module")
def reports():
    sources = {
        "clean": "int main(void) { return 0; }",
        "dirty": """
            void g(void) { }
            typedef int (*weird)(double);
            int main(void) {
                void *escape = (void *)g;                 /* K2 */
                weird w = (weird)g;                        /* K1 */
                void (*z)(void) = 0;                       /* SU */
                return 0;
            }
        """,
    }
    return {name: analyze_source(text, name=name)
            for name, text in sources.items()}


class TestReportRendering:
    def test_table1_text(self, reports):
        text = table1_text(reports, order=["clean", "dirty"])
        assert "clean" in text and "dirty" in text
        assert "VBE" in text

    def test_table2_text_filters_clean(self, reports):
        text = table2_text(reports)
        assert "dirty" in text and "clean" not in text

    def test_markdown(self, reports):
        text = table1_markdown(reports)
        assert text.startswith("| benchmark |")
        assert "| dirty |" in text

    def test_classification_detail(self, reports):
        detail = classification_detail(reports["dirty"])
        assert "K1" in detail and "K2" in detail and "SU" in detail
        assert "address of g" in detail
        assert classification_detail(reports["clean"]) == \
            "(no C1 violations)"

    def test_fix_guidance_targets_k1(self, reports):
        guidance = fix_guidance(reports["dirty"])
        assert len(guidance) == 1
        assert "wrap" in guidance[0] and "g" in guidance[0]
        assert fix_guidance(reports["clean"]) == []


@pytest.fixture(scope="module")
def demo_aux(demo_program):
    return demo_program.module.aux


class TestExplainMatch:
    def test_exact_match(self, demo_aux):
        sig = demo_aux.functions["add"].sig
        verdict = explain_match(sig, demo_aux.functions["add"])
        assert verdict.matches and "identical" in verdict.reason

    def test_not_address_taken(self):
        program = compile_and_link({"t": """
            long quiet(long x) { return x; }
            int main(void) { return (int)quiet(1); }
        """}, mcfi=True)
        aux = program.module.aux
        sig = aux.functions["quiet"].sig
        verdict = explain_match(sig, aux.functions["quiet"])
        assert not verdict.matches
        assert "address-taken" in verdict.reason

    def test_return_type_mismatch(self, demo_aux):
        add = demo_aux.functions["add"]
        wrong = FuncSig(ret="i64", params=add.sig.params, variadic=False)
        verdict = explain_match(wrong, add)
        assert not verdict.matches and "return types differ" in \
            verdict.reason

    def test_arity_and_param_mismatch(self, demo_aux):
        add = demo_aux.functions["add"]
        fewer = FuncSig(ret=add.sig.ret, params=add.sig.params[:1],
                        variadic=False)
        assert "arity differs" in explain_match(fewer, add).reason
        swapped = FuncSig(ret=add.sig.ret,
                          params=("i64",) + add.sig.params[1:],
                          variadic=False)
        assert "parameter 0 differs" in explain_match(swapped, add).reason

    def test_variadic_rules(self, demo_aux):
        add = demo_aux.functions["add"]  # i32(i32,i32), address-taken
        prefix = FuncSig(ret="i32", params=("i32",), variadic=True)
        verdict = explain_match(prefix, add)
        assert verdict.matches and "variadic rule" in verdict.reason
        bad_ret = FuncSig(ret="i64", params=("i32",), variadic=True)
        assert not explain_match(bad_ret, add).matches


class TestWhyBlocked:
    def test_explains_type_mismatch(self, demo_aux):
        classify = demo_aux.functions["classify"]
        wrong_sig = FuncSig(ret="void", params=(), variadic=False)
        answer = why_blocked(wrong_sig, classify.entry, demo_aux)
        assert "classify" in answer

    def test_explains_retsite(self, demo_aux):
        sig = demo_aux.functions["add"].sig
        retsite = demo_aux.retsites[0].address
        answer = why_blocked(sig, retsite, demo_aux)
        assert "return site" in answer

    def test_explains_nowhere(self, demo_aux):
        sig = demo_aux.functions["add"].sig
        assert "not a function entry" in why_blocked(sig, 0xDEA0,
                                                     demo_aux)

    def test_match_report_partition(self, demo_aux):
        sig = demo_aux.functions["add"].sig
        everything = match_report(sig, demo_aux)
        matches = match_report(sig, demo_aux, include_misses=False)
        misses = match_report(sig, demo_aux, include_matches=False)
        assert len(everything) == len(matches) + len(misses)
        assert all(v.matches for v in matches)
        assert {"add", "sub", "mul"} <= {v.function for v in matches}

    def test_sanity_check_flags_orphan_pointer_types(self, demo_aux):
        orphan = FuncSig(ret="f64", params=("f64", "f64", "f64"),
                         variadic=False)
        warning = sanity_check(orphan, demo_aux)
        assert warning is not None and "K1" in warning
        fine = demo_aux.functions["add"].sig
        assert sanity_check(fine, demo_aux) is None
