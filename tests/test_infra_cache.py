"""Correctness of the content-addressed artifact cache.

The contract under test: identical (source, config) hits; any change
to source, architecture mode or format version misses; and a corrupted
entry is evicted and degrades to a miss instead of being served.
"""

import pytest

from repro.infra.cache import (ArtifactCache, CacheStats, open_cache,
                               source_digest)
from repro.infra.targets import target as get_target
from repro.module import objectfile
from repro.toolchain import compile_module

SOURCE = """
    long twice(long x) { return 2 * x; }
    int main(void) { print_int(twice(21)); return 0; }
"""
EDITED_SOURCE = SOURCE.replace("2 * x", "x + x")


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture()
def raw_x64():
    return compile_module(SOURCE, name="unit", arch="x64")


class TestKeys:
    def test_hit_on_identical_source_and_config(self, cache):
        assert cache.object_key("unit", "x64", SOURCE) == \
            cache.object_key("unit", "x64", SOURCE)

    def test_miss_on_source_edit(self, cache):
        assert cache.object_key("unit", "x64", SOURCE) != \
            cache.object_key("unit", "x64", EDITED_SOURCE)

    def test_miss_on_arch_flip(self, cache):
        assert cache.object_key("unit", "x64", SOURCE) != \
            cache.object_key("unit", "x32", SOURCE)

    def test_program_key_tracks_modules_and_policy(self, cache):
        keys = [cache.object_key("unit", "x64", SOURCE)]
        base = cache.program_key("x64", True, keys)
        assert base != cache.program_key("x64", False, keys)
        other = [cache.object_key("unit", "x64", EDITED_SOURCE)]
        assert base != cache.program_key("x64", True, other)

    def test_source_digest_stable(self):
        assert source_digest(SOURCE) == source_digest(SOURCE)
        assert source_digest(SOURCE) != source_digest(EDITED_SOURCE)


class TestObjectRoundTrip:
    def test_store_then_hit(self, cache, raw_x64):
        key = cache.object_key("unit", "x64", SOURCE)
        assert cache.get_object(key, "x64") is None  # cold: miss
        cache.put_object(key, raw_x64)
        loaded = cache.get_object(key, "x64")
        assert loaded is not None
        assert loaded.name == raw_x64.name
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_arch_flip_is_a_miss(self, cache, raw_x64):
        cache.put_object(cache.object_key("unit", "x64", SOURCE), raw_x64)
        key32 = cache.object_key("unit", "x32", SOURCE)
        assert cache.get_object(key32, "x32") is None

    def test_source_edit_is_a_miss(self, cache, raw_x64):
        cache.put_object(cache.object_key("unit", "x64", SOURCE), raw_x64)
        edited = cache.object_key("unit", "x64", EDITED_SOURCE)
        assert cache.get_object(edited, "x64") is None

    def test_cross_arch_entry_never_served(self, cache, raw_x64):
        """An x64 object planted under an x32 key (torn cache dir,
        manual tampering) is rejected by the arch check and evicted."""
        key32 = cache.object_key("unit", "x32", SOURCE)
        cache.put_object(key32, raw_x64)  # wrong: x64 module at x32 key
        assert cache.get_object(key32, "x32") is None
        assert cache.stats.evictions == 1

    def test_corrupted_entry_evicted(self, cache, raw_x64):
        key = cache.object_key("unit", "x64", SOURCE)
        path = cache.put_object(key, raw_x64)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get_object(key, "x64") is None
        assert cache.stats.evictions == 1
        assert not path.exists()
        # and the slot is reusable
        cache.put_object(key, raw_x64)
        assert cache.get_object(key, "x64") is not None

    def test_stale_format_version_evicted(self, cache, raw_x64):
        """A .mcfo from an older toolchain is rejected and evicted."""
        key = cache.object_key("unit", "x64", SOURCE)
        path = cache.put_object(key, raw_x64)
        blob = bytearray(path.read_bytes())
        blob[len(objectfile.MAGIC)] = 1  # rewrite version byte to v1
        path.write_bytes(bytes(blob))
        assert cache.get_object(key, "x64") is None
        assert cache.stats.evictions == 1


class TestProgramAndRunEntries:
    def test_program_round_trip_and_corruption(self, cache):
        from repro.build.fingerprint import prelude_digest
        from repro.infra.campaign import build_program
        program = build_program("libquantum", "x64", True, cache=cache)
        keys = [cache.object_key(n, "x64", s,
                                 prelude=prelude_digest(True))
                for n, s in get_target("libquantum").sources().items()]
        key = cache.program_key("x64", True, keys)
        fetched = cache.get_program(key)
        assert fetched is not None
        assert bytes(fetched.module.code) == bytes(program.module.code)
        path = cache._program_path(key)
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get_program(key) is None
        assert not path.exists()

    def test_faulting_run_never_memoized(self, cache):
        from repro.runtime.runtime import RunResult
        bad = RunResult(fault=RuntimeError("boom"))
        assert cache.put_run(cache.run_key("k"), bad) is None
        assert cache.get_run(cache.run_key("k")) is None

    def test_ok_run_round_trip(self, cache):
        from repro.runtime.runtime import RunResult
        good = RunResult(exit_code=0, output=b"checksum 1", cycles=123,
                         instructions=45)
        key = cache.run_key("prog-key")
        cache.put_run(key, good)
        fetched = cache.get_run(key)
        assert fetched.cycles == 123 and fetched.output == b"checksum 1"

    def test_run_key_depends_on_program_and_params(self, cache):
        assert cache.run_key("a") != cache.run_key("b")
        assert cache.run_key("a", seed=1) != cache.run_key("a", seed=2)


class TestStats:
    def test_hit_rate_and_delta(self):
        stats = CacheStats(hits=9, misses=1)
        assert stats.hit_rate == 0.9
        later = CacheStats(hits=12, misses=2)
        delta = later.delta(stats)
        assert delta.hits == 3 and delta.misses == 1

    def test_open_cache_none_passthrough(self, tmp_path):
        assert open_cache(None) is None
        assert open_cache(tmp_path / "c") is not None

    def test_entry_count(self, cache, raw_x64):
        cache.put_object(cache.object_key("unit", "x64", SOURCE), raw_x64)
        counts = cache.entry_count()
        assert counts["objects"] == 1
        assert counts["programs"] == 0
