"""Tests for runtime code installation (the JIT scenario) and module
unloading (dlclose) — the paper's future-work directions built out."""

import pytest

from repro.errors import RuntimeError_
from repro.linker.dynamic_linker import DynamicLinker
from repro.runtime.jit import JitEngine, make_unary_op
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_and_link, compile_module


def jit_runtime(source):
    program = compile_and_link({"main": source}, mcfi=True)
    runtime = Runtime(program)
    JitEngine(runtime, verify=True)
    return runtime


class TestJitInstall:
    def test_guest_compiles_and_calls(self):
        runtime = jit_runtime(r"""
            int main(void) {
                long addr = jit_compile(
                    "long sq(long x) { return x * x; }", "sq");
                long (*f)(long) = (long (*)(long))addr;
                if (addr == 0) { return 1; }
                print_int(f(9));
                return 0;
            }
        """)
        result = runtime.run()
        assert result.ok, result.violation or result.fault
        assert result.output == b"81"
        assert runtime.jit_engine.stats.installs == 1
        assert runtime.id_tables.version == 1

    def test_repeated_installs_bump_versions(self):
        runtime = jit_runtime(r"""
            int main(void) {
                long total = 0;
                int i;
                char *sources[3];
                sources[0] = "long g0(long x) { return x + 1; }";
                sources[1] = "long g1(long x) { return x + 2; }";
                sources[2] = "long g2(long x) { return x + 3; }";
                {
                    char *names[3];
                    names[0] = "g0"; names[1] = "g1"; names[2] = "g2";
                    for (i = 0; i < 3; i++) {
                        long (*f)(long) = (long (*)(long))
                            jit_compile(sources[i], names[i]);
                        total += f(10);
                    }
                }
                print_int(total);
                return 0;
            }
        """)
        result = runtime.run()
        assert result.ok, result.violation or result.fault
        assert result.output == b"36"
        assert runtime.id_tables.version == 3
        assert runtime.jit_engine.stats.installs == 3

    def test_jitted_code_is_type_checked(self):
        """JIT-sprayed code of the wrong type is unreachable: calling a
        freshly installed long(long,long) through a long(long) pointer
        must halt."""
        runtime = jit_runtime(r"""
            int main(void) {
                long addr = jit_compile(
                    "long two(long a, long b) { return a + b; }", "two");
                long (*f)(long) = (long (*)(long))addr;  /* wrong type */
                print_int(f(1));
                return 0;
            }
        """)
        result = runtime.run()
        assert result.violation is not None
        assert "mismatch" in result.violation.reason

    def test_jitted_pages_sealed(self):
        runtime = jit_runtime(r"""
            int main(void) {
                jit_compile("long id1(long x) { return x; }", "id1");
                return 0;
            }
        """)
        assert runtime.run().ok
        library = runtime.dynamic_linker.loaded[1]
        assert runtime.memory.is_executable(library.module.base)
        assert not runtime.memory.is_writable(library.module.base)

    def test_bad_source_returns_zero(self):
        runtime = jit_runtime(r"""
            int main(void) {
                long addr = jit_compile("long broken(", "broken");
                print_int(addr == 0 ? 1 : 0);
                return 0;
            }
        """)
        result = runtime.run()
        assert result.ok and result.output == b"1"

    def test_host_api_and_helper(self):
        program = compile_and_link(
            {"main": "int main(void) { return 0; }"}, mcfi=True)
        runtime = Runtime(program)
        engine = JitEngine(runtime)
        source = make_unary_op("triple", "x * 3")
        address = engine.install_function(source, "triple")
        assert address != 0
        assert engine.stats.compiled_bytes > 0
        assert "triple" in engine.stats.installed_functions

    def test_jit_without_engine_returns_zero(self):
        program = compile_and_link({"main": r"""
            int main(void) {
                print_int(jit_compile("long x0(long x){return x;}", "x0"));
                return 0;
            }
        """}, mcfi=True)
        result = Runtime(program).run()
        assert result.ok and result.output == b"0"


class TestDlclose:
    SOURCE = r"""
        int main(void) {
            long h = dlopen("plugin");
            long sym = dlsym(h, "libfn");
            int (*f)(int) = (int (*)(int))sym;
            print_int(f(10));
            print_char(' ');
            print_int(dlclose(h));
            print_char(' ');
            f(10);                      /* stale: must halt */
            print_str("UNREACHABLE");
            return 0;
        }
    """

    def make(self):
        program = compile_and_link({"main": self.SOURCE}, mcfi=True)
        runtime = Runtime(program)
        linker = DynamicLinker(runtime)
        linker.register("plugin", compile_module(
            "int libfn(int x) { return x * 3 + 1; }", name="plugin"))
        return runtime, linker

    def test_stale_pointer_halts_after_unload(self):
        runtime, _ = self.make()
        result = runtime.run()
        assert result.output == b"31 0 "
        assert result.violation is not None
        assert "not a permitted" in result.violation.reason

    def test_unloaded_pages_not_executable(self):
        runtime, linker = self.make()
        handle = linker.dlopen("plugin")
        base = linker.loaded[handle].module.base
        assert runtime.memory.is_executable(base)
        linker.dlclose(handle)
        assert handle not in linker.loaded
        assert not runtime.memory.is_executable(base)

    def test_policy_shrinks(self):
        runtime, linker = self.make()
        before = runtime.cfg.stats()
        result = runtime.run()
        after = runtime.cfg.stats()
        assert after["IBs"] == before["IBs"]     # lib sites removed again
        assert runtime.id_tables.version == 2    # load + unload

    def test_dlclose_unknown_handle(self):
        runtime, linker = self.make()
        assert linker.dlclose(99) == -1

    def test_reload_after_unload(self):
        runtime, linker = self.make()
        handle = linker.dlopen("plugin")
        assert linker.dlclose(handle) == 0
        # Re-registering under the same name loads a fresh copy.
        linker.register("plugin", compile_module(
            "int libfn(int x) { return x + 1000; }", name="plugin2"))
        handle2 = linker.dlopen("plugin")
        assert handle2 != 0 and handle2 != handle
        assert linker.dlsym(handle2, "libfn") != 0


class TestAbaMitigation:
    def test_counter_tracks_updates(self):
        runtime, linker = TestDlclose().make()
        linker.dlopen("plugin")
        assert runtime.id_tables.updates_since_reset == 1

    def test_guard_fires_at_version_limit(self):
        from repro.core.tables import IdTables
        from repro.core.transactions import UpdateLock, \
            refresh_transaction
        from repro.vm.memory import TableMemory
        tables = IdTables(TableMemory())
        tables.install({0x1000: 1}, {0: 1})
        tables.updates_since_reset = 16382
        with pytest.raises(RuntimeError_, match="quiescence"):
            for _ in refresh_transaction(tables, UpdateLock()).run():
                pass

    def test_syscalls_reset_at_quiescence(self):
        """Every thread passing a syscall resets the ABA counter."""
        runtime, linker = TestDlclose().make()
        result = runtime.run()  # dlopen + dlclose + syscalls afterwards
        # the final write/exit syscalls observed quiescence after the
        # updates, so the counter was reset
        assert runtime.id_tables.updates_since_reset == 0
        assert runtime.id_tables.version == 2  # versions keep advancing
