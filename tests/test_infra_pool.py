"""Failure-path coverage for the campaign worker pool.

All fault injection is deterministic: flaky workers count their
attempts in a file (worker processes share no memory with the
orchestrator), crashes use ``os._exit``, and timeouts use a sleep far
longer than the configured limit.
"""

import json
import os
import time

import pytest

from repro.infra.pool import Job, JobResult, WorkerPool
from repro.infra.results import ResultStore


def _square(x):
    return x * x


def _raise_value_error():
    raise ValueError("injected failure")


def _hard_crash():
    os._exit(23)  # no exception, no report: a real worker crash


def _sleep_forever():
    time.sleep(600)


def _flaky(counter_path, fail_attempts):
    """Fail deterministically for the first ``fail_attempts`` calls."""
    attempt = 1
    if os.path.exists(counter_path):
        with open(counter_path) as fh:
            attempt = int(fh.read()) + 1
    with open(counter_path, "w") as fh:
        fh.write(str(attempt))
    if attempt <= fail_attempts:
        raise RuntimeError(f"injected failure on attempt {attempt}")
    return f"succeeded on attempt {attempt}"


class TestHappyPath:
    def test_results_in_submission_order(self):
        pool = WorkerPool(workers=4)
        results = pool.map(_square, [(i,) for i in range(10)])
        assert [r.value for r in results] == [i * i for i in range(10)]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_more_jobs_than_workers(self):
        pool = WorkerPool(workers=2)
        results = pool.map(_square, [(i,) for i in range(7)])
        assert [r.value for r in results] == [i * i for i in range(7)]

    def test_job_ids_default_and_explicit(self):
        pool = WorkerPool(workers=2)
        results = pool.run([Job(fn=_square, args=(2,)),
                            Job(fn=_square, args=(3,), id="named")])
        assert results[0].id == "job-0"
        assert results[1].id == "named"


class TestWorkerException:
    def test_exception_surfaces_with_type_and_traceback(self):
        pool = WorkerPool(workers=2)
        [result] = pool.run([Job(fn=_raise_value_error)])
        assert not result.ok
        assert result.error_type == "ValueError"
        assert "injected failure" in result.error
        assert "Traceback" in result.tb
        assert not result.timed_out and not result.crashed

    def test_one_failure_does_not_poison_others(self):
        pool = WorkerPool(workers=3)
        results = pool.run([Job(fn=_square, args=(2,)),
                            Job(fn=_raise_value_error),
                            Job(fn=_square, args=(5,))])
        assert results[0].value == 4
        assert not results[1].ok
        assert results[2].value == 25


class TestTimeout:
    def test_per_job_timeout_kills_the_worker(self):
        pool = WorkerPool(workers=2)
        start = time.perf_counter()
        [result] = pool.run(
            [Job(fn=_sleep_forever, timeout=0.5, retries=0)])
        assert time.perf_counter() - start < 30
        assert not result.ok
        assert result.timed_out
        assert result.error_type == "Timeout"

    def test_pool_default_timeout(self):
        pool = WorkerPool(workers=2, timeout=0.5)
        [result] = pool.run([Job(fn=_sleep_forever)])
        assert result.timed_out


class TestCrashCapture:
    def test_crash_reported_not_hung(self):
        pool = WorkerPool(workers=2)
        [result] = pool.run([Job(fn=_hard_crash, retries=0)])
        assert not result.ok
        assert result.crashed
        assert result.error_type == "WorkerCrash"
        assert "23" in result.error


class TestRetries:
    def test_retry_then_succeed(self, tmp_path):
        counter = str(tmp_path / "attempts")
        pool = WorkerPool(workers=2)
        [result] = pool.run([Job(fn=_flaky, args=(counter, 2),
                                 retries=2)])
        assert result.ok
        assert result.attempts == 3
        assert result.value == "succeeded on attempt 3"

    def test_retry_exhausted(self, tmp_path):
        counter = str(tmp_path / "attempts")
        pool = WorkerPool(workers=2)
        [result] = pool.run([Job(fn=_flaky, args=(counter, 99),
                                 retries=1)])
        assert not result.ok
        assert result.attempts == 2
        assert "attempt 2" in result.error

    def test_crash_is_retried_too(self, tmp_path):
        counter = str(tmp_path / "attempts")

        def crash_once(path):
            if not os.path.exists(path):
                with open(path, "w") as fh:
                    fh.write("1")
                os._exit(9)
            return "recovered"

        pool = WorkerPool(workers=2, retries=1)
        [result] = pool.run([Job(fn=crash_once, args=(counter,))])
        assert result.ok and result.attempts == 2


class TestJsonlSurfacing:
    def test_retry_exhausted_lands_in_jsonl_record(self, tmp_path):
        """The ISSUE's contract: retry-exhausted failures are visible
        in the structured result store, attempts included."""
        counter = str(tmp_path / "attempts")
        store = ResultStore(tmp_path / "results.jsonl")
        pool = WorkerPool(workers=2)
        [result] = pool.run([Job(fn=_flaky, args=(counter, 99),
                                 retries=1, id="flaky-cell")])
        store.append_job(result, target="flaky-cell")

        [record] = [json.loads(line) for line in
                    (tmp_path / "results.jsonl").read_text().splitlines()]
        assert record["kind"] == "job"
        assert record["job"] == "flaky-cell"
        assert record["status"] == "error"
        assert record["attempts"] == 2
        assert "attempt 2" in record["error"]

    def test_timeout_and_crash_statuses(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        pool = WorkerPool(workers=2)
        results = pool.run([
            Job(fn=_sleep_forever, timeout=0.5, retries=0, id="slow"),
            Job(fn=_hard_crash, retries=0, id="crashy"),
        ])
        for result in results:
            store.append_job(result)
        by_job = {r["job"]: r for r in store.records()}
        assert by_job["slow"]["status"] == "timeout"
        assert by_job["crashy"]["status"] == "crashed"


class TestFinalAttemptTimeout:
    """Regression: a job that times out on its *final* attempt must
    record the full attempt count, in the result and in JSONL."""

    def test_timeout_on_final_attempt_counts_all_attempts(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        pool = WorkerPool(workers=2)
        [result] = pool.run([Job(fn=_sleep_forever, timeout=0.3,
                                 retries=2, id="wedged")])
        store.append_job(result, target="wedged")
        assert not result.ok and result.timed_out
        assert result.attempts == 3  # 1 try + 2 retries, all timed out
        # Cumulative across attempts: three 0.3s timeouts, not one.
        assert result.seconds >= 0.8

        [record] = store.records()
        assert record["status"] == "timeout"
        assert record["attempts"] == 3

    def test_seconds_cumulative_across_mixed_attempts(self, tmp_path):
        counter = str(tmp_path / "attempts")
        pool = WorkerPool(workers=2)
        [result] = pool.run([Job(fn=_flaky, args=(counter, 2),
                                 retries=2)])
        assert result.ok and result.attempts == 3
        assert result.seconds > 0


class TestBackoff:
    def test_retry_delay_schedule_is_exponential(self):
        pool = WorkerPool(backoff=0.1, backoff_factor=2.0, jitter=0.0)
        assert pool._retry_delay(1) == pytest.approx(0.1)
        assert pool._retry_delay(2) == pytest.approx(0.2)
        assert pool._retry_delay(3) == pytest.approx(0.4)

    def test_jitter_is_seeded_and_bounded(self):
        delays_a = [WorkerPool(backoff=0.1, jitter=0.05,
                               seed=42)._retry_delay(1)
                    for _ in range(3)]
        delays_b = [WorkerPool(backoff=0.1, jitter=0.05,
                               seed=42)._retry_delay(1)
                    for _ in range(3)]
        assert delays_a == delays_b  # replayable
        assert all(0.1 <= d <= 0.15 for d in delays_a)

    def test_no_backoff_by_default(self):
        assert WorkerPool()._retry_delay(1) == 0.0

    def test_backoff_spaces_retries_in_forked_mode(self, tmp_path):
        counter = str(tmp_path / "attempts")
        pool = WorkerPool(workers=2, backoff=0.3, backoff_factor=1.0)
        start = time.perf_counter()
        [result] = pool.run([Job(fn=_flaky, args=(counter, 1),
                                 retries=1)])
        elapsed = time.perf_counter() - start
        assert result.ok and result.attempts == 2
        assert elapsed >= 0.3  # the retry waited out the backoff

    def test_backoff_applies_inline_too(self, tmp_path):
        counter = str(tmp_path / "attempts")
        pool = WorkerPool(retries=1, backoff=0.2, backoff_factor=1.0)
        pool._ctx = None

        def flaky_local():
            return _flaky(counter, 1)

        start = time.perf_counter()
        [result] = pool.run([Job(fn=flaky_local)])
        assert result.ok and result.attempts == 2
        assert time.perf_counter() - start >= 0.2


class TestCircuitBreaker:
    def test_breaker_opens_after_threshold(self):
        pool = WorkerPool(workers=1, breaker_threshold=2)
        results = pool.run([
            Job(fn=_raise_value_error, id=f"j{i}", group="broken")
            for i in range(5)])
        assert [r.error_type for r in results[:2]] == \
            ["ValueError", "ValueError"]
        assert all(r.error_type == "CircuitOpen" for r in results[2:])
        assert all(r.attempts == 0 for r in results[2:])
        assert all("circuit open" in r.error for r in results[2:])

    def test_success_resets_the_count(self):
        pool = WorkerPool(workers=1, breaker_threshold=2)
        results = pool.run([
            Job(fn=_raise_value_error, group="g"),
            Job(fn=_square, args=(3,), group="g"),
            Job(fn=_raise_value_error, group="g"),
            Job(fn=_raise_value_error, group="g"),
            Job(fn=_square, args=(4,), group="g"),  # breaker now open
        ])
        assert results[1].ok
        assert results[4].error_type == "CircuitOpen"

    def test_groups_are_independent(self):
        pool = WorkerPool(workers=1, breaker_threshold=1)
        results = pool.run([
            Job(fn=_raise_value_error, group="bad"),
            Job(fn=_square, args=(5,), group="good"),
            Job(fn=_raise_value_error, group="bad"),
        ])
        assert results[1].ok and results[1].value == 25
        assert results[2].error_type == "CircuitOpen"

    def test_ungrouped_jobs_never_trip(self):
        pool = WorkerPool(workers=1, breaker_threshold=1)
        results = pool.run([Job(fn=_raise_value_error)
                            for _ in range(3)])
        assert all(r.error_type == "ValueError" for r in results)

    def test_breaker_state_resets_between_runs(self):
        pool = WorkerPool(workers=1, breaker_threshold=1)
        [first] = pool.run([Job(fn=_raise_value_error, group="g")])
        assert first.error_type == "ValueError"
        [second] = pool.run([Job(fn=_raise_value_error, group="g")])
        assert second.error_type == "ValueError"  # fresh breaker

    def test_breaker_applies_inline(self):
        pool = WorkerPool(breaker_threshold=1)
        pool._ctx = None
        results = pool.run([Job(fn=_raise_value_error, group="g"),
                            Job(fn=_square, args=(2,), group="g")])
        assert results[1].error_type == "CircuitOpen"

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(breaker_threshold=0)

    def test_cooldown_validated(self):
        with pytest.raises(ValueError):
            WorkerPool(breaker_threshold=1, breaker_cooldown=-1.0)


class TestBreakerCooldown:
    """Regression (PR 7): PR 2's breaker never closed again once it
    tripped.  The pool now runs the shared three-state
    :class:`repro.infra.breaker.CircuitBreaker`: after the cooldown a
    half-open probe is admitted, and a probe success re-closes the
    circuit within the *same* run."""

    def test_probe_after_cooldown_reopens_the_group(self, tmp_path):
        counter = str(tmp_path / "attempts")
        # Zero cooldown: the very next job after the trip is the
        # half-open probe.  _flaky fails once then succeeds, so the
        # probe closes the breaker and the rest of the group flows.
        pool = WorkerPool(workers=1, breaker_threshold=1,
                          breaker_cooldown=0.0)
        results = pool.run([
            Job(fn=_flaky, args=(counter, 1), group="g", id="trip"),
            Job(fn=_flaky, args=(counter, 1), group="g", id="probe"),
            Job(fn=_square, args=(3,), group="g", id="after"),
        ])
        assert results[0].error_type == "RuntimeError"  # tripped
        assert results[1].ok                            # probe ran
        assert results[2].ok and results[2].value == 9  # circuit closed

    def test_failed_probe_reopens_the_circuit(self):
        pool = WorkerPool(workers=1, breaker_threshold=1,
                          breaker_cooldown=0.0)
        results = pool.run([
            Job(fn=_raise_value_error, group="g", id="trip"),
            Job(fn=_raise_value_error, group="g", id="probe"),
        ])
        assert results[0].error_type == "ValueError"
        # The probe was admitted (it ran and failed for real, not
        # via fast-fail) and its failure re-opened the circuit.
        assert results[1].error_type == "ValueError"
        breaker = pool._breakers["g"]
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_long_cooldown_keeps_fast_failing(self):
        pool = WorkerPool(workers=1, breaker_threshold=1,
                          breaker_cooldown=600.0)
        results = pool.run([
            Job(fn=_raise_value_error, group="g")
            for _ in range(4)])
        assert results[0].error_type == "ValueError"
        assert all(r.error_type == "CircuitOpen" for r in results[1:])

    def test_half_open_probe_inline_mode(self, tmp_path):
        counter = str(tmp_path / "attempts")
        pool = WorkerPool(breaker_threshold=1, breaker_cooldown=0.0)
        pool._ctx = None

        def flaky_local():
            return _flaky(counter, 1)

        results = pool.run([Job(fn=flaky_local, group="g"),
                            Job(fn=flaky_local, group="g"),
                            Job(fn=flaky_local, group="g")])
        assert not results[0].ok
        assert results[1].ok and results[2].ok


class TestCircuitBreakerStateMachine:
    """The shared breaker itself, on an injected fake clock — the same
    state machine the table-service shard health monitor drives on the
    scheduler's logical tick counter."""

    def _make(self, **kwargs):
        from repro.infra.breaker import CircuitBreaker
        state = {"now": 0.0}
        defaults = dict(threshold=2, cooldown=10.0,
                        clock=lambda: state["now"])
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), state

    def test_trips_at_threshold_and_waits_out_cooldown(self):
        breaker, now = self._make()
        breaker.record(False)
        assert breaker.state == "closed"
        breaker.record(False)
        assert breaker.state == "open"
        assert not breaker.allow()
        now["now"] = 9.9
        assert not breaker.allow()
        now["now"] = 10.0
        assert breaker.allow()               # the half-open probe
        assert breaker.state == "half-open"
        assert not breaker.allow()           # only one probe slot

    def test_probe_success_closes(self):
        breaker, now = self._make(threshold=1)
        breaker.record(False)
        now["now"] = 10.0
        assert breaker.allow()
        breaker.record(True)
        assert breaker.state == "closed"
        assert breaker.failures == 0
        assert breaker.allow()

    def test_probe_failure_escalates_cooldown(self):
        breaker, now = self._make(threshold=1, cooldown_factor=2.0)
        breaker.record(False)                 # trip 1: cooldown 10
        assert breaker.reopen_at == 10.0
        now["now"] = 10.0
        assert breaker.allow()
        breaker.record(False)                 # trip 2: cooldown 20
        assert breaker.state == "open"
        assert breaker.reopen_at == 30.0
        now["now"] = 29.0
        assert not breaker.allow()
        now["now"] = 30.0
        assert breaker.allow()

    def test_max_cooldown_caps_escalation(self):
        breaker, now = self._make(threshold=1, cooldown_factor=10.0,
                                  max_cooldown=15.0)
        breaker.record(False)
        for trip in range(3):
            now["now"] = breaker.reopen_at
            assert breaker.allow()
            breaker.record(False)
        assert breaker.current_cooldown() == 15.0

    def test_force_open_skips_the_count(self):
        breaker, _ = self._make(threshold=100)
        breaker.force_open("integrity audit failed")
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.transitions[-1][3] == "integrity audit failed"

    def test_seeded_jitter_is_replayable(self):
        from repro.infra.breaker import CircuitBreaker
        delays = []
        for _ in range(2):
            breaker = CircuitBreaker(threshold=1, cooldown=10.0,
                                     clock=lambda: 0.0,
                                     jitter=5.0, seed=42)
            breaker.record(False)
            delays.append(breaker.reopen_at)
        assert delays[0] == delays[1]
        assert 10.0 <= delays[0] <= 15.0

    def test_success_resets_consecutive_count(self):
        breaker, _ = self._make(threshold=2)
        breaker.record(False)
        breaker.record(True)
        breaker.record(False)
        assert breaker.state == "closed"

    def test_transitions_log_records_every_move(self):
        breaker, now = self._make(threshold=1)
        breaker.record(False)
        now["now"] = 10.0
        breaker.allow()
        breaker.record(True)
        states = [(frm, to) for _, frm, to, _ in breaker.transitions]
        assert states == [("closed", "open"),
                          ("open", "half-open"),
                          ("half-open", "closed")]

    def test_reset_restores_pristine_state(self):
        breaker, _ = self._make(threshold=1)
        breaker.record(False)
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.trips == 0 and breaker.failures == 0
        assert breaker.allow()

    def test_validation(self):
        from repro.infra.breaker import CircuitBreaker
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestWorkerFaultPlan:
    """The repro.faults worker-fault injector through the real pool."""

    def test_plan_letters_drive_attempts(self, tmp_path):
        from repro.faults.injectors import faulty_job

        attempt_file = str(tmp_path / "attempts")
        body = faulty_job(_square, plan="ec.", attempt_file=attempt_file)
        pool = WorkerPool(workers=1, timeout=5.0)
        [result] = pool.run([Job(fn=body, args=(6,), retries=2)])
        # Attempt 1 raises, attempt 2 crashes, attempt 3 succeeds.
        assert result.ok and result.value == 36
        assert result.attempts == 3

    def test_timeout_plan_final_attempt(self, tmp_path):
        from repro.faults.injectors import faulty_job

        attempt_file = str(tmp_path / "attempts")
        body = faulty_job(_square, plan="t", attempt_file=attempt_file)
        pool = WorkerPool(workers=1)
        [result] = pool.run([Job(fn=body, args=(2,), timeout=0.3,
                                 retries=0)])
        assert result.timed_out and result.attempts == 1


class TestInlineFallback:
    def test_inline_mode_without_fork(self):
        pool = WorkerPool(workers=2, retries=1)
        pool._ctx = None  # simulate a platform without fork
        results = pool.run([Job(fn=_square, args=(6,)),
                            Job(fn=_raise_value_error)])
        assert results[0].ok and results[0].value == 36
        assert not results[1].ok
        assert results[1].error_type == "ValueError"
        assert results[1].attempts == 2  # retries honoured inline


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_job_result_record_shape(self):
        record = JobResult(id="x", ok=True, attempts=1,
                           seconds=0.5).to_dict()
        assert record["status"] == "ok"
        assert record["job"] == "x"
