"""Tests for the dynamic linker: the paper's dlopen protocol (Sec. 6)."""

import pytest

from repro.linker.dynamic_linker import DynamicLinker
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_and_link, compile_module
from repro.vm.scheduler import GeneratorTask

MAIN_SOURCE = {"main": """
    int libfn(int x);
    int main(void) {
        long h = dlopen("plugin");
        if (h == 0) { return 99; }
        print_int(libfn(10));          /* via PLT */
        print_char(' ');
        {
            long sym = dlsym(h, "libfn");
            int (*f)(int) = (int (*)(int))sym;
            print_int(f(20));          /* via dlsym'd pointer */
        }
        return 0;
    }
"""}

LIB_SOURCE = "int libfn(int x) { return x * 3 + 1; }"


def make_runtime(verify=False):
    program = compile_and_link(MAIN_SOURCE, mcfi=True,
                               allow_unresolved=["libfn"])
    runtime = Runtime(program)
    linker = DynamicLinker(runtime, verify=verify)
    linker.register("plugin", compile_module(LIB_SOURCE, name="plugin"))
    return runtime, linker


class TestDlopen:
    def test_full_protocol_single_threaded(self):
        runtime, _ = make_runtime(verify=True)
        result = runtime.run()
        assert result.ok, result.violation or result.fault
        assert result.output == b"31 61"
        assert result.exit_code == 0

    def test_unknown_library_returns_zero(self):
        runtime, _ = make_runtime()
        runtime.dynamic_linker.registry.clear()
        result = runtime.run()
        assert result.exit_code == 99

    def test_dlopen_idempotent(self):
        runtime, linker = make_runtime()
        first = linker.dlopen("plugin")
        second = linker.dlopen("plugin")
        assert first == second != 0

    def test_library_code_sealed_after_load(self):
        runtime, linker = make_runtime()
        handle = linker.dlopen("plugin")
        module = linker.loaded[handle].module
        assert runtime.memory.is_executable(module.base)
        assert not runtime.memory.is_writable(module.base)

    def test_wrong_arch_library_rejected(self):
        from repro.errors import LinkError
        runtime, linker = make_runtime()
        lib32 = compile_module(LIB_SOURCE, name="lib32", arch="x32")
        with pytest.raises(LinkError):
            linker.register("plugin32", lib32)

    def test_library_with_unresolved_import_rejected(self):
        from repro.errors import LinkError
        runtime, linker = make_runtime()
        bad = compile_module(
            "int nowhere(int); int libfn2(int x) { return nowhere(x); }",
            name="bad")
        linker.register("bad", bad)
        with pytest.raises(LinkError):
            linker.dlopen("bad")


class TestCfgUpdate:
    def test_cfg_grows_after_dlopen(self):
        runtime, linker = make_runtime()
        before = runtime.cfg.stats()
        linker.dlopen("plugin")
        after = runtime.cfg.stats()
        assert after["IBs"] > before["IBs"]
        assert after["IBTs"] > before["IBTs"]

    def test_table_version_bumped(self):
        runtime, linker = make_runtime()
        assert runtime.id_tables.version == 0
        linker.dlopen("plugin")
        assert runtime.id_tables.version == 1

    def test_got_rewritten_to_library_entry(self):
        runtime, linker = make_runtime()
        handle = linker.dlopen("plugin")
        got = runtime.program.got_slots["libfn"]
        value = int.from_bytes(runtime.memory.host_read(got, 8), "little")
        assert value == linker.loaded[handle].exports["libfn"]

    def test_dlsym_unknown_symbol_returns_zero(self):
        runtime, linker = make_runtime()
        handle = linker.dlopen("plugin")
        assert linker.dlsym(handle, "missing") == 0
        assert linker.dlsym(999, "libfn") == 0

    def test_library_calls_back_into_program(self):
        """lib -> main-program symbol resolution (libc functions)."""
        sources = {"main": """
            long sum3(long a);
            int main(void) {
                long h = dlopen("plugin");
                long sym = dlsym(h, "sum3");
                long (*f)(long) = (long (*)(long))sym;
                print_int(f(5));
                return 0;
            }
        """}
        program = compile_and_link(sources, mcfi=True,
                                   allow_unresolved=["sum3"])
        runtime = Runtime(program)
        linker = DynamicLinker(runtime)
        lib = compile_module(
            "long sum3(long a) { print_str(\"lib:\"); return a + 3; }",
            name="plugin")
        linker.register("plugin", lib)
        result = runtime.run()
        assert result.ok, result.violation or result.fault
        assert result.output == b"lib:8"


class TestConcurrentDlopen:
    """The headline scenario: one thread dlopens while others run."""

    SOURCE = {"main": """
        int libfn(int x);
        long ticks;
        void spinner(long n) {
            long i;
            for (i = 0; i < n; i++) {
                ticks += classify((int)(i & 7));
                sched_yield();
            }
        }
        int classify(int x) {
            switch (x) {
                case 0: return 1;
                case 1: return 2;
                case 2: return 3;
                case 3: return 4;
                default: return 0;
            }
        }
        int main(void) {
            long h;
            thread_spawn(spinner, 400);
            h = dlopen("plugin");           /* concurrent update */
            if (h == 0) { return 99; }
            print_int(libfn(10));
            return 0;
        }
    """}

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_dlopen_during_execution(self, seed):
        program = compile_and_link(self.SOURCE, mcfi=True,
                                   allow_unresolved=["libfn"])
        runtime = Runtime(program)
        linker = DynamicLinker(runtime)
        linker.register("plugin", compile_module(LIB_SOURCE,
                                                 name="plugin"))
        result = runtime.run_scheduled(seed=seed, burst=4)
        assert result.ok, result.violation or result.fault
        assert result.output == b"31"
        assert runtime.id_tables.version == 1
