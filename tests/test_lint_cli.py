"""Tests for ``python -m repro lint`` (the lint plane CLI, PR 4)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.dataflow import Diagnostic, LintReport
from repro.cli import main as cli_main
from repro.tools import lint as lint_tool

REPO_BASELINE = Path(__file__).resolve().parent.parent / \
    "lint_baseline.json"


def run_lint(capsys, *argv):
    code = lint_tool.main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestLintCli:
    def test_single_workload_text(self, capsys):
        code, out, _ = run_lint(capsys, "--workloads", "mcf")
        assert code == 0
        assert "mcf: 0 diagnostic(s)" in out
        assert "total: 0 diagnostic(s) over 1 workload(s)" in out

    def test_json_output_is_lint_reports(self, capsys):
        code, out, _ = run_lint(capsys, "--workloads", "mcf", "--json")
        assert code == 0
        payload = json.loads(out)
        assert len(payload) == 1
        assert payload[0]["kind"] == "lint"
        assert payload[0]["unit"] == "mcf"
        assert payload[0]["diagnostics"] == []
        assert set(payload[0]["passes"]) == {"deadcode", "sandbox-store"}

    def test_json_is_deterministic(self, capsys):
        _, first, _ = run_lint(capsys, "--workloads", "mcf", "--json")
        _, second, _ = run_lint(capsys, "--workloads", "mcf", "--json")
        assert first == second

    def test_checked_in_baseline_is_current(self, capsys):
        """CI contract: the repo baseline matches a fresh run."""
        code, out, _ = run_lint(
            capsys, "--workloads", "mcf", "sjeng",
            "--baseline", str(REPO_BASELINE), "--check-baseline")
        assert code == 0
        assert "NEW" not in out

    def test_checked_in_baseline_covers_every_workload(self):
        from repro.analysis.dataflow import Baseline
        from repro.workloads.spec import BENCHMARKS
        baseline = Baseline.load(REPO_BASELINE)
        assert set(baseline.workloads) == set(BENCHMARKS)

    def test_update_baseline_writes_file(self, capsys, tmp_path):
        path = tmp_path / "baseline.json"
        code, out, _ = run_lint(capsys, "--workloads", "mcf",
                                "--baseline", str(path),
                                "--update-baseline")
        assert code == 0
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert data["workloads"] == {"mcf": []}

    def test_drift_fails_check(self, capsys, tmp_path, monkeypatch):
        injected = Diagnostic(code="MCFI003", unit="mcf",
                              function="f", block="entry", index=0,
                              message="injected")

        def fake_lint(name):
            return LintReport(unit=name, diagnostics=[injected],
                              pass_counts={"deadcode": 0,
                                           "sandbox-store": 1})

        monkeypatch.setattr(lint_tool, "lint_workload", fake_lint)
        path = tmp_path / "empty.json"
        code, out, err = run_lint(capsys, "--workloads", "mcf",
                                  "--baseline", str(path),
                                  "--check-baseline")
        assert code == 1
        assert "NEW" in out and "MCFI003" in out
        assert "drift" in err

        # once baselined, the same finding is suppressed
        code, _, _ = run_lint(capsys, "--workloads", "mcf",
                              "--baseline", str(path),
                              "--update-baseline")
        assert code == 0
        code, out, _ = run_lint(capsys, "--workloads", "mcf",
                                "--baseline", str(path),
                                "--check-baseline")
        assert code == 0
        assert "NEW" not in out

    def test_check_and_update_are_exclusive(self, capsys):
        code, _, err = run_lint(capsys, "--check-baseline",
                                "--update-baseline")
        assert code == 2
        assert "mutually exclusive" in err

    def test_umbrella_cli_routes_lint(self, capsys):
        assert cli_main(["lint", "--workloads", "mcf"]) == 0
        out = capsys.readouterr().out
        assert "mcf: 0 diagnostic(s)" in out

    def test_umbrella_trace_wraps_lint(self, capsys, tmp_path):
        trace = tmp_path / "lint.jsonl"
        code = cli_main(["--trace", str(trace), "--seed", "1",
                         "lint", "--workloads", "mcf"])
        assert code == 0
        lines = [json.loads(line)
                 for line in trace.read_text().splitlines() if line]
        names = {entry["name"] for entry in lines if "name" in entry}
        assert "dataflow.lint" in names
        assert "dataflow.lint.deadcode" in names
        assert "dataflow.lint.sandbox-store" in names
