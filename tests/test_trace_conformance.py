"""Tests for the branch tracer and the dynamic conformance checker —
the ground-truth bridge between enforcement and policy."""

import pytest

from repro.cfg.generator import generate_cfg
from repro.metrics.cfgstats import compare, profile
from repro.runtime.runtime import Runtime
from repro.vm.cpu import ProgramExit
from repro.vm.trace import BranchTracer, ConformanceChecker, site_map


class TestBranchTracer:
    def test_records_indirect_transfers(self, demo_program):
        runtime = Runtime(demo_program)
        cpu = runtime.main_cpu()
        tracer = BranchTracer(cpu)
        result = runtime.run()
        assert result.ok
        summary = tracer.summary()
        # the demo performs fptr calls, a switch jump, longjmp, returns
        assert summary.get("jmp*", 0) > 0     # rewritten returns + switch
        assert summary.get("call*", 0) >= 3   # the ops[] dispatches
        assert all(e.kind in ("ret", "jmp*", "call*")
                   for e in tracer.events)

    def test_native_trace_contains_real_rets(self, demo_program_native):
        runtime = Runtime(demo_program_native)
        tracer = BranchTracer(runtime.main_cpu())
        assert runtime.run().ok
        assert tracer.summary().get("ret", 0) > 0

    def test_detach_restores_step(self, demo_program):
        runtime = Runtime(demo_program)
        cpu = runtime.main_cpu()
        tracer = BranchTracer(cpu)
        tracer.detach()
        runtime.run()
        assert tracer.events == []

    def test_limit_bounds_memory(self, demo_program):
        runtime = Runtime(demo_program)
        tracer = BranchTracer(runtime.main_cpu(), limit=5)
        runtime.run()
        assert len(tracer.events) == 5


class TestConformance:
    def test_demo_run_conforms_to_cfg(self, demo_program):
        """Every indirect transfer the hardened demo performs is
        permitted by the generated CFG — enforcement equals policy."""
        runtime = Runtime(demo_program)
        cfg = generate_cfg(demo_program.module.aux)
        sites = site_map(demo_program.module)
        checker = ConformanceChecker(runtime.main_cpu(), cfg,
                                     site_of=sites)
        assert runtime.run().ok
        checked = checker.verify_trace()
        assert checked > 10
        assert checker.conformant, checker.violations[:5]

    def test_workload_run_conforms(self, bench_program):
        runtime = Runtime(bench_program["mcfi"])
        cfg = generate_cfg(bench_program["mcfi"].module.aux)
        sites = site_map(bench_program["mcfi"].module)
        checker = ConformanceChecker(runtime.main_cpu(), cfg,
                                     site_of=sites)
        assert runtime.run().ok
        checker.verify_trace()
        assert checker.conformant, checker.violations[:5]

    def test_site_map_covers_all_sites(self, demo_program):
        sites = site_map(demo_program.module)
        assert set(sites.values()) == \
            {s.site for s in demo_program.module.aux.branch_sites}

    def test_checker_flags_foreign_targets(self, demo_program):
        from repro.vm.trace import BranchEvent
        runtime = Runtime(demo_program)
        cfg = generate_cfg(demo_program.module.aux)
        checker = ConformanceChecker(runtime.main_cpu(), cfg)
        checker.tracer.events.append(
            BranchEvent("jmp*", 0x10000, 0xDEAD000))
        checker.verify_trace()
        assert not checker.conformant


class TestCfgProfile:
    def test_profile_consistency(self, bench_program):
        aux = bench_program["mcfi"].module.aux
        cfg = generate_cfg(aux)
        prof = profile(aux, cfg)
        assert prof.ibs == len(aux.branch_sites)
        assert sum(prof.branches_by_kind.values()) == prof.ibs
        assert prof.target_set_spread[0] <= prof.target_set_spread[1] \
            <= prof.target_set_spread[2]
        # returns dominate the branch mix, as in any C program
        assert prof.branches_by_kind["ret"] > \
            prof.branches_by_kind.get("icall", 0)

    def test_compare_renders(self, bench_program):
        aux = bench_program["mcfi"].module.aux
        cfg = generate_cfg(aux)
        text = compare({"mcfi": profile(aux, cfg)})
        assert "EQCs" in text and "mcfi" in text
