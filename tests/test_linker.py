"""Tests for the static linker: separate compilation, layout, PLT."""

import pytest

from repro.errors import LinkError
from repro.linker.static_linker import layout_data, link
from repro.toolchain import compile_module
from repro.vm.memory import DATA_BASE, PAGE_SIZE


def modules(*sources):
    return [compile_module(text, name=f"m{i}")
            for i, text in enumerate(sources)]


MAIN = """
    int helper(int x);
    void exit(int c) { __syscall(1, c, 0, 0); }
    void _start(void) { exit(helper(2)); }
"""
HELPER = "int helper(int x) { return x * 10; }"


class TestSymbolResolution:
    def test_cross_module_calls_resolve(self):
        program = link(modules(MAIN, HELPER), mcfi=True)
        assert "helper" in program.labels
        assert "_start" in program.labels

    def test_unresolved_symbol_rejected(self):
        with pytest.raises(LinkError, match="helper"):
            link(modules(MAIN), mcfi=True)

    def test_duplicate_function_rejected(self):
        with pytest.raises(LinkError, match="helper"):
            link(modules(MAIN, HELPER, HELPER), mcfi=True)

    def test_duplicate_global_rejected(self):
        a = compile_module("long shared;", name="a")
        b = compile_module("long shared; void _start(void) { }", name="b")
        with pytest.raises(LinkError):
            link([a, b], mcfi=True)

    def test_mixed_arch_rejected(self):
        a = compile_module(HELPER, name="a", arch="x64")
        b = compile_module("void _start(void) { }", name="b", arch="x32")
        with pytest.raises(LinkError):
            link([a, b])

    def test_entry_symbol_required(self):
        with pytest.raises(LinkError, match="_start"):
            link(modules(HELPER), mcfi=True)

    def test_empty_link_rejected(self):
        with pytest.raises(LinkError):
            link([])


class TestDataLayout:
    def test_strings_before_globals_page_separated(self):
        raw = compile_module(
            'char *msg = "hello"; long counter = 5; '
            'void _start(void) { }', name="d")
        layout = layout_data([raw])
        string_addr = min(addr for label, addr in layout.symbols.items()
                          if ".str" in label)
        assert string_addr < layout.symbols["counter"]
        assert layout.rodata_end % PAGE_SIZE == 0
        assert layout.symbols["counter"] >= DATA_BASE + layout.rodata_end

    def test_globals_aligned(self):
        raw = compile_module(
            "char c; long l; double d; void _start(void) { }", name="d")
        layout = layout_data([raw])
        for name in ("c", "l", "d"):
            assert layout.symbols[name] % 8 == 0

    def test_data_image_contains_initializers(self):
        program = link(modules(
            'long magic = 0x1122334455667788; void _start(void) { }'),
            mcfi=True)
        offset = program.data.symbols["magic"] - program.data.base
        value = int.from_bytes(program.data.image[offset:offset + 8],
                               "little")
        assert value == 0x1122334455667788

    def test_function_address_in_data(self):
        program = link(modules("""
            void cb(void) { }
            void (*slot)(void) = cb;
            void _start(void) { }
        """), mcfi=True)
        offset = program.data.symbols["slot"] - program.data.base
        value = int.from_bytes(program.data.image[offset:offset + 8],
                               "little")
        assert value == program.labels["cb"]


class TestSeparateInstrumentation:
    def test_sites_renumbered_globally(self):
        program = link(modules(MAIN, HELPER), mcfi=True)
        sites = [s.site for s in program.module.aux.branch_sites]
        assert sites == list(range(len(sites)))

    def test_aux_info_merged(self):
        program = link(modules(MAIN, HELPER), mcfi=True)
        aux = program.module.aux
        assert {"_start", "exit", "helper"} <= set(aux.functions)
        modules_seen = {f.module for f in aux.functions.values()}
        assert len(modules_seen) == 2

    def test_native_mode_skips_instrumentation(self):
        program = link(modules(MAIN, HELPER), mcfi=False)
        assert not program.module.aux.branch_sites or True
        from repro.isa.disasm import linear_sweep
        from repro.isa.instructions import Op
        ops = {d.instr.op for d in linear_sweep(program.module.code,
                                                program.module.base)}
        assert Op.RET in ops
        assert Op.TLOAD_RI not in ops


class TestPlt:
    MAIN_DYN = """
        int plugin_fn(int x);
        void _start(void) { __syscall(1, plugin_fn(1), 0, 0); }
    """

    def test_plt_emitted_for_dynamic_symbols(self):
        program = link(modules(self.MAIN_DYN), mcfi=True,
                       allow_unresolved=["plugin_fn"])
        assert "plugin_fn" in program.labels  # the PLT alias
        assert "plugin_fn" in program.got_slots
        plt_sites = [s for s in program.module.aux.branch_sites
                     if s.kind == "plt"]
        assert len(plt_sites) == 1
        assert plt_sites[0].plt_symbol == "plugin_fn"

    def test_plt_requires_mcfi(self):
        with pytest.raises(LinkError):
            link(modules(self.MAIN_DYN), mcfi=False,
                 allow_unresolved=["plugin_fn"])

    def test_calling_unresolved_plt_is_fail_safe(self):
        """Before dlopen resolves the symbol, a PLT call must halt (the
        GOT holds 0, which has no valid Tary ID)."""
        from repro.runtime.runtime import Runtime
        program = link(modules(self.MAIN_DYN), mcfi=True,
                       allow_unresolved=["plugin_fn"])
        result = Runtime(program).run()
        assert result.violation is not None or result.fault is not None

    def test_got_slots_in_writable_data(self):
        program = link(modules(self.MAIN_DYN), mcfi=True,
                       allow_unresolved=["plugin_fn"])
        got = program.got_slots["plugin_fn"]
        assert got >= program.data.base + program.data.rodata_end
