"""Delta-debugging minimizer: shrinks hard, preserves the failure.

The predicate here is synthetic (cheap) — real campaign predicates
re-run the differential harness and are exercised by the CLI; the
shrinking machinery is identical either way.
"""

import pytest

from repro.toolchain import compile_and_run
from repro.workloads.generate import GenConfig, generate
from repro.workloads.minimize import MinimizeResult, minimize


QUICK = GenConfig.quick()


def _oracle_runs(program):
    """The program still evaluates cleanly under the oracle."""
    try:
        program.evaluate()
        return True
    except Exception:  # noqa: BLE001
        return False


class TestMinimize:
    @pytest.fixture(scope="class")
    def shrunk(self):
        program = generate(1004, QUICK)

        def predicate(candidate):
            # "failure": the program still prints anything at all
            return _oracle_runs(candidate) and \
                len(candidate.evaluate().output) > 0

        return program, minimize(program, predicate)

    def test_shrinks_below_25_lines(self, shrunk):
        program, result = shrunk
        assert result.original_lines == program.line_count()
        assert result.minimized_lines <= 25
        assert result.shrink_ratio < 0.25

    def test_result_still_satisfies_predicate(self, shrunk):
        _, result = shrunk
        assert len(result.program.evaluate().output) > 0

    def test_result_still_compiles_and_agrees(self, shrunk):
        _, result = shrunk
        expected = result.program.evaluate()
        run = compile_and_run(
            {result.program.name: result.program.source},
            max_steps=3_000_000)
        assert run.output == expected.output
        assert run.exit_code == expected.exit_code

    def test_counts_attempts(self, shrunk):
        _, result = shrunk
        assert result.attempts >= result.accepted > 0

    def test_original_program_untouched(self, shrunk):
        program, result = shrunk
        assert program.source == generate(1004, QUICK).source
        assert result.program is not program

    def test_category_specific_shrink(self):
        # preserve a *structural* property: a fn-ptr table call site
        program = generate(1001, QUICK)
        marker = "tab"
        if marker not in program.source:  # pragma: no cover
            pytest.skip("seed has no table")

        def predicate(candidate):
            return _oracle_runs(candidate) and \
                marker in candidate.source

        result = minimize(program, predicate, rounds=2)
        assert marker in result.program.source
        assert result.minimized_lines < program.line_count()

    def test_non_failing_program_rejected(self):
        program = generate(1002, QUICK)
        with pytest.raises(ValueError, match="predicate"):
            minimize(program, lambda c: False)

    def test_shrink_ratio_shape(self):
        result = MinimizeResult(program=None, original_lines=100,
                                minimized_lines=10, attempts=5,
                                accepted=3)
        assert result.shrink_ratio == pytest.approx(0.1)
