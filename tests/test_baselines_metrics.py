"""Tests for baseline CFI policies and the AIR/overhead metrics."""

import pytest

from repro.baselines.policies import (
    bincfi_policy,
    chunk_policy,
    classic_cfi_policy,
    mcfi_policy,
    no_protection_policy,
)
from repro.metrics.air import air_of_policy, air_table
from repro.metrics.overhead import (
    OverheadResult,
    SpaceResult,
    arithmetic_mean_overhead,
    geometric_mean_overhead,
)


@pytest.fixture(scope="module")
def aux(bench_program):
    return bench_program["mcfi"].module.aux


@pytest.fixture(scope="module")
def code_info(bench_program):
    module = bench_program["mcfi"].module
    return module.base, len(module.code)


class TestPolicies:
    def test_mcfi_is_strictest(self, aux):
        mcfi = mcfi_policy(aux)
        classic = classic_cfi_policy(aux)
        coarse = bincfi_policy(aux)
        for site in mcfi.branch_targets:
            assert len(mcfi.branch_targets[site]) <= \
                len(classic.branch_targets[site])
            assert len(classic.branch_targets[site]) <= \
                len(coarse.branch_targets[site]) or True

    def test_classic_widens_calls_keeps_returns(self, aux):
        mcfi = mcfi_policy(aux)
        classic = classic_cfi_policy(aux)
        at_count = len([f for f in aux.functions.values()
                        if f.address_taken])
        for site in aux.branch_sites:
            if site.kind == "icall":
                assert len(classic.branch_targets[site.site]) == at_count
            elif site.kind == "ret":
                assert classic.branch_targets[site.site] == \
                    mcfi.branch_targets[site.site]

    def test_bincfi_two_big_classes(self, aux):
        coarse = bincfi_policy(aux)
        entries = {f.entry for f in aux.functions.values()}
        retsites = {r.address for r in aux.retsites} | \
            set(aux.setjmp_resumes)
        for site in aux.branch_sites:
            targets = coarse.branch_targets[site.site]
            if site.kind in ("icall", "tail", "plt"):
                assert targets == entries
            elif site.kind in ("ret", "longjmp"):
                assert targets == retsites

    def test_mcfi_has_most_classes(self, aux):
        assert mcfi_policy(aux).n_classes >= \
            classic_cfi_policy(aux).n_classes >= \
            bincfi_policy(aux).n_classes

    def test_chunk_policy_targets_chunk_starts(self, aux, code_info):
        base, size = code_info
        chunk = chunk_policy(aux, base, size, chunk=16)
        any_targets = next(iter(chunk.branch_targets.values()))
        assert all(t % 16 == 0 for t in any_targets)

    def test_policies_installable(self, aux, bench_program):
        """Coarse ECN maps must install into real tables and run."""
        from repro.runtime.runtime import Runtime
        policy = bincfi_policy(aux)
        runtime = Runtime(bench_program["mcfi"])
        runtime.id_tables.install(policy.tary_ecns, policy.bary_ecns)
        result = runtime.run()
        assert result.ok  # a legal program still runs under coarse CFI


class TestAir:
    def test_air_bounds_and_ordering(self, aux, code_info):
        base, size = code_info
        policies = [mcfi_policy(aux), classic_cfi_policy(aux),
                    bincfi_policy(aux),
                    chunk_policy(aux, base, size, 16)]
        results = air_table(policies, target_space=size)
        for result in results.values():
            assert 0.0 <= result.air < 1.0
        assert results["MCFI"].air >= results["classic-CFI"].air
        assert results["classic-CFI"].air >= results["binCFI"].air
        assert results["binCFI"].air >= results["chunk16"].air

    def test_no_protection_is_zero(self, aux, code_info):
        base, size = code_info
        result = air_of_policy(no_protection_policy(aux, base, size),
                               target_space=size)
        assert result.air == 0.0

    def test_empty_policy(self):
        from repro.baselines.policies import PolicyResult
        result = air_of_policy(PolicyResult(name="empty"), 100)
        assert result.air == 0.0 and result.branches == 0

    def test_bad_target_space_rejected(self):
        from repro.baselines.policies import PolicyResult
        with pytest.raises(ValueError):
            air_of_policy(PolicyResult(name="x"), 0)


class TestOverheadMetrics:
    def test_overhead_pct(self):
        result = OverheadResult(name="t", arch="x64", native_cycles=100,
                                mcfi_cycles=105)
        assert result.overhead_pct == pytest.approx(5.0)

    def test_zero_native_cycles(self):
        result = OverheadResult(name="t", arch="x64", native_cycles=0,
                                mcfi_cycles=10)
        assert result.overhead_pct == 0.0

    def test_means(self):
        results = {
            "a": OverheadResult("a", "x64", 100, 110),
            "b": OverheadResult("b", "x64", 100, 100),
        }
        assert arithmetic_mean_overhead(results) == pytest.approx(5.0)
        geo = geometric_mean_overhead(results)
        assert 0 < geo < 5.0
        assert arithmetic_mean_overhead({}) == 0.0

    def test_space_result(self):
        result = SpaceResult(name="t", native_code_bytes=1000,
                             mcfi_code_bytes=1170, tary_bytes=1170,
                             bary_bytes=40)
        assert result.code_increase_pct == pytest.approx(17.0)
