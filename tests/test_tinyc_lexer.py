"""Tests for the TinyC lexer."""

import pytest

from repro.errors import LexError
from repro.tinyc.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("int foo_bar _x9;")
        assert tokens[0].kind == "keyword"
        assert tokens[1] == Token("ident", "foo_bar", 1, tokens[1].column)
        assert tokens[2].text == "_x9"

    def test_integer_literals(self):
        tokens = tokenize("0 42 0x1F 123u 9L")
        assert [t.value for t in tokens[:-1]] == [0, 42, 31, 123, 9]

    def test_float_literals(self):
        tokens = tokenize("1.5 2e3 7.25e-1 3f")
        assert [t.kind for t in tokens[:-1]] == ["float"] * 4
        assert tokens[0].value == 1.5
        assert tokens[1].value == 2000.0
        assert tokens[2].value == 0.725

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\0' '\\'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0, 92]

    def test_string_literals(self):
        tokens = tokenize(r'"hi\n" ""')
        assert tokens[0].value == b"hi\n"
        assert tokens[1].value == b""

    def test_operators_longest_match(self):
        assert texts("a <<= b >> c->d ... ++e") == [
            "a", "<<=", "b", ">>", "c", "->", "d", "...", "++", "e"]

    def test_comments_stripped(self):
        assert kinds("a // line comment\n b /* block\n comment */ c") == \
            ["ident", "ident", "ident"]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_bad_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'ab")
