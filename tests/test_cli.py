"""Tests for the umbrella CLI and the obs tool (PR 3)."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.cli import TOOLS, build_parser, main as cli_main, tool_argv
from repro.tools.obs import (DEMO_SUBSYSTEMS, load_trace, run_demo,
                             subsystem)
from repro.tools.obs import main as obs_main


def _argv_for(argv):
    return tool_argv(build_parser().parse_args(argv))


class TestFlagForwarding:
    def test_spec_gets_jobs_and_cache_dir(self):
        rest = _argv_for(["--jobs", "4", "--cache-dir", "/tmp/c",
                          "spec", "fig5"])
        assert rest == ["fig5", "--jobs", "4", "--cache-dir", "/tmp/c"]

    def test_explicit_tool_flag_wins(self):
        rest = _argv_for(["--jobs", "4", "spec", "fig5",
                          "--jobs", "2"])
        assert rest.count("--jobs") == 1
        assert rest == ["fig5", "--jobs", "2"]

    def test_infra_report_gets_no_jobs(self):
        rest = _argv_for(["--jobs", "4", "--cache-dir", "/tmp/c",
                          "infra", "report"])
        assert "--jobs" not in rest
        assert rest == ["report", "--cache-dir", "/tmp/c"]

    def test_faults_campaign_seed_becomes_seeds(self):
        rest = _argv_for(["--seed", "3", "--jobs", "2",
                          "faults", "campaign"])
        assert rest == ["campaign", "--jobs", "2", "--seeds", "3"]

    def test_faults_report_gets_nothing(self):
        rest = _argv_for(["--seed", "3", "--jobs", "2",
                          "faults", "report"])
        assert rest == ["report"]

    def test_obs_demo_gets_seed_and_out(self):
        rest = _argv_for(["--seed", "5", "--trace", "/tmp/t.jsonl",
                          "obs", "demo"])
        assert rest == ["demo", "--seed", "5", "--out", "/tmp/t.jsonl"]

    def test_passthrough_tools_untouched(self):
        rest = _argv_for(["--jobs", "4", "cc", "prog.c", "--run"])
        assert rest == ["prog.c", "--run"]

    def test_service_subcommands_get_seed(self):
        rest = _argv_for(["--seed", "9", "service", "run",
                          "--tenants", "10"])
        assert rest == ["run", "--tenants", "10", "--seed", "9"]
        rest = _argv_for(["--seed", "9", "service", "scale"])
        assert rest == ["scale", "--seed", "9"]

    def test_every_tool_module_resolves(self):
        import importlib
        for name in TOOLS.values():
            module = importlib.import_module(f"repro.tools.{name}")
            assert callable(module.main)


class TestUmbrellaParity:
    def test_spec_stdout_identical(self, capsys):
        from repro.tools.spec import main as spec_main

        argv = ["table1", "--benchmarks", "libquantum"]
        assert spec_main(argv) == 0
        direct = capsys.readouterr().out
        assert cli_main(["spec"] + argv) == 0
        assert capsys.readouterr().out == direct

    def test_trace_leaves_stdout_unchanged(self, capsys, tmp_path):
        argv = ["spec", "table1", "--benchmarks", "libquantum"]
        assert cli_main(argv) == 0
        untraced = capsys.readouterr().out
        trace_path = tmp_path / "t.jsonl"
        assert cli_main(["--trace", str(trace_path)] + argv) == 0
        captured = capsys.readouterr()
        assert captured.out == untraced
        assert "[obs]" in captured.err
        assert trace_path.exists()

    def test_trace_disabled_after_command(self, tmp_path):
        from repro.obs import OBS

        cli_main(["--trace", str(tmp_path / "t.jsonl"),
                  "spec", "table1", "--benchmarks", "libquantum"])
        assert not OBS.enabled


class TestObsTool:
    @pytest.fixture(scope="class")
    def demo_trace(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs") / "demo.jsonl"
        path, covered = run_demo(0, out)
        return out, covered

    def test_demo_covers_six_subsystems(self, demo_trace):
        _, covered = demo_trace
        assert set(DEMO_SUBSYSTEMS) <= set(covered)

    def test_demo_trace_validates(self, demo_trace):
        out, _ = demo_trace
        header, spans, metrics, problems = load_trace(out)
        assert problems == []
        assert header["clock"] == "logical"
        assert header["spans"] == len(spans)
        assert metrics is not None

    def test_report_command(self, demo_trace, capsys):
        out, _ = demo_trace
        assert obs_main(["report", str(out), "--check-schema"]) == 0
        text = capsys.readouterr().out
        assert "subsystems" in text
        assert "linker.dlopen" in text

    def test_check_schema_rejects_drift(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"kind": "trace-header", "version": 99,
                                   "clock": "logical", "seed": 0,
                                   "spans": 0}) + "\n")
        assert obs_main(["report", str(bad), "--check-schema"]) == 1
        assert "schema drift" in capsys.readouterr().err

    def test_check_schema_rejects_missing_header(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"kind": "span", "id": 0, "name": "x",
                                   "t0": 1, "t1": 2}) + "\n")
        assert obs_main(["report", str(bad), "--check-schema"]) == 1

    def test_catalog_lists_names(self, capsys):
        assert obs_main(["catalog"]) == 0
        text = capsys.readouterr().out
        assert "tx.update" in text
        assert "pool.job_seconds" in text

    def test_subsystem_mapping(self):
        assert subsystem("tx.update") == "transactions"
        assert subsystem("linker.dlopen") == "linker"
        assert subsystem("vm.run") == "vm"
