"""Tests for the experiment harness (small subsets; the benchmarks run
the full sweeps)."""

import pytest

import repro.experiments as ex


class TestFig5:
    def test_overhead_positive_and_small(self):
        results = ex.fig5_overhead(["libquantum", "gcc"], archs=("x64",))
        for result in results.values():
            assert 0.0 <= result.overhead_pct < 25.0
        assert results[("gcc", "x64")].overhead_pct > \
            results[("libquantum", "x64")].overhead_pct


class TestFig6:
    def test_updates_add_overhead(self):
        fig5 = ex.fig5_overhead(["gcc"], archs=("x64",))[("gcc", "x64")]
        fig6 = ex.fig6_update_overhead(["gcc"], interval=50_000)["gcc"]
        assert fig6.updates >= 2
        assert fig6.mcfi_cycles >= fig5.mcfi_cycles


class TestStmMicro:
    def test_paper_ordering(self):
        ratios = ex.stm_micro(iterations=30_000)
        assert ratios["MCFI"] == 1.0
        assert ratios["TML"] > 1.0
        assert ratios["Mutex"] > ratios["TML"]
        assert ratios["RWL"] > ratios["Mutex"]


class TestTables:
    def test_table1_rows(self):
        reports = ex.table1_analysis(["bzip2", "mcf"])
        assert reports["bzip2"].vbe == 27
        assert reports["mcf"].vbe == 0

    def test_table2_only_violating_benchmarks(self):
        rows = ex.table2_analysis(["bzip2", "mcf", "libquantum"])
        assert set(rows) == {"bzip2", "libquantum"}

    def test_table3_stats(self):
        stats = ex.table3_cfg_stats(["libquantum"], archs=("x64",))
        row = stats[("libquantum", "x64")]
        assert row["IBs"] > 0 and row["IBTs"] > 0 and row["EQCs"] > 1


class TestSecurityMetrics:
    def test_air_ordering(self):
        airs = ex.air_comparison(["libquantum"])
        assert airs["MCFI"] >= airs["classic-CFI"] >= airs["binCFI"]
        assert airs["binCFI"] > airs["chunk16"]

    def test_gadget_elimination(self):
        report = ex.gadget_elimination(["libquantum"])["libquantum"]
        assert report["elimination_pct"] > 90.0

    def test_space_overhead(self):
        result = ex.space_overhead(["libquantum"])["libquantum"]
        assert result.code_increase_pct > 0
        assert result.tary_bytes == result.mcfi_code_bytes

    def test_cfg_generation_is_fast(self):
        timing = ex.cfg_generation_time(["gcc"], repeats=1)["gcc"]
        assert timing < 2.0  # paper: 150 ms for real gcc


class TestFormatting:
    def test_format_fig5(self):
        results = ex.fig5_overhead(["libquantum"], archs=("x64",))
        text = ex.format_fig5(results)
        assert "libquantum" in text and "%" in text

    def test_format_table(self):
        text = ex.format_table({"a": {"x": 1}}, ["x"], title="T")
        assert "T" in text and "a" in text
