"""Tests for simlibc — the MUSL stand-in, exercised through the VM."""

import pytest

from tests.conftest import run_source


def check(source, expected, mcfi=True):
    result = run_source(source, mcfi=mcfi)
    assert result.ok, result.violation or result.fault
    assert result.output == expected
    return result


class TestStrings:
    def test_strncmp(self):
        check("""
            int main(void) {
                print_int(strncmp("abcdef", "abcxyz", 3u));
                print_char(' ');
                print_int(strncmp("abcdef", "abcxyz", 4u) < 0 ? -1 : 1);
                print_char(' ');
                print_int(strncmp("a", "b", 0u));
                return 0;
            }
        """, b"0 -1 0")

    def test_strchr(self):
        check("""
            int main(void) {
                char *s = "mcfi";
                print_int((int)(strchr(s, 'f') - s)); print_char(' ');
                print_int(strchr(s, 'q') == 0 ? 1 : 0); print_char(' ');
                print_int((int)(strchr(s, 0) - s));
                return 0;
            }
        """, b"2 1 4")

    def test_memcmp(self):
        check("""
            int main(void) {
                print_int(memcmp((void *)"aaa", (void *)"aab", 3u) < 0
                          ? -1 : 0);
                print_int(memcmp((void *)"aaa", (void *)"aab", 2u));
                return 0;
            }
        """, b"-10")

    def test_atoi(self):
        check("""
            int main(void) {
                print_int(atoi_l("12345")); print_char(' ');
                print_int(atoi_l("  -99 trailing")); print_char(' ');
                print_int(atoi_l("+7")); print_char(' ');
                print_int(atoi_l("x"));
                return 0;
            }
        """, b"12345 -99 7 0")


class TestAllocator:
    def test_free_list_reuse(self):
        check("""
            int main(void) {
                void *a = malloc(64u);
                void *b = malloc(64u);
                free(a);
                /* the freed block satisfies the next same-size request */
                print_int(malloc(64u) == a ? 1 : 0);
                free(b);
                return 0;
            }
        """, b"1")

    def test_calloc_zeroes(self):
        check("""
            int main(void) {
                long *p = (long *)calloc(4u, 8u);
                print_int(p[0] + p[1] + p[2] + p[3]);
                return 0;
            }
        """, b"0")

    def test_realloc_preserves_data(self):
        check("""
            int main(void) {
                long *p = (long *)malloc(16u);
                long *q;
                p[0] = 77;
                q = (long *)realloc((void *)p, 256u);
                print_int(q[0]);
                return 0;
            }
        """, b"77")

    def test_malloc_exhaustion_returns_null(self):
        check("""
            int main(void) {
                void *p = malloc(0x40000000u);  /* 1 GiB: cannot fit */
                print_int(p == 0 ? 1 : 0);
                return 0;
            }
        """, b"1")

    def test_free_null_is_noop(self):
        check("int main(void) { free(0); print_int(1); return 0; }",
              b"1")


class TestRandAndMath:
    def test_prng_deterministic(self):
        check("""
            int main(void) {
                long a;
                long b;
                rand_seed(42);
                a = rand_next();
                rand_seed(42);
                b = rand_next();
                print_int(a == b ? 1 : 0); print_char(' ');
                print_int(a >= 0 ? 1 : 0); print_char(' ');
                rand_seed(0);   /* zero seed coerced to nonzero */
                print_int(rand_next() != 0 ? 1 : 0);
                return 0;
            }
        """, b"1 1 1")

    def test_sqrt_and_fabs(self):
        check("""
            int main(void) {
                print_int((long)sqrt_d(10000.0)); print_char(' ');
                print_int((long)(fabs_d(-2.5) * 2.0)); print_char(' ');
                print_int((long)sqrt_d(-4.0));
                return 0;
            }
        """, b"100 5 0")

    def test_abs_long(self):
        check("""
            int main(void) {
                print_int(abs_long(-12) + abs_long(30));
                return 0;
            }
        """, b"42")


class TestPrinting:
    def test_print_int_edges(self):
        check("""
            int main(void) {
                print_int(0); print_char(' ');
                print_int(-1); print_char(' ');
                print_int(1000000007);
                return 0;
            }
        """, b"0 -1 1000000007")

    def test_qsort_strings_by_first_char(self):
        check("""
            int cmp_first(void *a, void *b) {
                return (int)(**(char **)a) - (int)(**(char **)b);
            }
            int main(void) {
                char *words[3];
                int i;
                words[0] = "zeta";
                words[1] = "alpha";
                words[2] = "mu";
                qsort((void *)words, 3u, 8u, cmp_first);
                for (i = 0; i < 3; i++) {
                    print_char(words[i][0]);
                }
                return 0;
            }
        """, b"amz")
