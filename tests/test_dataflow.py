"""Tests for repro.analysis.dataflow: CFGs, the fixpoint solver, the
points-to/devirtualization pass, and the lint plane (PR 4)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.analysis.dataflow import (Baseline, Diagnostic, LintReport,
                                     analyze_function, build_cfg,
                                     deadcode_pass, devirtualize_module,
                                     run_lints, sandbox_store_pass,
                                     solve, sorted_diagnostics,
                                     tracked_locals, uses_nonlocal_flow)
from repro.analysis.dataflow.solver import DataflowProblem
from repro.mir import ir
from repro.mir.lowering import lower_unit
from repro.build import build_program
from repro.toolchain import compile_and_link, frontend, run_program


def lower_source(source: str, name: str = "t") -> ir.MirModule:
    return lower_unit(frontend(source, name=name))


def mir_function(name, blocks, locals=None, n_vregs=32):
    """Hand-build a MirFunction (lowering normalizes away the shapes
    some tests need, e.g. unreachable blocks)."""
    from repro.tinyc.types import FuncType, IntType
    long_t = IntType("long", 8, True)
    return ir.MirFunction(
        name=name, ftype=FuncType(ret=long_t, params=()),
        params=[], locals=dict(locals or {}),
        blocks=blocks, n_vregs=n_vregs)


# ---------------------------------------------------------------------------
# CFG
# ---------------------------------------------------------------------------


class TestBlockCfg:
    def test_diamond_edges_and_rpo(self):
        module = lower_source("""
            long f(long x) {
                long r;
                if (x > 0) { r = 1; } else { r = 2; }
                return r;
            }
            int main(void) { return (int)f(1); }
        """)
        func = next(f for f in module.functions if f.name == "f")
        cfg = build_cfg(func)
        assert cfg.entry == func.blocks[0].label
        assert cfg.rpo[0] == cfg.entry
        # every edge is consistent between successor and predecessor maps
        for label, succs in cfg.successors.items():
            for succ in succs:
                assert label in cfg.predecessors[succ]
        # rpo visits a block only after (some) predecessor, entry first
        positions = {label: i for i, label in enumerate(cfg.rpo)}
        join = [lbl for lbl in cfg.rpo
                if len(cfg.predecessors[lbl]) == 2]
        assert join, "diamond must have a join block"
        assert all(positions[j] > 0 for j in join)
        assert cfg.exits  # the return block

    def test_loop_has_back_edge_and_converges(self):
        module = lower_source("""
            long f(long n) {
                long i; long s; s = 0;
                for (i = 0; i < n; i++) { s = s + i; }
                return s;
            }
            int main(void) { return (int)f(3); }
        """)
        func = next(f for f in module.functions if f.name == "f")
        cfg = build_cfg(func)
        positions = {label: i for i, label in enumerate(cfg.rpo)}
        back = [(a, b) for a, succs in cfg.successors.items()
                for b in succs
                if a in positions and b in positions
                and positions[b] <= positions[a]]
        assert back, "loop must produce a back edge"
        facts = analyze_function(func)
        assert facts.analyzed
        assert facts.iterations >= len(cfg.rpo)

    def test_unreachable_block_detected(self):
        blocks = [
            ir.BasicBlock("entry", [ir.Const(0, 1), ir.Ret(0)]),
            ir.BasicBlock("island", [ir.Jump("entry")]),
        ]
        cfg = build_cfg(mir_function("u", blocks))
        assert cfg.unreachable_blocks() == ["island"]
        assert "island" not in cfg.reachable

    def test_nonlocal_flow_flag(self):
        module = lower_source("""
            long jb[4];
            int main(void) {
                int v = setjmp(jb);
                if (v == 0) { longjmp(jb, 1); }
                return v;
            }
        """)
        main = next(f for f in module.functions if f.name == "main")
        assert uses_nonlocal_flow(main)
        assert not analyze_function(main).analyzed


# ---------------------------------------------------------------------------
# Solver
# ---------------------------------------------------------------------------


class TestSolver:
    def _linear_cfg(self):
        blocks = [
            ir.BasicBlock("entry", [ir.Jump("mid")]),
            ir.BasicBlock("mid", [ir.Jump("end")]),
            ir.BasicBlock("end", [ir.Ret(None)]),
        ]
        return build_cfg(mir_function("lin", blocks))

    def test_forward_accumulates_along_path(self):
        cfg = self._linear_cfg()
        problem = DataflowProblem(
            direction="forward", boundary=frozenset(),
            join=lambda a, b: a & b,
            transfer=lambda label, block, s: s | {label})
        solution = solve(cfg, problem)
        assert solution.inputs["end"] == {"entry", "mid"}
        assert solution.outputs["end"] == {"entry", "mid", "end"}

    def test_backward_reverses_edges(self):
        cfg = self._linear_cfg()
        problem = DataflowProblem(
            direction="backward", boundary=frozenset(),
            join=lambda a, b: a | b,
            transfer=lambda label, block, s: s | {label})
        solution = solve(cfg, problem)
        # backward: the state at entry's analysis input is the join of
        # everything downstream
        assert solution.inputs["entry"] == {"mid", "end"}

    def test_loop_reaches_fixpoint_with_join(self):
        blocks = [
            ir.BasicBlock("entry", [ir.Const(0, 0),
                                    ir.Jump("head")]),
            ir.BasicBlock("head", [ir.CondBr("lt", 0, 0, "body", "end")]),
            ir.BasicBlock("body", [ir.Jump("head")]),
            ir.BasicBlock("end", [ir.Ret(None)]),
        ]
        cfg = build_cfg(mir_function("loop", blocks))
        problem = DataflowProblem(
            direction="forward", boundary=0,
            join=max, transfer=lambda label, block, s: min(s + 1, 10))
        solution = solve(cfg, problem)
        assert solution.inputs["head"] == 10  # saturated, terminated
        assert solution.outputs["end"] == 10

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError):
            DataflowProblem(direction="sideways", boundary=None,
                            join=max, transfer=lambda l, b, s: s)


# ---------------------------------------------------------------------------
# Abstract interpretation
# ---------------------------------------------------------------------------


FPTR_SOURCE = """
long inc(long x) { return x + 1; }
long dec(long x) { return x - 1; }
long twice(long x) { return x * 2; }

long pick(long sel) {
    long (*fp)(long);
    if (sel) { fp = inc; } else { fp = dec; }
    return fp(10);
}

long fixed(void) {
    long (*fp)(long);
    fp = twice;
    return fp(21);
}

int main(void) { return (int)(pick(1) + fixed()); }
"""


class TestAbsint:
    def test_tracked_local_excludes_escaping(self):
        module = lower_source("""
            long deref(long *p) { return *p; }
            long f(void) {
                long a; long b;
                a = 1;
                b = deref(&a);
                return b;
            }
            int main(void) { return (int)f(); }
        """)
        func = next(f for f in module.functions if f.name == "f")
        tracked = tracked_locals(func)
        base_names = {name.split("$")[0] for name in tracked}
        assert "a" not in base_names   # address passed to a call
        assert "b" in base_names

    def test_singleton_resolution_through_local(self):
        module = lower_source(FPTR_SOURCE)
        func = next(f for f in module.functions if f.name == "fixed")
        facts = analyze_function(func)
        sites = [(block.label, i)
                 for block in func.blocks
                 for i, inst in enumerate(block.instrs)
                 if isinstance(inst, ir.CallInd)]
        assert len(sites) == 1
        names = facts.resolve_callind(*sites[0])
        assert names == frozenset({"twice"})

    def test_branch_join_widens_to_pair(self):
        module = lower_source(FPTR_SOURCE)
        func = next(f for f in module.functions if f.name == "pick")
        facts = analyze_function(func)
        sites = [(block.label, i)
                 for block in func.blocks
                 for i, inst in enumerate(block.instrs)
                 if isinstance(inst, ir.CallInd)]
        assert len(sites) == 1
        names = facts.resolve_callind(*sites[0])
        assert names == frozenset({"inc", "dec"})

    def test_call_kills_global_not_tracked_local(self):
        module = lower_source("""
            long (*gp)(long);
            long id(long x) { return x; }
            long f(void) {
                long (*lp)(long);
                gp = id;
                lp = id;
                id(0);
                return lp(1) + gp(2);
            }
            int main(void) { return (int)f(); }
        """)
        func = next(f for f in module.functions if f.name == "f")
        facts = analyze_function(func)
        resolutions = []
        for block in func.blocks:
            for i, inst in enumerate(block.instrs):
                if isinstance(inst, ir.CallInd):
                    resolutions.append(facts.resolve_callind(block.label, i))
        assert len(resolutions) == 2
        # the tracked local survives the direct call, the global does not
        assert frozenset({"id"}) in resolutions
        assert None in resolutions


# ---------------------------------------------------------------------------
# Points-to / devirtualization
# ---------------------------------------------------------------------------


class TestDevirtualize:
    def test_singleton_becomes_direct_call(self):
        module = lower_source(FPTR_SOURCE)
        report = devirtualize_module(module)
        assert len(report.devirtualized) >= 1
        fixed = next(f for f in module.functions if f.name == "fixed")
        callinds = [inst for block in fixed.blocks
                    for inst in block.instrs
                    if isinstance(inst, ir.CallInd)]
        assert callinds == []
        calls = [inst for block in fixed.blocks for inst in block.instrs
                 if isinstance(inst, ir.Call) and inst.callee == "twice"]
        assert calls

    def test_pair_becomes_hint_not_call(self):
        module = lower_source(FPTR_SOURCE)
        devirtualize_module(module)
        pick = next(f for f in module.functions if f.name == "pick")
        callinds = [inst for block in pick.blocks
                    for inst in block.instrs
                    if isinstance(inst, ir.CallInd)]
        assert len(callinds) == 1
        assert callinds[0].targets_hint == ("dec", "inc")

    def test_funcaddr_untouched_so_tary_is_stable(self):
        module = lower_source(FPTR_SOURCE)
        before = sorted(inst.name for f in module.functions
                        for b in f.blocks for inst in b.instrs
                        if isinstance(inst, ir.FuncAddr))
        devirtualize_module(module)
        after = sorted(inst.name for f in module.functions
                       for b in f.blocks for inst in b.instrs
                       if isinstance(inst, ir.FuncAddr))
        assert before == after

    def test_report_serializes(self):
        module = lower_source(FPTR_SOURCE)
        report = devirtualize_module(module)
        data = report.to_dict()
        assert data["kind"] == "pointsto"
        assert data["devirtualized"] == len(report.devirtualized)
        json.dumps(data)  # JSON-safe

    def test_optimized_build_runs_byte_identically(self):
        sources = {"t": FPTR_SOURCE}
        base = compile_and_link(sources, mcfi=True)
        opt = build_program(sources, devirtualize=True).program
        from repro.core.verifier import verify_module
        verify_module(opt.module)  # still verifies after rewriting
        res_base = run_program(base)
        res_opt = run_program(opt)
        assert res_base.output == res_opt.output
        assert res_base.exit_code == res_opt.exit_code
        # the devirtualized site no longer pays a check transaction
        assert res_opt.tx_checks < res_base.tx_checks

    def test_hint_narrows_generator_targets(self):
        """The ptargets hint must shrink the icall site's target set
        in the generated CFG without adding anything."""
        from repro.cfg.generator import generate_cfg
        sources = {"t": FPTR_SOURCE}
        base = compile_and_link(sources, mcfi=True)
        opt = build_program(sources, devirtualize=True).program

        def icall_target_sets(program):
            aux = program.module.aux
            cfg = generate_cfg(aux)
            out = {}
            for site in aux.branch_sites:
                if site.kind in ("icall", "tail") and site.fn == "pick":
                    out[site.site] = frozenset(cfg.branch_targets[site.site])
            return out

        base_sets = icall_target_sets(base)
        opt_sets = icall_target_sets(opt)
        assert base_sets and opt_sets
        # same pointer signature matches inc/dec/twice... in the base
        # build; the hint narrows it to exactly {inc, dec}
        entries = {name: opt.module.aux.functions[name].entry
                   for name in ("inc", "dec", "twice")}
        narrowed = set(opt_sets.values()).pop()
        assert entries["twice"] not in narrowed
        assert {entries["inc"], entries["dec"]} <= narrowed
        assert narrowed < set(base_sets.values()).pop()

    @pytest.mark.parametrize("name", ["bzip2", "libquantum", "milc"])
    def test_workloads_devirtualize_at_least_one_site(self, name):
        from repro.workloads.spec import workload
        module = lower_source(workload(name).source, name=name)
        report = devirtualize_module(module)
        assert len(report.devirtualized) >= 1


# ---------------------------------------------------------------------------
# Lints
# ---------------------------------------------------------------------------


class TestLints:
    def test_seeded_unmasked_store_flags_mcfi003(self):
        module = lower_source("""
            void poke(void) { *(long *)4096 = 7; }
            int main(void) { poke(); return 0; }
        """, name="seeded")
        report = run_lints(module)
        assert [d.code for d in report.diagnostics] == ["MCFI003"]
        assert report.errors

    def test_store_through_function_address_flags_mcfi004(self):
        blocks = [ir.BasicBlock("entry", [
            ir.FuncAddr(0, "victim"),
            ir.Const(1, 0),
            ir.Store(addr=0, src=1, width=8),
            ir.Ret(None),
        ])]
        func = mir_function("writer", blocks)
        module = ir.MirModule(name="m4", functions=[func])
        diags = sandbox_store_pass(module)
        assert [d.code for d in diags] == ["MCFI004"]
        assert "victim" in diags[0].message

    def test_unreachable_block_flags_mcfi001(self):
        blocks = [
            ir.BasicBlock("entry", [ir.Ret(None)]),
            ir.BasicBlock("orphan", [ir.Jump("entry")]),
        ]
        module = ir.MirModule(name="m1",
                              functions=[mir_function("f", blocks)])
        diags = deadcode_pass(module)
        assert [d.code for d in diags] == ["MCFI001"]
        assert diags[0].block == "orphan"

    def test_unused_pure_def_flags_mcfi002(self):
        blocks = [ir.BasicBlock("entry", [
            ir.Const(0, 42),      # never used
            ir.Const(1, 7),
            ir.Ret(1),
        ])]
        module = ir.MirModule(name="m2",
                              functions=[mir_function("f", blocks)])
        diags = deadcode_pass(module)
        assert [(d.code, d.index) for d in diags] == [("MCFI002", 0)]

    def test_infinite_loop_stays_silent(self):
        """Blocks that never reach an exit have no liveness fixpoint;
        the lint must not under-approximate and report there."""
        blocks = [
            ir.BasicBlock("entry", [ir.Const(0, 1), ir.Jump("spin")]),
            ir.BasicBlock("spin", [ir.Jump("spin")]),
        ]
        module = ir.MirModule(name="m3",
                              functions=[mir_function("f", blocks)])
        assert [d.code for d in deadcode_pass(module)] == []

    def test_clean_workload_is_clean(self):
        from repro.workloads.spec import workload
        module = lower_source(workload("mcf").source, name="mcf")
        report = run_lints(module)
        assert report.diagnostics == []
        assert set(report.pass_counts) == {"deadcode", "sandbox-store"}

    def test_lint_output_is_deterministic_under_trace(self):
        source = """
            void poke(void) { *(long *)4096 = 7; }
            int main(void) { poke(); return 0; }
        """
        runs = []
        for _ in range(2):
            with obs.scoped(seed=7):
                report = run_lints(lower_source(source, name="det"))
            runs.append(json.dumps(report.to_dict(), sort_keys=True))
        assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Diagnostics + baseline
# ---------------------------------------------------------------------------


class TestDiagnostics:
    DIAG = Diagnostic(code="MCFI003", unit="u", function="f",
                      block="entry", index=2, message="m")

    def test_fingerprint_and_severity(self):
        assert self.DIAG.fingerprint == "MCFI003@u:f:entry:2"
        assert self.DIAG.severity == "error"
        assert "MCFI003" in self.DIAG.render()

    def test_round_trip(self):
        clone = Diagnostic.from_dict(self.DIAG.to_dict())
        assert clone == self.DIAG
        assert clone.to_dict()["kind"] == "diagnostic"

    def test_stable_ordering(self):
        d1 = Diagnostic("MCFI002", "u", "f", "b", 3, "x")
        d2 = Diagnostic("MCFI001", "u", "f", "b", 1, "y")
        d3 = Diagnostic("MCFI003", "a", "z", "b", 9, "z")
        assert sorted_diagnostics([d1, d2, d3]) == \
            sorted_diagnostics([d3, d1, d2]) == [d3, d2, d1]

    def test_lint_report_round_trip(self):
        report = LintReport(unit="u", diagnostics=[self.DIAG],
                            pass_counts={"deadcode": 0,
                                         "sandbox-store": 1})
        clone = LintReport.from_dict(report.to_dict())
        assert clone.unit == "u"
        assert clone.diagnostics == [self.DIAG]
        assert clone.pass_counts == report.pass_counts

    def test_baseline_diff_and_suppression(self, tmp_path):
        baseline = Baseline()
        baseline.record("u", [self.DIAG])
        fresh = Diagnostic("MCFI001", "u", "g", "b", 0, "new")
        new, fixed = baseline.diff("u", [self.DIAG, fresh])
        assert new == [fresh]          # the baselined one is suppressed
        assert fixed == []
        new, fixed = baseline.diff("u", [])
        assert new == []
        assert fixed == [self.DIAG.fingerprint]

        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.workloads == baseline.workloads

    def test_baseline_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "workloads": {}}')
        with pytest.raises(ValueError):
            Baseline.load(path)
