"""Tests for the CPU interpreter: instruction semantics and faults."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.errors import CfiViolation, InvalidInstruction, MemoryFault, \
    VMError
from repro.isa.assembler import AsmInstr, Label, LabelRef, assemble
from repro.isa.instructions import Op
from repro.isa.registers import Reg
from repro.vm.cpu import CPU, ProgramExit
from repro.vm.memory import Memory, PAGE_SIZE, TableMemory

CODE = 0x10000
DATA = 0x20000
STACK = 0x30000

_MASK = 0xFFFFFFFFFFFFFFFF


def run_instrs(items, regs=None, steps=64):
    """Assemble items at CODE, run until HLT-free end or `steps`."""
    out = assemble(list(items) + [AsmInstr(Op.SYSCALL, ())], base=CODE)
    mem = Memory()
    mem.map(CODE, len(out.code) + PAGE_SIZE, readable=True, executable=True)
    mem.host_write(CODE, out.code)
    mem.map(DATA, PAGE_SIZE, readable=True, writable=True)
    mem.map(STACK, PAGE_SIZE, readable=True, writable=True)

    def handler(cpu):
        raise ProgramExit(0)

    cpu = CPU(mem, TableMemory(), syscall_handler=handler)
    cpu.rip = CODE
    cpu.regs[Reg.RSP] = STACK + PAGE_SIZE - 16
    for index, value in (regs or {}).items():
        cpu.regs[index] = value & _MASK
    cpu.run(max_steps=steps)
    return cpu


def binop(op, a, b):
    cpu = run_instrs([AsmInstr(op, (Reg.RAX, Reg.RBX))],
                     regs={Reg.RAX: a, Reg.RBX: b})
    return cpu.regs[Reg.RAX]


class TestArithmetic:
    @given(st.integers(0, _MASK), st.integers(0, _MASK))
    def test_add_sub_wrap(self, a, b):
        assert binop(Op.ADD_RR, a, b) == (a + b) & _MASK
        assert binop(Op.SUB_RR, a, b) == (a - b) & _MASK

    def test_signed_multiplication(self):
        assert binop(Op.IMUL_RR, -3 & _MASK, 7) == (-21) & _MASK

    @given(st.integers(-1000, 1000), st.integers(-100, 100))
    def test_division_truncates_toward_zero(self, a, b):
        if b == 0:
            return
        assert binop(Op.IDIV_RR, a & _MASK, b & _MASK) == \
            int(a / b) & _MASK
        # C semantics: (a/b)*b + a%b == a
        mod = binop(Op.IMOD_RR, a & _MASK, b & _MASK)
        div = binop(Op.IDIV_RR, a & _MASK, b & _MASK)
        signed = lambda v: v - (1 << 64) if v >> 63 else v
        assert signed(div) * b + signed(mod) == a

    def test_division_by_zero_faults(self):
        with pytest.raises(VMError):
            binop(Op.IDIV_RR, 1, 0)

    def test_logical_vs_arithmetic_shift(self):
        assert binop(Op.SHR_RR, -8 & _MASK, 1) == (-8 & _MASK) >> 1
        assert binop(Op.SAR_RR, -8 & _MASK, 1) == (-4) & _MASK

    def test_neg_not(self):
        cpu = run_instrs([AsmInstr(Op.NEG, (Reg.RAX,))], regs={Reg.RAX: 5})
        assert cpu.regs[Reg.RAX] == (-5) & _MASK
        cpu = run_instrs([AsmInstr(Op.NOT, (Reg.RAX,))], regs={Reg.RAX: 0})
        assert cpu.regs[Reg.RAX] == _MASK

    def test_movzx32_clears_upper(self):
        cpu = run_instrs([AsmInstr(Op.MOVZX32, (Reg.RAX,))],
                         regs={Reg.RAX: 0x1234567890ABCDEF})
        assert cpu.regs[Reg.RAX] == 0x90ABCDEF


class TestFloats:
    def test_float_arithmetic(self):
        a = struct.unpack("<Q", struct.pack("<d", 2.5))[0]
        b = struct.unpack("<Q", struct.pack("<d", 4.0))[0]
        result = binop(Op.FMUL_RR, a, b)
        assert struct.unpack("<d", struct.pack("<Q", result))[0] == 10.0

    def test_conversions(self):
        cpu = run_instrs([AsmInstr(Op.CVTSI2F, (Reg.RAX,)),
                          AsmInstr(Op.CVTF2SI, (Reg.RAX,))],
                         regs={Reg.RAX: (-7) & _MASK})
        assert cpu.regs[Reg.RAX] == (-7) & _MASK

    def test_float_division_by_zero_faults(self):
        zero = struct.unpack("<Q", struct.pack("<d", 0.0))[0]
        one = struct.unpack("<Q", struct.pack("<d", 1.0))[0]
        with pytest.raises(VMError):
            binop(Op.FDIV_RR, one, zero)


class TestMemoryOps:
    def test_store_load_widths(self):
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RBX, DATA)),
            AsmInstr(Op.MOV_RI, (Reg.RAX, 0x11223344AABBCCDD)),
            AsmInstr(Op.STORE64, (Reg.RBX, 0, Reg.RAX)),
            AsmInstr(Op.STORE32, (Reg.RBX, 16, Reg.RAX)),
            AsmInstr(Op.STORE16, (Reg.RBX, 32, Reg.RAX)),
            AsmInstr(Op.STORE8, (Reg.RBX, 48, Reg.RAX)),
            AsmInstr(Op.LOAD64, (Reg.R8, Reg.RBX, 0)),
            AsmInstr(Op.LOAD32, (Reg.R9, Reg.RBX, 16)),
            AsmInstr(Op.LOAD16, (Reg.R10, Reg.RBX, 32)),
            AsmInstr(Op.LOAD8, (Reg.R11, Reg.RBX, 48)),
        ]
        cpu = run_instrs(items)
        assert cpu.regs[Reg.R8] == 0x11223344AABBCCDD
        assert cpu.regs[Reg.R9] == 0xAABBCCDD
        assert cpu.regs[Reg.R10] == 0xCCDD
        assert cpu.regs[Reg.R11] == 0xDD

    def test_push_pop(self):
        items = [AsmInstr(Op.MOV_RI, (Reg.RAX, 42)),
                 AsmInstr(Op.PUSH, (Reg.RAX,)),
                 AsmInstr(Op.POP, (Reg.RBX,))]
        cpu = run_instrs(items)
        assert cpu.regs[Reg.RBX] == 42

    def test_lea(self):
        cpu = run_instrs([AsmInstr(Op.LEA, (Reg.RAX, Reg.RBX, -24))],
                         regs={Reg.RBX: 1000})
        assert cpu.regs[Reg.RAX] == 976


class TestControlFlow:
    def test_conditional_jumps(self):
        # if (rax < rbx) r8 = 1 else r8 = 2, signed
        items = [
            AsmInstr(Op.CMP_RR, (Reg.RAX, Reg.RBX)),
            AsmInstr(Op.JL, (LabelRef("less"),)),
            AsmInstr(Op.MOV_RI, (Reg.R8, 2)),
            AsmInstr(Op.JMP, (LabelRef("end"),)),
            Label("less"),
            AsmInstr(Op.MOV_RI, (Reg.R8, 1)),
            Label("end"),
        ]
        taken = run_instrs(items, regs={Reg.RAX: (-1) & _MASK, Reg.RBX: 0})
        assert taken.regs[Reg.R8] == 1
        untaken = run_instrs(items, regs={Reg.RAX: 5, Reg.RBX: 0})
        assert untaken.regs[Reg.R8] == 2

    def test_unsigned_comparison(self):
        items = [
            AsmInstr(Op.CMP_RR, (Reg.RAX, Reg.RBX)),
            AsmInstr(Op.JB, (LabelRef("below"),)),
            AsmInstr(Op.MOV_RI, (Reg.R8, 0)),
            AsmInstr(Op.JMP, (LabelRef("end"),)),
            Label("below"),
            AsmInstr(Op.MOV_RI, (Reg.R8, 1)),
            Label("end"),
        ]
        # -1 unsigned is huge, so NOT below 0.
        cpu = run_instrs(items, regs={Reg.RAX: (-1) & _MASK, Reg.RBX: 0})
        assert cpu.regs[Reg.R8] == 0

    def test_call_ret(self):
        items = [
            AsmInstr(Op.CALL, (LabelRef("f"),)),
            AsmInstr(Op.JMP, (LabelRef("end"),)),
            Label("f"),
            AsmInstr(Op.MOV_RI, (Reg.R8, 7)),
            AsmInstr(Op.RET, ()),
            Label("end"),
        ]
        cpu = run_instrs(items)
        assert cpu.regs[Reg.R8] == 7

    def test_indirect_jump(self):
        items = [
            AsmInstr(Op.MOV_RI, (Reg.RCX, LabelRef("t"))),
            AsmInstr(Op.JMP_R, (Reg.RCX,)),
            AsmInstr(Op.MOV_RI, (Reg.R8, 1)),  # skipped
            Label("t"),
            AsmInstr(Op.MOV_RI, (Reg.R9, 2)),
        ]
        cpu = run_instrs(items)
        assert cpu.regs[Reg.R8] == 0
        assert cpu.regs[Reg.R9] == 2


class TestFaults:
    def test_hlt_raises_cfi_violation(self):
        with pytest.raises(CfiViolation) as info:
            run_instrs([AsmInstr(Op.HLT, ())])
        assert info.value.branch_address == CODE

    def test_hlt_reason_depends_on_target_id(self):
        with pytest.raises(CfiViolation) as invalid:
            run_instrs([AsmInstr(Op.HLT, ())], regs={Reg.RSI: 0})
        assert "invalid target" in invalid.value.reason
        with pytest.raises(CfiViolation) as mismatch:
            run_instrs([AsmInstr(Op.HLT, ())], regs={Reg.RSI: 1})
        assert "mismatch" in mismatch.value.reason

    def test_execute_nonexecutable_faults(self):
        items = [AsmInstr(Op.MOV_RI, (Reg.RCX, DATA)),
                 AsmInstr(Op.JMP_R, (Reg.RCX,))]
        with pytest.raises(MemoryFault):
            run_instrs(items)

    def test_undecodable_bytes_fault(self):
        mem = Memory()
        mem.map(CODE, PAGE_SIZE, readable=True, executable=True)
        mem.host_write(CODE, b"\xfe\xfe")
        cpu = CPU(mem, TableMemory())
        cpu.rip = CODE
        with pytest.raises(InvalidInstruction):
            cpu.step()

    def test_step_limit_enforced(self):
        items = [Label("spin"), AsmInstr(Op.JMP, (LabelRef("spin"),))]
        with pytest.raises(VMError):
            run_instrs(items, steps=100)


class TestCycleModel:
    def test_cycles_accumulate_costs(self):
        cpu = run_instrs([AsmInstr(Op.NOP, ()),
                          AsmInstr(Op.MOV_RI, (Reg.RAX, 1))])
        # NOP costs 0 (superscalar absorption), MOV 1, SYSCALL 50.
        assert cpu.cycles == 0 + 1 + 50
        assert cpu.instructions == 3

    def test_snapshot_contains_state(self):
        cpu = run_instrs([AsmInstr(Op.MOV_RI, (Reg.RAX, 9))])
        snap = cpu.snapshot()
        assert snap["regs"]["%rax"] == 9
        assert snap["instructions"] == 2
