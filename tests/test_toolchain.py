"""Tests for the toolchain driver, the spec CLI, and example smoke."""

import pytest

from repro.errors import LinkError, ParseError, TypeError_
from repro.toolchain import (
    compile_and_link,
    compile_and_run,
    compile_module,
    frontend,
)


class TestDriver:
    def test_prelude_injects_libc_declarations(self):
        checked = frontend("int main(void) { print_int(1); return 0; }")
        assert "print_int" in checked.func_sigs

    def test_prelude_can_be_disabled(self):
        with pytest.raises(TypeError_):
            frontend("int main(void) { print_int(1); return 0; }",
                     prelude=False)

    def test_parse_errors_propagate(self):
        with pytest.raises(ParseError):
            compile_module("int main(void) {")

    def test_without_libc_needs_start(self):
        with pytest.raises(LinkError, match="_start"):
            compile_and_link({"t": "int main(void) { return 0; }"},
                             with_libc=False)

    def test_freestanding_program(self):
        source = """
            void _start(void) { __syscall(1, 7, 0, 0); }
        """
        program = compile_and_link({"t": source}, with_libc=False)
        from repro.runtime.runtime import Runtime
        assert Runtime(program).run().exit_code == 7

    def test_compile_and_run_convenience(self):
        result = compile_and_run(
            {"t": "int main(void) { return 11; }"}, verify=True)
        assert result.exit_code == 11

    def test_arch_validation(self):
        from repro.errors import CodegenError
        with pytest.raises(CodegenError):
            compile_module("int main(void){return 0;}", arch="arm")


class TestSpecCli:
    def test_table1_subset(self, capsys):
        from repro.tools.spec import main
        assert main(["table1", "--benchmarks", "mcf", "lbm"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "Table 1" in out

    def test_stm_artifact(self, capsys):
        from repro.tools.spec import main
        assert main(["stm"]) == 0
        assert "MCFI" in capsys.readouterr().out

    def test_multiple_artifacts(self, capsys):
        from repro.tools.spec import main
        assert main(["table3", "cfggen", "--benchmarks", "libquantum",
                     "--arch", "x64"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "CFG generation" in out

    def test_rejects_unknown_artifact(self):
        from repro.tools.spec import main
        with pytest.raises(SystemExit):
            main(["flurb"])


class TestExamplesSmoke:
    """The examples must stay runnable (they are documentation)."""

    def test_quickstart(self, capsys):
        from examples.quickstart import main
        main()
        out = capsys.readouterr().out
        assert "HIJACKED" in out and "blocked the hijack" in out

    def test_separate_compilation(self, capsys):
        from examples.separate_compilation import main
        main()
        out = capsys.readouterr().out
        assert "program A" in out and "program B" in out
        assert "'negate', 'scale'" in out

    def test_jit_example(self, capsys):
        from examples.jit_compiler import main
        main()
        out = capsys.readouterr().out
        assert "JIT installs : 3" in out
        assert "mismatch" in out
