"""Tests for SimISA instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import decode, decode_stream, encode, encode_all
from repro.isa.instructions import (
    Instruction,
    MAX_INSTRUCTION_LENGTH,
    Op,
    OperandKind,
    SPECS,
    instruction_length,
)
from repro.isa.registers import NUM_REGS


def _operand_strategy(kind: OperandKind):
    if kind is OperandKind.REG:
        return st.integers(min_value=0, max_value=NUM_REGS - 1)
    if kind is OperandKind.IMM8:
        return st.integers(min_value=0, max_value=255)
    if kind in (OperandKind.IMM32, OperandKind.REL32):
        return st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
    return st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


@st.composite
def instructions(draw):
    op = draw(st.sampled_from(sorted(SPECS, key=int)))
    operands = tuple(draw(_operand_strategy(kind))
                     for kind in SPECS[op].operands)
    return Instruction(op, operands)


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_roundtrip(self, instr):
        raw = encode(instr)
        decoded, length = decode(raw)
        assert length == len(raw) == instr.length
        assert decoded.op == instr.op
        # Immediates may normalize sign, but re-encoding must agree.
        assert encode(decoded) == raw

    @given(st.lists(instructions(), min_size=1, max_size=20))
    def test_stream_roundtrip(self, instrs):
        raw = encode_all(instrs)
        decoded = list(decode_stream(raw))
        assert len(decoded) == len(instrs)
        offset = 0
        for (off, instr), original in zip(decoded, instrs):
            assert off == offset
            assert instr.op == original.op
            offset += instr.length

    def test_lengths_are_static(self):
        for op in SPECS:
            operands = tuple(0 for _ in SPECS[op].operands)
            assert len(encode(Instruction(op, operands))) == \
                instruction_length(op)

    def test_max_length_constant(self):
        assert MAX_INSTRUCTION_LENGTH == max(
            instruction_length(op) for op in SPECS)


class TestErrors:
    def test_bad_opcode_byte(self):
        with pytest.raises(EncodingError):
            decode(b"\xff\x00\x00")

    def test_bad_register_byte(self):
        raw = bytearray(encode(Instruction(Op.MOV_RR, (0, 1))))
        raw[1] = 200  # invalid register number
        with pytest.raises(EncodingError):
            decode(bytes(raw))

    def test_truncated_instruction(self):
        raw = encode(Instruction(Op.MOV_RI, (0, 123456789)))
        with pytest.raises(EncodingError):
            decode(raw[:-1])

    def test_decode_past_end(self):
        with pytest.raises(EncodingError):
            decode(b"", 0)

    def test_operand_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Op.ADD_RI, (0, 1 << 40)))
        with pytest.raises(EncodingError):
            encode(Instruction(Op.MOV_RR, (0, 99)))

    def test_wrong_operand_count(self):
        with pytest.raises(EncodingError):
            Instruction(Op.MOV_RR, (0,))


class TestVariableLength:
    """Variable-length encoding is load-bearing for the reproduction."""

    def test_lengths_vary(self):
        lengths = {instruction_length(op) for op in SPECS}
        assert len(lengths) >= 4, "encoding should be variable length"

    def test_mid_instruction_decode_differs(self):
        # A MOV_RI whose immediate contains a valid opcode byte decodes
        # differently when started mid-instruction.
        instr = Instruction(Op.MOV_RI, (0, int(Op.RET)))
        raw = encode(instr)
        inner, _ = decode(raw, 2)
        assert inner.op == Op.RET

    def test_branch_target_resolution(self):
        instr = Instruction(Op.JMP, (10,))
        assert instr.branch_target(100) == 100 + instr.length + 10
        with pytest.raises(EncodingError):
            Instruction(Op.RET, ()).branch_target(0)
