"""Tests for the deterministic interleaving scheduler."""

import pytest

from repro.errors import VMError
from repro.vm.scheduler import GeneratorTask, Outcome, Scheduler, Task


class CountingTask(Task):
    def __init__(self, limit, name="count"):
        self.count = 0
        self.limit = limit
        self.name = name
        self.alive = True

    def step(self):
        self.count += 1
        if self.count >= self.limit:
            self.alive = False


class TestScheduler:
    def test_runs_until_all_tasks_finish(self):
        scheduler = Scheduler(seed=1)
        a = scheduler.add(CountingTask(10, "a"))
        b = scheduler.add(CountingTask(5, "b"))
        outcome = scheduler.run()
        assert outcome.ok
        assert a.count == 10 and b.count == 5
        assert outcome.ticks == 15

    def test_determinism_per_seed(self):
        def trace_for(seed):
            trace = []

            def gen(tag):
                for _ in range(20):
                    trace.append(tag)
                    yield

            scheduler = Scheduler(seed=seed)
            scheduler.add_generator(gen("a"), "a")
            scheduler.add_generator(gen("b"), "b")
            scheduler.run()
            return trace

        assert trace_for(7) == trace_for(7)
        assert trace_for(7) != trace_for(8)

    def test_generator_task_completion(self):
        def gen():
            yield
            yield

        scheduler = Scheduler()
        task = scheduler.add_generator(gen())
        outcome = scheduler.run()
        assert not task.alive
        assert outcome.ticks == 3  # two yields + StopIteration step

    def test_tick_limit(self):
        def forever():
            while True:
                yield

        scheduler = Scheduler()
        scheduler.add_generator(forever())
        with pytest.raises(VMError):
            scheduler.run(max_ticks=100)

    def test_outcome_describe(self):
        outcome = Outcome(exit_code=3)
        assert "exit(3)" in outcome.describe()

    def test_interleaving_actually_mixes(self):
        order = []

        def gen(tag):
            for _ in range(50):
                order.append(tag)
                yield

        scheduler = Scheduler(seed=42)
        scheduler.add_generator(gen("a"), "a")
        scheduler.add_generator(gen("b"), "b")
        scheduler.run()
        # not strictly alternating, not fully serial
        assert order != ["a"] * 50 + ["b"] * 50
        assert "a" in order and "b" in order
