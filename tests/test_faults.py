"""The fault-injection plane: injectors, scenarios, campaign, policies.

The acceptance property for the whole PR lives here: across every
injector in the taxonomy, under the ``halt`` policy, zero forged-edge
admissions — the tables may degrade availability, escalate, or halt,
but a disallowed transfer is never admitted.
"""

import pytest

from repro.core.idencoding import (
    MAX_PARITY_ECN,
    pack_id,
    parity_ecn,
    parity_ecn_ok,
)
from repro.core.tables import IdTables, tary_index
from repro.core.transactions import UpdateLock
from repro.errors import InjectedFault
from repro.faults import (
    INJECTORS,
    POLICIES,
    TABLE_WORKLOADS,
    FaultPlane,
    NULL_PLANE,
    bit_flip_injector,
    render_survival,
    run_fault_campaign,
    run_table_scenario,
    stale_version_injector,
    table_scrubber,
)
from repro.vm.memory import TableMemory
from repro.vm.scheduler import GeneratorTask, Scheduler


class TestFaultPlane:
    def test_unarmed_points_never_fire(self):
        plane = FaultPlane(seed=1)
        for _ in range(10):
            plane.check("dlopen.update")
        assert plane.fired() == 0

    def test_armed_point_fires_once_with_skip(self):
        plane = FaultPlane(seed=1).arm("p", skip=2, count=1)
        assert not plane.should("p")
        assert not plane.should("p")
        assert plane.should("p")      # third visit
        assert not plane.should("p")  # count exhausted
        assert plane.fired("p") == 1

    def test_check_raises_injected_fault(self):
        plane = FaultPlane(seed=0).arm("x")
        with pytest.raises(InjectedFault) as err:
            plane.check("x", detail="here")
        assert err.value.point == "x"
        assert "here" in str(err.value)

    def test_probability_is_seeded(self):
        def firing_sequence(seed):
            plane = FaultPlane(seed=seed).arm("p", count=100,
                                              probability=0.5)
            return [plane.should("p") for _ in range(20)]

        assert firing_sequence(7) == firing_sequence(7)
        assert firing_sequence(7) != firing_sequence(8)

    def test_events_record_detail(self):
        plane = FaultPlane(seed=0).arm("p", count=2)
        plane.should("p", detail="first")
        plane.should("p", detail="second")
        assert [e.detail for e in plane.events] == ["first", "second"]
        assert plane.events[0].to_dict()["point"] == "p"

    def test_null_plane_is_inert_and_unarmable(self):
        NULL_PLANE.check("anything")
        assert not NULL_PLANE.should("anything")
        with pytest.raises(RuntimeError):
            NULL_PLANE.arm("anything")

    def test_count_validated(self):
        with pytest.raises(ValueError):
            FaultPlane(seed=0).arm("p", count=0)


class TestParityEcns:
    def test_round_trip_and_spacing(self):
        # Any two distinct encoded ECNs differ in >= 2 bits, so a
        # single-bit flip can never turn one live class into another.
        encoded = [parity_ecn(e) for e in range(64)]
        assert len(set(encoded)) == 64
        for i, a in enumerate(encoded):
            for b in encoded[i + 1:]:
                assert bin(a ^ b).count("1") >= 2

    def test_single_bit_flip_breaks_parity(self):
        for ecn in (0, 1, 5, 100):
            good = parity_ecn(ecn)
            assert parity_ecn_ok(good)
            for bit in range(15):
                assert not parity_ecn_ok(good ^ (1 << bit))

    def test_range_validated(self):
        with pytest.raises(ValueError):
            parity_ecn(MAX_PARITY_ECN + 1)
        with pytest.raises(ValueError):
            parity_ecn(-1)


class TestInjectors:
    def _tables(self):
        tables = IdTables(TableMemory())
        tables.install({0x1000 + 4 * i: parity_ecn(i % 3)
                        for i in range(12)},
                       {s: parity_ecn(s % 3) for s in range(4)})
        return tables

    def test_bit_flip_corrupts_distinct_entries(self):
        tables = self._tables()
        events = []
        list(bit_flip_injector(tables, seed=3, flips=4, table="tary",
                               events=events))
        assert len(events) == 4
        audit = tables.audit()
        assert len(audit["tary"]) == 4  # four distinct words corrupted
        assert len({addr for addr, _, _ in audit["tary"]}) == 4

    def test_bit_flips_are_seeded(self):
        def corrupted(seed):
            tables = self._tables()
            list(bit_flip_injector(tables, seed=seed, flips=3))
            return tuple(sorted(a for a, _, _ in
                                tables.audit()["tary"]))

        assert corrupted(1) == corrupted(1)

    def test_stale_version_forces_retry_signature(self):
        tables = self._tables()
        tables.install(dict(tables.tary_ecns), dict(tables.bary_ecns),
                       version=5)
        list(stale_version_injector(tables, seed=0, entries=2))
        stale = tables.audit()["tary"]
        assert stale
        for _, got, want in stale:
            # Same ECN half, older version half: the retry signature.
            assert got != want

    def test_scrubber_repairs_corruption(self):
        tables = self._tables()
        list(bit_flip_injector(tables, seed=3, flips=2))
        assert tables.audit()["tary"]
        counter = {}
        scrubber = table_scrubber(tables, UpdateLock(), interval=1,
                                  rounds=1, counter=counter)
        list(scrubber)
        assert counter["repairs"] == 2
        assert not tables.audit()["tary"]

    def test_scrubber_defers_to_update_lock(self):
        tables = self._tables()
        lock = UpdateLock()
        list(lock.acquire_spin("updater"))
        list(bit_flip_injector(tables, seed=3, flips=1))
        counter = {}
        scrubber = table_scrubber(tables, lock, interval=1, rounds=0,
                                  counter=counter)
        for _ in range(10):   # rounds=0 runs forever; drive it bounded
            next(scrubber)
        # The lock is held throughout: no audit may touch the tables.
        assert counter.get("audits", 0) == 0
        assert tables.audit()["tary"]  # corruption still present

    def test_scrub_is_noop_on_clean_tables(self):
        tables = self._tables()
        assert tables.scrub() == 0


class TestTableScenarios:
    @pytest.mark.parametrize("injector", INJECTORS)
    def test_zero_forged_admissions_under_halt(self, injector):
        """The acceptance criterion: every injector, halt policy,
        multiple seeds and workloads — no forged edge, ever."""
        for workload in TABLE_WORKLOADS:
            for seed in (0, 1, 2):
                record = run_table_scenario(injector, workload,
                                            policy="halt", seed=seed)
                assert record.forged == 0, (
                    f"{injector}/{workload}/seed={seed} admitted "
                    f"{record.forged} forged edge(s)")
                assert record.outcome in ("survived", "degraded",
                                          "halted")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_zero_forged_under_every_policy(self, policy):
        for injector in ("bitflip-tary", "stale-version"):
            record = run_table_scenario(injector, "dispatch",
                                        policy=policy, seed=1)
            assert record.forged == 0

    def test_halt_policy_escalates_on_stale_version(self):
        record = run_table_scenario("stale-version", "dispatch",
                                    policy="halt", seed=1)
        assert record.outcome == "halted"
        assert record.escalations >= 1

    def test_quarantine_policy_retires_entries(self):
        record = run_table_scenario("bitflip-bary", "dispatch",
                                    policy="quarantine", seed=1)
        assert record.outcome == "degraded"
        assert record.quarantined >= 1
        assert record.forged == 0

    def test_scrubber_repairs_mid_scenario(self):
        record = run_table_scenario("bitflip-tary", "dispatch",
                                    policy="report", seed=1, scrub=True)
        assert record.forged == 0
        assert record.repairs >= 1

    def test_records_replay_bit_for_bit(self):
        first = run_table_scenario("bitflip-tary", "returns",
                                   policy="report", seed=9)
        second = run_table_scenario("bitflip-tary", "returns",
                                    policy="report", seed=9)
        assert first.to_dict() == second.to_dict()

    def test_unknown_injector_and_policy_rejected(self):
        with pytest.raises(ValueError):
            run_table_scenario("cosmic-rays", "dispatch", "halt", 0)
        with pytest.raises(ValueError):
            run_table_scenario("bitflip-tary", "dispatch", "shrug", 0)


class TestTornUpdates:
    """Torn TxUpdate barrier: delayed or dropped, never forging."""

    @pytest.mark.parametrize("mode", ["torn-delay", "torn-drop"])
    def test_torn_barrier_never_forges(self, mode):
        for seed in range(6):
            record = run_table_scenario(mode, "dispatch",
                                        policy="halt", seed=seed)
            assert record.forged == 0
            assert record.outcome in ("survived", "degraded", "halted")


class TestFaultCampaign:
    def test_small_matrix_through_pool_and_store(self, tmp_path):
        from repro.infra.results import ResultStore

        store = ResultStore(tmp_path / "fault_results.jsonl")
        summary = run_fault_campaign(
            injectors=("bitflip-tary", "stale-version"),
            workloads=("returns",), policies=("halt",), seeds=(0,),
            load_phases=(), jobs=2, store=store)
        assert summary["cells"] == 2
        assert summary["completed"] == 2
        assert summary["forged"] == 0
        assert not summary["failures"]
        records = [r for r in store.records() if r["kind"] == "fault"]
        assert len(records) == 2
        kinds = {r["kind"] for r in store.records()}
        assert "fault-summary" in kinds

    def test_survival_report_renders(self, tmp_path):
        from repro.infra.results import ResultStore

        store = ResultStore(tmp_path / "fault_results.jsonl")
        run_fault_campaign(injectors=("bitflip-tary",),
                           workloads=("returns",), policies=("halt",),
                           seeds=(0,), load_phases=("update",),
                           jobs=1, store=store)
        text = render_survival(
            [r for r in store.records() if r["kind"] == "fault"])
        assert "forged-edge admissions: 0" in text
        assert "bitflip-tary" in text
        assert "load-update" in text
        assert "SECURITY FAILURE" not in text

    def test_report_flags_forged_records(self):
        text = render_survival([{
            "kind": "fault", "injector": "x", "workload": "w",
            "policy": "halt", "seed": 0, "outcome": "forged",
            "probes": 1, "forged": 1,
        }])
        assert "SECURITY FAILURE" in text

    def test_unknown_cells_rejected(self):
        with pytest.raises(ValueError):
            run_fault_campaign(injectors=("bogus",))
        with pytest.raises(ValueError):
            run_fault_campaign(load_phases=("bogus",))


class TestFaultsCli:
    def test_campaign_subcommand_writes_artifacts(self, tmp_path,
                                                  capsys):
        from repro.tools.faults import main

        status = main(["campaign", "--injectors", "bitflip-tary",
                       "--workloads", "returns", "--policies", "halt",
                       "--seeds", "0", "--no-load", "--jobs", "2",
                       "--results-dir", str(tmp_path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "forged-edge admissions: 0" in out
        assert (tmp_path / "fault_results.jsonl").exists()
        report = (tmp_path / "fault_survival.txt").read_text()
        assert "survival matrix" in report

    def test_report_subcommand_round_trips(self, tmp_path, capsys):
        from repro.tools.faults import main

        main(["campaign", "--injectors", "stale-version",
              "--workloads", "returns", "--policies", "halt",
              "--seeds", "1", "--no-load",
              "--results-dir", str(tmp_path)])
        capsys.readouterr()
        status = main(["report", "--results-dir", str(tmp_path)])
        assert status == 0
        assert "stale-version" in capsys.readouterr().out

    def test_report_without_records_fails(self, tmp_path, capsys):
        from repro.tools.faults import main

        assert main(["report", "--results-dir", str(tmp_path)]) == 1


class TestAdversarialScheduler:
    def test_weights_bias_selection(self):
        from repro.errors import VMError

        picks = {"a": 0, "b": 0}

        def task(name):
            while True:
                picks[name] += 1
                yield

        scheduler = Scheduler(seed=0, weights={"a": 9.0, "b": 1.0})
        scheduler.add(GeneratorTask(task("a"), name="a"))
        scheduler.add(GeneratorTask(task("b"), name="b"))
        with pytest.raises(VMError):  # both tasks outlive the window
            scheduler.run(max_ticks=300)
        assert picks["a"] + picks["b"] >= 300
        assert picks["a"] > 3 * picks["b"]

    def test_schedules_replay_per_seed(self):
        def trace(weights, seed):
            order = []

            def task(name):
                for _ in range(5):
                    order.append(name)
                    yield

            scheduler = Scheduler(seed=seed, weights=weights)
            scheduler.add(GeneratorTask(task("x"), name="x"))
            scheduler.add(GeneratorTask(task("y"), name="y"))
            scheduler.run()
            return order

        # Both the unweighted and the weighted path are deterministic
        # functions of the seed ...
        assert trace(None, 123) == trace(None, 123)
        assert trace({"x": 3.0}, 123) == trace({"x": 3.0}, 123)
        # ... and different seeds interleave differently.
        assert any(trace(None, 123) != trace(None, s)
                   for s in (1, 2, 3, 4))
