"""Frontend robustness: malformed input never escapes as a traceback.

The corpus generator only emits valid programs, so these tests cover
the complement — the generator-*adjacent* malformed space (deep
nesting, oversized initializers, duplicate labels, plus seeded
mutation fuzz over valid sources).  The contract under test is the
``CompileError`` boundary from :mod:`repro.errors`: every rejection is
a clean ``TinyCError`` subclass with a source location, never a
``RecursionError`` or any other raw Python exception.
"""

import random

import pytest

from repro.errors import CompileError, ParseError, ReproError, \
    TinyCError, TypeError_
from repro.toolchain import compile_and_run, frontend
from repro.workloads.generate import generate


def _expect_clean_rejection(source, name="bad"):
    with pytest.raises(TinyCError) as exc_info:
        frontend(source, name=name)
    return exc_info.value


class TestMalformedInputs:
    def test_compile_error_is_the_frontend_boundary(self):
        # the alias is the documented catch-all for frontend errors
        assert CompileError is TinyCError
        assert issubclass(ParseError, CompileError)
        assert issubclass(TypeError_, CompileError)

    def test_oversized_array_initializer_rejected(self):
        err = _expect_clean_rejection(
            "long a[2] = {1, 2, 3, 4};\nint main() { return 0; }\n")
        assert isinstance(err, TypeError_)
        assert "too many initializers" in str(err)
        assert err.line  # carries a source location

    def test_exact_size_initializer_accepted(self):
        frontend("long a[4] = {1, 2, 3, 4};\nint main() { return 0; }\n")

    def test_short_initializer_accepted(self):
        frontend("long a[4] = {1};\nint main() { return 0; }\n")

    def test_duplicate_case_label_rejected(self):
        err = _expect_clean_rejection(
            "int main() { switch (1) { case 1: break; "
            "case 1: break; } return 0; }\n")
        assert "duplicate case label 1" in str(err)

    def test_duplicate_default_rejected(self):
        err = _expect_clean_rejection(
            "int main() { switch (1) { default: break; "
            "default: break; } return 0; }\n")
        assert "duplicate default" in str(err)

    def test_distinct_case_labels_still_compile_and_run(self):
        result = compile_and_run({"t": (
            "int main() { int x = 2; switch (x) { "
            "case 1: print_int(1); break; "
            "case 2: print_int(2); break; "
            "default: print_int(9); } print_char(10); return 0; }\n")},
            max_steps=100_000)
        assert result.output == b"2\n"

    @pytest.mark.parametrize("depth", [5_000, 30_000])
    def test_deep_parentheses_clean_error(self, depth):
        source = ("int main() { return " + "(" * depth + "1" +
                  ")" * depth + "; }\n")
        err = _expect_clean_rejection(source)
        assert "nesting too deep" in str(err)

    def test_deep_block_nesting_clean_error(self):
        source = ("int main() {" + " if (1) {" * 5_000 +
                  "}" * 5_000 + " return 0; }\n")
        err = _expect_clean_rejection(source)
        assert "nesting too deep" in str(err)

    def test_long_operator_chain_clean_error_or_accept(self):
        # left-deep AST: parses iteratively, may exhaust the checker
        source = ("int main() { return " +
                  "+".join(["1"] * 20_000) + "; }\n")
        try:
            frontend(source, name="chain")
        except TinyCError as err:
            assert "nesting too deep" in str(err)

    def test_moderate_nesting_still_accepted(self):
        depth = 200
        source = ("int main() { return " + "(" * depth + "1" +
                  ")" * depth + "; }\n")
        frontend(source, name="ok")


class TestFrontendFuzz:
    """Property: no input crashes the frontend with a raw exception."""

    def _check(self, source, label):
        try:
            frontend(source, name="fuzz")
        except ReproError:
            pass  # clean, typed rejection (or fine if it compiled)
        except BaseException as exc:  # noqa: BLE001
            pytest.fail(f"frontend crashed on {label}: "
                        f"{type(exc).__name__}: {exc}")

    def test_token_soup_never_crashes(self):
        rng = random.Random(99)
        tokens = ["int", "long", "char", "if", "else", "while",
                  "switch", "case", "default", "return", "main",
                  "x", "0", "1", "42", "{", "}", "(", ")", "[", "]",
                  ";", ",", "=", "+", "-", "*", "/", "%", "&", "|",
                  "\"s\"", "'c'", "->", ".", "...", "goto", "struct"]
        for _ in range(150):
            soup = " ".join(rng.choice(tokens)
                            for _ in range(rng.randrange(1, 60)))
            self._check(soup, f"token soup {soup[:40]!r}")

    def test_byte_soup_never_crashes(self):
        rng = random.Random(7)
        for _ in range(100):
            raw = bytes(rng.randrange(1, 128)
                        for _ in range(rng.randrange(1, 200)))
            self._check(raw.decode("ascii"), "byte soup")

    def test_mutated_valid_programs_never_crash(self):
        rng = random.Random(2024)
        for seed in range(5):
            source = generate(seed).source
            for _ in range(30):
                chars = list(source)
                for _ in range(rng.randrange(1, 6)):
                    pos = rng.randrange(len(chars))
                    op = rng.random()
                    if op < 0.4:
                        del chars[pos]
                    elif op < 0.8:
                        chars[pos] = rng.choice(";(){}[]=+-*/%&|^<>!")
                    else:
                        chars.insert(pos, rng.choice("({[;,"))
                self._check("".join(chars), f"mutant of seed {seed}")

    def test_truncated_valid_programs_never_crash(self):
        source = generate(1).source
        step = max(1, len(source) // 40)
        for cut in range(0, len(source), step):
            self._check(source[:cut], f"truncation at {cut}")
