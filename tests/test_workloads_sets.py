"""Named benchmark sets: registration, resolution, determinism.

A set is the no-cherry-picking unit for corpus runs — a run must
report every member, pass or fail.  These tests pin the registry
semantics; the end-to-end "every member reported" property is in
``test_corpus_harness.py``.
"""

import dataclasses

import pytest

from repro.workloads.spec import BENCHMARKS, BenchmarkSet, all_sets, \
    benchmark_set, register_set
from repro.workloads.spec import _SETS


class TestRegistry:
    def test_builtin_sets_registered(self):
        names = {s.name for s in all_sets()}
        assert {"fixed12", "gen-smoke", "gen-deep"} <= names

    def test_fixed12_members_are_the_benchmarks(self):
        spec = benchmark_set("fixed12")
        assert spec.kind == "fixed"
        assert spec.members == tuple(BENCHMARKS)

    def test_gen_smoke_is_quick_with_pinned_seeds(self):
        spec = benchmark_set("gen-smoke")
        assert spec.kind == "generated"
        assert spec.quick
        assert spec.seeds == tuple(range(1000, 1020))
        assert spec.members == tuple(f"gen{s}"
                                     for s in range(1000, 1020))

    def test_gen_deep_covers_500_seeds(self):
        spec = benchmark_set("gen-deep")
        assert len(spec.members) >= 500
        assert not spec.quick
        assert len(set(spec.members)) == len(spec.members)

    def test_unknown_set_raises_with_known_names(self):
        with pytest.raises(KeyError, match="gen-smoke"):
            benchmark_set("no-such-set")

    def test_all_sets_deterministic_order(self):
        names = [s.name for s in all_sets()]
        assert names == sorted(names)
        assert names == [s.name for s in all_sets()]  # stable

    def test_reregistration_is_idempotent(self):
        spec = benchmark_set("gen-smoke")
        assert register_set(dataclasses.replace(spec)) is spec

    def test_conflicting_reregistration_rejected(self):
        spec = benchmark_set("gen-smoke")
        clash = dataclasses.replace(
            spec, members=spec.members[:-1] + ("gen9999",),
            seeds=spec.seeds[:-1] + (9999,))
        with pytest.raises(ValueError, match="already registered"):
            register_set(clash)

    def test_register_and_resolve_roundtrip(self):
        name = "test-tmp-set"
        try:
            spec = register_set(BenchmarkSet(
                name=name, description="scratch", kind="generated",
                members=("gen7", "gen8"), seeds=(7, 8), quick=True))
            assert benchmark_set(name) is spec
        finally:
            _SETS.pop(name, None)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            BenchmarkSet(name="x", description="", kind="mystery",
                         members=("a",))

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError, match="no members"):
            BenchmarkSet(name="x", description="", kind="fixed",
                         members=())

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BenchmarkSet(name="x", description="", kind="fixed",
                         members=("a", "a"))

    def test_seed_member_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            BenchmarkSet(name="x", description="", kind="generated",
                         members=("gen1", "gen2"), seeds=(1,))

    def test_sets_are_immutable(self):
        spec = benchmark_set("fixed12")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.members = ()
