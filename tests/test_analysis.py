"""Tests for the C1/C2 analyzer: per-pattern classification and the
Table 1/2 reproduction over the workloads."""

import pytest

from repro.analysis.analyzer import analyze_source
from repro.workloads import motifs
from repro.workloads.spec import BENCHMARKS, workload


class TestPatternClassification:
    """Each motif in isolation must classify exactly as intended."""

    @pytest.mark.parametrize("generator,expected", [
        (lambda: motifs.gen_uc("t", 5), {"uc": 5}),
        (lambda: motifs.gen_dc("t", 4), {"dc": 4, "uc": 1}),
        (lambda: motifs.gen_mf("t", 3, n_free=2), {"mf": 5}),
        (lambda: motifs.gen_su("t", 6), {"su": 6}),
        (lambda: motifs.gen_nf("t", 3), {"nf": 3, "k2": 1}),
        (lambda: motifs.gen_k1("t", 2, 1), {"k1": 3}),
        (lambda: motifs.gen_k2("t", 4), {"k2": 4}),
        (lambda: motifs.gen_k2("t", 5), {"k2": 5}),
        (lambda: motifs.gen_untagged_dc("t", 2), {"k2": 2, "uc": 1}),
    ])
    def test_motif_counts(self, generator, expected):
        report = analyze_source(generator(), name="motif")
        got = {"uc": report.uc, "dc": report.dc, "mf": report.mf,
               "su": report.su, "nf": report.nf, "k1": report.k1,
               "k2": report.k2}
        got = {key: value for key, value in got.items() if value}
        assert got == expected

    def test_k1_fixed_requires_dispatch(self):
        report = analyze_source(motifs.gen_k1("t", 2, 3), name="k1")
        assert report.k1 == 5
        assert report.k1_fixed == 2  # only the dispatched pointer type

    def test_vbe_is_sum_of_all_categories(self):
        source = (motifs.gen_uc("a", 2) + motifs.gen_mf("b", 1) +
                  motifs.gen_su("c", 3))
        report = analyze_source(source, name="sum")
        assert report.vbe == report.uc + report.dc + report.mf + \
            report.su + report.nf + report.vae
        assert report.vae == report.k1 + report.k2

    def test_clean_code_reports_nothing(self):
        report = analyze_source("""
            long f(long x) { return x * 2; }
            int main(void) { return (int)f(21); }
        """, name="clean")
        assert report.vbe == 0

    def test_compatible_fptr_assignment_not_a_violation(self):
        report = analyze_source("""
            long g(long x) { return x; }
            long (*p)(long) = g;
            int main(void) { return (int)p(1); }
        """, name="compat")
        assert report.vbe == 0

    def test_c2_counts_syscall_outside_libc(self):
        report = analyze_source(
            "int main(void) { return (int)__syscall(1, 0, 0, 0); }",
            name="raw")
        assert report.c2 == 1

    def test_c2_exempts_libc(self):
        from repro.analysis.analyzer import Analyzer
        from repro.toolchain import frontend
        checked = frontend(
            "int main(void) { return (int)__syscall(1, 0, 0, 0); }",
            name="libc")
        assert Analyzer(checked).c2_findings() == 0


class TestTable1Reproduction:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_benchmark_counts_match_expected(self, name):
        spec = workload(name)
        report = analyze_source(spec.source, name=name)
        got = {"VBE": report.vbe, "UC": report.uc, "DC": report.dc,
               "MF": report.mf, "SU": report.su, "NF": report.nf,
               "VAE": report.vae}
        assert got == spec.expected_table1

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_table2_classification(self, name):
        spec = workload(name)
        report = analyze_source(spec.source, name=name)
        got = {"K1": report.k1, "K2": report.k2,
               "K1-fixed": report.k1_fixed}
        assert got == spec.expected_table2

    def test_shape_matches_paper(self):
        """Relative ordering from the paper's Table 1 must hold:
        perlbench and gcc dominate; four benchmarks report zero."""
        reports = {name: analyze_source(workload(name).source, name=name)
                   for name in BENCHMARKS}
        zeros = {name for name, r in reports.items() if r.vbe == 0}
        assert zeros == {"mcf", "gobmk", "sjeng", "lbm"}
        ranked = sorted(reports, key=lambda n: reports[n].vbe,
                        reverse=True)
        assert set(ranked[:2]) == {"perlbench", "gcc"}
        # exactly five benchmarks retain violations after elimination
        remaining = {name for name, r in reports.items() if r.vae > 0}
        assert remaining == {"perlbench", "bzip2", "gcc", "libquantum",
                             "milc"}

    def test_libc_has_violations_like_musl(self):
        """The paper: MUSL had 45 C1 violations (5 K1, 40 K2); simlibc
        deliberately contains a couple of the same shapes."""
        from repro.workloads.libc import LIBC_SOURCE
        report = analyze_source(LIBC_SOURCE, name="libc-check")
        assert report.vbe > 0
        assert report.k2 >= 1  # thread_spawn's fptr-through-long


class TestVariadicFptrCasts:
    """τ(...) ↔ τ(x, ...) casts: still K-candidates (the canonical
    types differ), but ``K1-fixed`` must respect the CFG generator's
    variadic prefix rule — a dispatch the generator admits needs no
    source fix."""

    PREFIX_COMPATIBLE = """
        long vf(long x) { return x + 1; }
        long (*vp)(long, ...) = vf;
        int main(void) { return (int)vp(41); }
    """

    INCOMPATIBLE = """
        long wf(double x) { return 1; }
        long (*wp)(long, ...) = wf;
        int main(void) { return (int)wp(41); }
    """

    def test_prefix_compatible_cast_stays_k1(self):
        report = analyze_source(self.PREFIX_COMPATIBLE, name="prefix")
        assert report.vae == 1 and report.k1 == 1
        assert [c.category for c in report.classified] == ["K1"]

    def test_prefix_compatible_dispatch_needs_no_fix(self):
        report = analyze_source(self.PREFIX_COMPATIBLE, name="prefix")
        assert report.k1_fixed == 0

    def test_incompatible_variadic_dispatch_needs_fix(self):
        report = analyze_source(self.INCOMPATIBLE, name="incompat")
        assert report.k1 == 1 and report.k1_fixed == 1

    def test_undispatched_variadic_cast_needs_no_fix(self):
        source = """
            long vf(long x) { return x + 1; }
            long (*vp)(long, ...) = vf;
            int main(void) { return 0; }
        """
        report = analyze_source(source, name="nodispatch")
        assert report.k1 == 1 and report.k1_fixed == 0

    def test_runtime_agrees_with_k1_fixed(self):
        """The fix claim is grounded: the prefix-compatible dispatch
        runs to completion under MCFI, the incompatible one halts."""
        from repro.toolchain import compile_and_run
        ok = compile_and_run({"prefix": self.PREFIX_COMPATIBLE},
                             verify=True)
        assert ok.to_dict()["status"] == "ok"
        assert ok.exit_code == 42
        bad = compile_and_run({"incompat": self.INCOMPATIBLE},
                              verify=True)
        assert bad.to_dict()["status"] == "violation"


class TestAnalysisReportSerialization:
    def test_round_trip_through_dict(self):
        report = analyze_source(workload("perlbench").source,
                                name="perlbench")
        data = report.to_dict()
        assert data["kind"] == "analysis"
        assert data["table1"] == report.table1_row()
        assert data["table2"] == report.table2_row()
        assert len(data["casts"]) == report.vbe
        from repro.analysis.analyzer import AnalysisReport
        clone = AnalysisReport.from_dict(data)
        assert clone.table1_row() == report.table1_row()
        assert clone.table2_row() == report.table2_row()
        assert clone.unit == "perlbench" and clone.c2 == report.c2

    def test_json_stable(self):
        import json
        report = analyze_source(workload("bzip2").source, name="bzip2")
        first = json.dumps(report.to_dict(), sort_keys=True)
        second = json.dumps(
            analyze_source(workload("bzip2").source,
                           name="bzip2").to_dict(), sort_keys=True)
        assert first == second
