"""Checked-in minimized repros from corpus triage (PR 10 onward).

Every fixed miscompile/frontend bug leaves a repro in
``tests/corpus_regressions/`` with its expectation in header
directives:

* ``// expect-error: <substring>`` — the frontend must reject it with
  a clean :class:`~repro.errors.CompileError` containing the text;
* ``// expect-exit: N`` + ``// expect-output: <line>``* — the program
  must run **bit-identically** across the whole differential matrix
  (x64/x32 × devirtualize on/off × block dispatch vs step_reference)
  with exactly that behavior and zero violations.

The acceptance bar from ISSUE 10: every repro is <= 25 source lines
(comment headers excluded).
"""

from pathlib import Path

import pytest

from repro.build.session import BuildSession
from repro.errors import CompileError
from repro.runtime.runtime import Runtime
from repro.toolchain import frontend

REPRO_DIR = Path(__file__).parent / "corpus_regressions"
REPROS = sorted(REPRO_DIR.glob("*.c"))


def _parse(path):
    source = path.read_text(encoding="utf-8")
    directives = {"error": None, "exit": None, "output": []}
    for line in source.splitlines():
        line = line.strip()
        if line.startswith("// expect-error:"):
            directives["error"] = line.split(":", 1)[1].strip()
        elif line.startswith("// expect-exit:"):
            directives["exit"] = int(line.split(":", 1)[1])
        elif line.startswith("// expect-output:"):
            directives["output"].append(line.split(":", 1)[1].strip())
    return source, directives


def _code_lines(source):
    return [line for line in source.splitlines()
            if line.strip() and not line.strip().startswith("//")]


def test_repro_directory_populated():
    assert len(REPROS) >= 5


@pytest.mark.parametrize(
    "path", REPROS, ids=[p.stem for p in REPROS])
def test_repro_is_minimized(path):
    source, _ = _parse(path)
    assert len(_code_lines(source)) <= 25, \
        f"{path.name} exceeds the 25-line minimization bar"


@pytest.mark.parametrize(
    "path", REPROS, ids=[p.stem for p in REPROS])
def test_repro_expectation_holds(path):
    source, directives = _parse(path)
    if directives["error"] is not None:
        with pytest.raises(CompileError) as exc_info:
            frontend(source, name=path.stem)
        assert directives["error"] in str(exc_info.value)
        return

    assert directives["exit"] is not None, \
        f"{path.name} has no expectation directives"
    expected_output = "".join(line + "\n"
                              for line in directives["output"])
    behaviors = set()
    for arch in ("x64", "x32"):
        for devirt in (False, True):
            session = BuildSession(arch=arch, devirtualize=devirt)
            program = session.build({path.stem: source}).program
            runtime = Runtime(program)
            result = runtime.run(max_steps=3_000_000)
            assert not result.violations, \
                f"{path.name} [{arch} devirt={devirt}]: " \
                f"{result.violations}"
            behaviors.add((result.exit_code, result.output))
            if arch == "x64" and not devirt:
                reference = Runtime(program)
                cpu = reference.main_cpu()
                cpu.step = cpu.step_reference
                ref = reference.run(max_steps=3_000_000)
                behaviors.add((ref.exit_code, ref.output))
    assert behaviors == {(directives["exit"],
                          expected_output.encode("latin-1"))}, \
        f"{path.name}: matrix behaviors {behaviors!r}"
