"""Concurrent dlopen/dlclose interleavings under the seeded scheduler.

The regression surface: in scheduled mode an update transaction runs as
a scheduler task, so a second dlopen/dlclose could start a *competing*
republish while the first was still in flight — two journals snapshot
mid-update state, the last transaction to run silently wins, and a
rolled-back load could restore a stale update-lock owner.  The linker
now drains any in-flight update before starting a new load
(``DynamicLinker._drain_pending_updates``), making republishes strictly
serial.

Property under test, across adversarial seeds: concurrent open/close
churn of the same module never leaves a stale icache/dispatch-cache
entry executable, never publishes tables that disagree with the
runtime's CFG, and never wedges the update lock.
"""

import pytest

from repro.linker.dynamic_linker import DynamicLinker
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_and_link, compile_module
from repro.vm.scheduler import Scheduler

LIB_SOURCE = "int libfn(int x) { return x * 3 + 1; }"
OTHER_SOURCE = "int otherfn(int x) { return x - 5; }"

DRIVER_MAIN = {"main": """
    int main(void) { return 0; }
"""}

#: The VM-level scenario: the main thread churns dlopen -> call via
#: PLT -> dlclose while a spinner thread keeps executing indirect
#: branches (check transactions) through every update transaction.
CHURN_MAIN = {"main": """
    int libfn(int x);
    long ticks;
    void spinner(long n) {
        long i;
        for (i = 0; i < n; i++) {
            ticks += classify((int)(i & 7));
            sched_yield();
        }
    }
    int classify(int x) {
        switch (x) {
            case 0: return 1;
            case 1: return 2;
            case 2: return 3;
            default: return 0;
        }
    }
    int main(void) {
        long h;
        int round;
        thread_spawn(spinner, 300);
        for (round = 0; round < 3; round++) {
            h = dlopen("plugin");
            if (h == 0) { return 99; }
            if (libfn(10) != 31) { return 98; }
            if (dlclose(h) != 0) { return 97; }
        }
        return 0;
    }
"""}


def _make(source, *, extra=False):
    program = compile_and_link(source, mcfi=True,
                               allow_unresolved=["libfn"])
    runtime = Runtime(program)
    linker = DynamicLinker(runtime)
    linker.register("plugin", compile_module(LIB_SOURCE, name="plugin"))
    if extra:
        linker.register("other",
                        compile_module(OTHER_SOURCE, name="other"))
    return runtime, linker


def _stale_entries(runtime, lo, hi):
    """Cache entries and executable pages inside a closed code range."""
    stale = [a for a in runtime.icache if lo <= a < hi]
    stale += [a for a in runtime.dispatch_cache.closures if lo <= a < hi]
    stale += [a for a, b in runtime.dispatch_cache.blocks.items()
              if b.overlaps(lo, hi)]
    stale += [a for a in range(lo, hi, 0x1000)
              if runtime.memory.is_executable(a)]
    return stale


class TestVmLevelChurn:
    """Open -> execute -> close churn with real check transactions."""

    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    def test_no_stale_executable_entries_after_churn(self, seed):
        runtime, linker = _make(CHURN_MAIN)
        code_floor = linker._code_cursor
        result = runtime.run_scheduled(seed=seed, burst=2)
        assert result.ok, result.violation or result.fault
        assert result.exit_code == 0
        # Every plugin instance loaded during the run lived in
        # [code_floor, final cursor) and was closed before exit: the
        # whole band must be sealed and cache-free, and no table entry
        # may point into it.
        assert not linker.loaded
        stale = _stale_entries(runtime, code_floor, linker._code_cursor)
        assert not stale, [hex(a) for a in stale]
        tables = runtime.id_tables
        assert not [a for a in tables.tary_ecns if a >= code_floor]
        assert not runtime.update_lock.held


class TestDriverLevelInterleaving:
    """Python-driver churn: both drivers race open/close of one module."""

    ROUNDS = 4

    def _driver(self, linker, scheduler, seed, name="plugin"):
        import random
        rng = random.Random(seed)
        for _ in range(self.ROUNDS):
            for _ in range(rng.randrange(4)):
                yield
            handle = linker.dlopen(name)
            for _ in range(rng.randrange(4)):
                yield
            if handle:
                linker.dlclose(handle)

    def _quiescent_ok(self, runtime, linker):
        """Invariants that must hold whenever no update is in flight."""
        if any(task.alive for task in linker._inflight):
            return
        assert not runtime.update_lock.held
        cfg = runtime.cfg
        tables = runtime.id_tables
        assert tables.tary_ecns == cfg.tary_ecns
        assert tables.bary_ecns == cfg.bary_ecns

    def _checker(self, runtime, linker, drivers):
        while any(task.alive for task in drivers):
            self._quiescent_ok(runtime, linker)
            yield

    @pytest.mark.parametrize("seed", range(12))
    def test_same_module_race_stays_serializable(self, seed):
        runtime, linker = _make(DRIVER_MAIN, extra=True)
        scheduler = Scheduler(seed=seed)
        runtime._scheduler = scheduler
        code_floor = linker._code_cursor
        drivers = [
            scheduler.add_generator(
                self._driver(linker, scheduler, 100 + seed), name="a"),
            scheduler.add_generator(
                self._driver(linker, scheduler, 200 + seed), name="b"),
            scheduler.add_generator(
                self._driver(linker, scheduler, 300 + seed,
                             name="other"), name="c"),
        ]
        scheduler.add_generator(
            self._checker(runtime, linker, drivers), name="check")
        outcome = scheduler.run(max_ticks=500_000)
        assert outcome.fault is None, outcome.describe()
        linker._drain_pending_updates()
        # Fully quiescent now: everything closed, nothing published.
        self._quiescent_ok(runtime, linker)
        assert not linker.loaded
        assert runtime.id_tables.bary_ecns == runtime.cfg.bary_ecns
        stale = _stale_entries(runtime, code_floor, linker._code_cursor)
        assert not stale, [hex(a) for a in stale]

    @pytest.mark.parametrize("seed", [0, 7])
    def test_double_close_of_drained_handle_is_noop(self, seed):
        """A dlclose racing another dlclose of the same handle: the
        drain completes the first unload, and the second returns -1
        instead of double-unloading."""
        runtime, linker = _make(DRIVER_MAIN)
        scheduler = Scheduler(seed=seed)
        runtime._scheduler = scheduler
        handle = linker.dlopen("plugin")
        assert handle
        linker._drain_pending_updates()

        results = []

        def closer():
            results.append(linker.dlclose(handle))
            yield

        scheduler.add_generator(closer(), name="x")
        scheduler.add_generator(closer(), name="y")
        scheduler.run(max_ticks=100_000)
        linker._drain_pending_updates()
        assert sorted(results) == [-1, 0]
        assert not linker.loaded
        assert not runtime.update_lock.held
