"""Tests for the MCFI 32-bit ID encoding (paper Fig. 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.idencoding import (
    DecodedId,
    INVALID_ID,
    MAX_ECN,
    MAX_VERSION,
    bump_version,
    is_valid_id,
    pack_id,
    same_version,
    unpack_id,
)

ecns = st.integers(min_value=0, max_value=MAX_ECN)
versions = st.integers(min_value=0, max_value=MAX_VERSION)


class TestPackUnpack:
    @given(ecns, versions)
    def test_roundtrip(self, ecn, version):
        decoded = unpack_id(pack_id(ecn, version))
        assert decoded == DecodedId(ecn=ecn, version=version, valid=True)

    @given(ecns, versions)
    def test_reserved_bits(self, ecn, version):
        ident = pack_id(ecn, version)
        raw = ident.to_bytes(4, "little")
        # LSB of each byte must be 1, 0, 0, 0 from low byte to high byte.
        assert raw[0] & 1 == 1
        assert raw[1] & 1 == 0
        assert raw[2] & 1 == 0
        assert raw[3] & 1 == 0

    def test_zero_is_invalid(self):
        assert not is_valid_id(INVALID_ID)
        assert not unpack_id(0).valid

    def test_bounds_rejected(self):
        with pytest.raises(ValueError):
            pack_id(MAX_ECN + 1, 0)
        with pytest.raises(ValueError):
            pack_id(0, MAX_VERSION + 1)
        with pytest.raises(ValueError):
            pack_id(-1, 0)

    @given(ecns, versions)
    def test_extreme_values_roundtrip(self, ecn, version):
        for e, v in [(0, 0), (MAX_ECN, MAX_VERSION), (ecn, 0),
                     (0, version)]:
            assert unpack_id(pack_id(e, v)) == DecodedId(e, v, True)


class TestMisalignedReads:
    """The reserved-bit design must make any misaligned 4-byte read of
    a table of valid IDs decode as invalid (paper Sec. 5.1)."""

    @given(st.lists(st.tuples(ecns, versions), min_size=2, max_size=8),
           st.integers(min_value=1, max_value=3))
    def test_shifted_read_is_invalid(self, ids, shift):
        table = b"".join(pack_id(e, v).to_bytes(4, "little")
                         for e, v in ids)
        for offset in range(shift, len(table) - 4, 4):
            word = int.from_bytes(table[offset:offset + 4], "little")
            assert not is_valid_id(word), (
                f"misaligned read at {offset} produced a valid ID")


class TestVersionComparison:
    @given(ecns, ecns, versions)
    def test_same_version_ignores_ecn(self, ecn_a, ecn_b, version):
        assert same_version(pack_id(ecn_a, version), pack_id(ecn_b, version))

    @given(ecns, versions, versions)
    def test_different_versions_detected(self, ecn, va, vb):
        if va == vb:
            return
        assert not same_version(pack_id(ecn, va), pack_id(ecn, vb))

    @given(ecns, ecns, versions)
    def test_full_equality_iff_same_ecn_and_version(self, ea, eb, v):
        equal = pack_id(ea, v) == pack_id(eb, v)
        assert equal == (ea == eb)

    def test_bump_wraps(self):
        assert bump_version(0) == 1
        assert bump_version(MAX_VERSION) == 0
