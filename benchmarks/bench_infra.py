"""Infra artifact cache — cold build vs warm rebuild of the campaign.

Times a cold ``build_program`` sweep (compile + instrument + link every
module) against a warm sweep through the same cache, for the default
instances over the benchmark subset.  The claim under test is the
"instrument once, reuse across programs" economics of ``.mcfo``
caching: the warm pass must be all hits and never recompile.

Assertions are on cache statistics, not wall time: timing varies with
load, but hits/misses are deterministic.
"""

import tempfile
import time
from pathlib import Path

from benchmarks.conftest import selected_benchmarks, write_result
from repro.infra.cache import ArtifactCache
from repro.infra.campaign import build_program

ARCHS = ("x64",)
MCFI = (False, True)


def _sweep(cache):
    for name in selected_benchmarks():
        for arch in ARCHS:
            for mcfi in MCFI:
                build_program(name, arch, mcfi, cache=cache)


def test_infra_cache_warm_rebuild(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(Path(tmp) / "cache")
        _sweep(cache)  # cold: populate
        cold = cache.stats.snapshot()
        assert cold.misses > 0 and cold.stores > 0

        def warm():
            _sweep(cache)

        benchmark.pedantic(warm, rounds=1, iterations=1)
        delta = cache.stats.delta(cold)
        assert delta.misses == 0
        assert delta.hits >= len(selected_benchmarks()) * len(MCFI)

        counts = cache.entry_count()
        lines = [
            "infra artifact cache, "
            f"{len(selected_benchmarks())} benchmarks x "
            f"{{native, mcfi}} x {ARCHS}",
            f"cold sweep: {cold.hits} hits / {cold.misses} misses / "
            f"{cold.stores} stores",
            f"warm sweep: {delta.hits} hits / {delta.misses} misses "
            f"(hit rate {delta.hit_rate:.0%})",
            f"entries: {counts['objects']} objects, "
            f"{counts['programs']} programs",
        ]
        write_result("infra_cache", "\n".join(lines))


def test_unit_grain_cache_and_pool(benchmark):
    """Function-grain ``repro.build`` economics under the campaign lens:
    a second *cold* build in a fresh session recompiles nothing (all
    unit hits), and a pool-parallel cold build fans dirty units out
    while staying byte-identical to the serial one."""
    from repro.build import build_program as unit_build
    from repro.infra.pool import WorkerPool
    from repro.workloads.spec import workload

    name = "gcc"
    source = workload(name).source

    def cell():
        with tempfile.TemporaryDirectory() as tmp:
            cache = ArtifactCache(Path(tmp) / "cache")
            start = time.perf_counter()
            first = unit_build({name: source}, cache=cache)
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            second = unit_build({name: source}, cache=cache)
            hit_s = time.perf_counter() - start
            pooled = unit_build({name: source},
                                pool=WorkerPool(workers=4))
            return first, second, pooled, cold_s, hit_s

    first, second, pooled, cold_s, hit_s = benchmark.pedantic(
        cell, rounds=1, iterations=1)
    assert second.stats["unit_hits"] == second.stats["units"]
    assert second.stats["unit_compiled"] == 0
    assert pooled.stats["unit_parallel"] > 0
    assert pooled.program.module.code == first.program.module.code
    assert pooled.program.data.image == first.program.data.image
    lines = [
        f"unit-grain build cache, workload {name} "
        f"({first.stats['units']} units)",
        f"cold build (empty cache):   {cold_s * 1000:8.2f} ms, "
        f"{first.stats['unit_compiled']} units compiled",
        f"cold build (unit hits):     {hit_s * 1000:8.2f} ms, "
        f"{second.stats['unit_hits']} cache hits, 0 compiled",
        f"pool build (4 workers):     "
        f"{pooled.stats['unit_parallel']} units via pool, "
        "image byte-identical to serial",
    ]
    write_result("infra_units", "\n".join(lines))
