"""Infra artifact cache — cold build vs warm rebuild of the campaign.

Times a cold ``build_program`` sweep (compile + instrument + link every
module) against a warm sweep through the same cache, for the default
instances over the benchmark subset.  The claim under test is the
"instrument once, reuse across programs" economics of ``.mcfo``
caching: the warm pass must be all hits and never recompile.

Assertions are on cache statistics, not wall time: timing varies with
load, but hits/misses are deterministic.
"""

import tempfile
from pathlib import Path

from benchmarks.conftest import selected_benchmarks, write_result
from repro.infra.cache import ArtifactCache
from repro.infra.campaign import build_program

ARCHS = ("x64",)
MCFI = (False, True)


def _sweep(cache):
    for name in selected_benchmarks():
        for arch in ARCHS:
            for mcfi in MCFI:
                build_program(name, arch, mcfi, cache=cache)


def test_infra_cache_warm_rebuild(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(Path(tmp) / "cache")
        _sweep(cache)  # cold: populate
        cold = cache.stats.snapshot()
        assert cold.misses > 0 and cold.stores > 0

        def warm():
            _sweep(cache)

        benchmark.pedantic(warm, rounds=1, iterations=1)
        delta = cache.stats.delta(cold)
        assert delta.misses == 0
        assert delta.hits >= len(selected_benchmarks()) * len(MCFI)

        counts = cache.entry_count()
        lines = [
            "infra artifact cache, "
            f"{len(selected_benchmarks())} benchmarks x "
            f"{{native, mcfi}} x {ARCHS}",
            f"cold sweep: {cold.hits} hits / {cold.misses} misses / "
            f"{cold.stores} stores",
            f"warm sweep: {delta.hits} hits / {delta.misses} misses "
            f"(hit rate {delta.hit_rate:.0%})",
            f"entries: {counts['objects']} objects, "
            f"{counts['programs']} programs",
        ]
        write_result("infra_cache", "\n".join(lines))
