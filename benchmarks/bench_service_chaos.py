"""Self-healing service plane under chaos (PR 7 tentpole).

Runs the :mod:`repro.service.chaos` campaign — the resilient
:class:`~repro.service.resilience.ResilientServiceLoop` and the
fault-oblivious PR 6 loop under the *same* seeded fault schedule (torn
batches, bit-flip and stale-version storms, poisoned dlopens,
mid-round tenant crashes) — at 10/100(/1000 with ``REPRO_FULL=1``)
tenants, and gates on the resilience acceptance bars:

* **Zero undetected corruptions** — no forged edge is ever admitted;
  every corrupt word is accounted for by an audit, a sweep or the
  teardown pass.  The parity-spaced ID encoding makes this a
  structural guarantee, and this suite is where it is measured.
* **Availability** — >= 90% of per-shard round commits stay clean at
  100 tenants while faults land (quarantined shards park, their
  siblings keep serving).
* **Recovery** — the 100-tenant cell must actually quarantine and
  recover shards, each recovery verified byte-identical to a clean
  rebuild, with MTTR bounded by the breaker's maximum cooldown.
* **Determinism** — the whole campaign (fault events, health
  transitions, both legs' reports) is byte-identical across two
  same-seed runs, and matches the pinned golden trace
  ``tests/golden/service_chaos_seed7.jsonl``.

The measured table lands in ``benchmarks/results/service_chaos.txt``.

Runnable two ways:

- under pytest (tier-1: ``python -m pytest benchmarks/bench_service_chaos.py``),
- ``bench_service_chaos.py --quick`` — the CI ``chaos-smoke`` job:
  the 10/100-tenant campaign asserting the gates above plus trace
  byte-identity across two runs.
"""

import sys
from pathlib import Path

if __package__ in (None, ""):  # script invocation (CI smoke job)
    _root = Path(__file__).resolve().parents[1]
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from benchmarks.conftest import FULL, write_result
from repro.service.chaos import (
    AVAILABILITY_FLOOR,
    CAMPAIGN_POLICY,
    cell_checks,
    chaos_rows,
    chaos_trace_jsonl,
    render_chaos_table,
)

#: Seed 7 matches the pinned golden trace.
SEED = 7

#: Tenant counts for the pytest sweep; the 1000-tenant point joins
#: under REPRO_FULL=1.
COUNTS = (10, 100, 1000) if FULL else (10, 100)

#: The campaign counts the golden trace pins (always the quick pair,
#: so the FULL sweep doesn't invalidate the CI artifact).
GOLDEN_COUNTS = (10, 100)
GOLDEN = Path(__file__).resolve().parents[1] / "tests" / "golden" \
    / "service_chaos_seed7.jsonl"

#: MTTR bound: a quarantined shard must rejoin within one maximum
#: breaker cooldown (the escalation ceiling), not spiral.
MTTR_BOUND = CAMPAIGN_POLICY.max_cooldown_ticks


def _cell(cells, tenants):
    return next(cell for cell in cells if cell["tenants"] == tenants)


def test_service_chaos_table(benchmark):
    """The headline artifact: every cell clears its gates."""
    cells = benchmark.pedantic(
        lambda: chaos_rows(COUNTS, SEED), rounds=1, iterations=1)
    table = render_chaos_table(cells, SEED)
    write_result("service_chaos", table)
    failures = [(cell["tenants"], name)
                for cell in cells
                for name, ok in cell_checks(cell) if not ok]
    assert not failures, f"{failures}\n{table}"
    hundred = _cell(cells, 100)["resilient"]
    benchmark.extra_info["availability_100"] = round(
        hundred["availability"], 2)
    benchmark.extra_info["mttr_max_100"] = hundred["mttr_max"]


def test_chaos_zero_undetected_corruptions():
    """The hard gate, stated on its own: no forged edge, ever."""
    cells = chaos_rows(COUNTS, SEED)
    for cell in cells:
        r = cell["resilient"]
        assert r["undetected_corruptions"] == 0, cell
        assert r["forged_allows"] == 0, cell
        # ... while the same faults leave the oblivious baseline
        # carrying corrupt words out of the run.
        assert r["negative_checks"] > 0, cell
    assert any(cell["baseline"]["residual_corruptions"] > 0
               for cell in cells), cells


def test_chaos_recovery_exercised_at_100_tenants():
    """Quarantine/recovery must actually fire, and fast enough."""
    cell = _cell(chaos_rows((100,), SEED), 100)
    r = cell["resilient"]
    assert r["quarantines"] >= 1, r
    assert r["recoveries"] >= 1, r
    assert r["rebuilds_verified"] == r["recoveries"], r
    assert r["availability"] >= AVAILABILITY_FLOOR, r
    assert 0 < r["mttr_max"] <= MTTR_BOUND, r
    # Recovered bands are byte-identical to a clean rebuild.
    assert cell["resilient_bands_ok"], r


def test_chaos_campaign_byte_identical():
    """Same seed => byte-identical campaign trace and artifact."""
    first = chaos_rows(GOLDEN_COUNTS, SEED)
    second = chaos_rows(GOLDEN_COUNTS, SEED)
    assert chaos_trace_jsonl(first) == chaos_trace_jsonl(second)
    assert (render_chaos_table(first, SEED)
            == render_chaos_table(second, SEED))


def test_chaos_matches_golden_trace():
    """The campaign byte-matches the pinned golden (CI cmp gate)."""
    cells = chaos_rows(GOLDEN_COUNTS, SEED)
    assert GOLDEN.read_bytes() == (
        chaos_trace_jsonl(cells) + "\n").encode()


# -- script entry point (CI chaos-smoke job) --------------------------------


def _main(argv):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 10/100-tenant campaign, all "
                             "gates, trace byte-identity")
    args = parser.parse_args(argv)

    counts = GOLDEN_COUNTS if args.quick else COUNTS
    cells = chaos_rows(counts, SEED)
    table = render_chaos_table(cells, SEED)
    print(table)
    write_result("service_chaos", table)

    hundred = _cell(cells, 100)["resilient"]
    twin = chaos_rows(counts, SEED)
    checks = [
        (all(ok for cell in cells for _, ok in cell_checks(cell)),
         "a cell failed its gates (see table)"),
        (hundred["quarantines"] >= 1 and hundred["recoveries"] >= 1,
         "quarantine/recovery not exercised at 100 tenants"),
        (0 < hundred["mttr_max"] <= MTTR_BOUND,
         f"MTTR {hundred['mttr_max']} outside (0, {MTTR_BOUND}]"),
        (chaos_trace_jsonl(cells) == chaos_trace_jsonl(twin),
         "campaign trace not byte-identical across runs"),
    ]
    failed = [message for ok, message in checks if not ok]
    for message in failed:
        print(f"FAIL: {message}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
