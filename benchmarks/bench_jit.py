"""JIT code-installation scaling (extension of the Fig. 6 experiment).

The paper's Fig. 6 *simulates* a JIT by refreshing ID versions at the
measured V8 rate; this benchmark drives the real thing built in
:mod:`repro.runtime.jit`: a guest program installs freshly compiled
functions at increasing rates, each installation running the complete
compile -> instrument -> verify -> seal -> regenerate-CFG -> update-
transaction pipeline.  The claim under test is the paper's scaling
argument: check transactions stay cheap no matter how often the policy
changes, because they only retry inside an update window.
"""

import pytest

from benchmarks.conftest import write_result
from repro.runtime.jit import JitEngine
from repro.runtime.runtime import Runtime
from repro.build import build_program


def guest_source(n_installs: int, calls_between: int) -> str:
    sources = "\n".join(
        f'    sources[{i}] = "long h{i}(long x) '
        f'{{ return x * 2 + {i}; }}"; names[{i}] = "h{i}";'
        for i in range(n_installs))
    return f"""
int main(void) {{
    char *sources[{n_installs}];
    char *names[{n_installs}];
    long (*f)(long);
    long total = 0;
    long i;
    long j;
{sources}
    for (i = 0; i < {n_installs}; i++) {{
        f = (long (*)(long))jit_compile(sources[i], names[i]);
        if (f == 0) {{ return 1; }}
        for (j = 0; j < {calls_between}; j++) {{
            total += f(j);
        }}
    }}
    print_int(total);
    return 0;
}}
"""


@pytest.mark.parametrize("n_installs,calls", [(1, 400), (4, 100),
                                              (8, 50)])
def test_install_rate_scaling(benchmark, n_installs, calls):
    """Same total indirect-call work, increasing install rates."""
    source = guest_source(n_installs, calls)
    program = build_program({"main": source}, mcfi=True).program

    def run():
        runtime = Runtime(program)
        JitEngine(runtime, verify=True)
        result = runtime.run()
        assert result.ok, result.violation or result.fault
        return runtime

    runtime = benchmark.pedantic(run, rounds=1, iterations=1)
    # dlopen caches by name: "hot" reinstalls return the cached handle,
    # so force distinct installs only counts the first; stats reflect it
    benchmark.extra_info["installs"] = runtime.jit_engine.stats.installs
    benchmark.extra_info["version"] = runtime.id_tables.version


def test_jit_throughput_table(benchmark):
    """Installations per second through the full verified pipeline."""
    import time
    program = build_program({"main": "int main(void){ return 0; }"},
                            mcfi=True).program
    lines = [f"{'installs':>9s} {'total s':>8s} {'ms/install':>11s} "
             f"{'verified':>9s}"]

    def sweep():
        runtime = Runtime(program)
        engine = JitEngine(runtime, verify=True)
        start = time.perf_counter()
        for index in range(12):
            engine.install_function(
                f"long gen{index}(long x) {{ return x + {index}; }}",
                f"gen{index}")
        elapsed = time.perf_counter() - start
        return engine, elapsed

    engine, elapsed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines.append(f"{engine.stats.installs:9d} {elapsed:8.3f} "
                 f"{1000 * elapsed / engine.stats.installs:11.2f} "
                 f"{'yes':>9s}")
    write_result("jit_throughput", "\n".join(lines))
    assert engine.stats.installs == 12
    assert engine.stats.failures == 0
