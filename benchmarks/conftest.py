"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper and writes
the formatted result to ``benchmarks/results/<artifact>.txt`` (so the
numbers quoted in EXPERIMENTS.md are reproducible), in addition to the
pytest-benchmark timing output.

Set ``REPRO_FULL=1`` to run the execution-heavy artifacts (Figs. 5-6,
gadget scans) over all twelve benchmarks; the default subset keeps the
suite under a few minutes while preserving every comparison the paper
makes (call-heavy vs loop-heavy benchmarks, integer vs floating point).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Execution-heavy subset: the two call-heaviest (largest overhead),
#: one mid, one near-zero, one floating-point benchmark.
SUBSET = ("perlbench", "gcc", "sjeng", "libquantum", "lbm")


def selected_benchmarks():
    from repro.workloads.spec import BENCHMARKS
    return BENCHMARKS if FULL else SUBSET


def write_result(artifact: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{artifact}.txt"
    path.write_text(text + "\n")


@pytest.fixture(scope="session")
def benchmarks_list():
    return selected_benchmarks()
