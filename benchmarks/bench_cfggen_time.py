"""Sec. 7 — CFG generation speed.

Paper: "it takes about 150 milliseconds for gcc, whose code size is
about 2.7MB" — the point being that type-matching CFG generation is
fast enough to run inside the dynamic linker.  Our gcc is ~1/15 the
size; the generator must stay well under the paper's bound.
"""

from benchmarks.conftest import write_result
from repro.cfg.generator import generate_cfg
from repro.experiments import cfg_generation_time, compiled
from repro.workloads.spec import BENCHMARKS


def test_cfggen_table(benchmark):
    timings = benchmark.pedantic(
        lambda: cfg_generation_time(BENCHMARKS, repeats=2),
        rounds=1, iterations=1)
    lines = [f"{'benchmark':12s} {'cfg-gen (ms)':>13s} {'code KiB':>9s}"]
    for name in BENCHMARKS:
        size_kib = len(compiled(name, "x64", True).module.code) / 1024
        lines.append(f"{name:12s} {timings[name] * 1000:13.2f} "
                     f"{size_kib:9.1f}")
    write_result("cfg_generation_time", "\n".join(lines))
    # fast enough for online (dlopen-time) use
    assert max(timings.values()) < 1.0


def test_cfggen_gcc_speed(benchmark):
    aux = compiled("gcc", "x64", True).module.aux
    cfg = benchmark(lambda: generate_cfg(aux))
    assert cfg.n_classes > 10
