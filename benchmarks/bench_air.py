"""Sec. 8.3 — AIR (Average Indirect-target Reduction) comparison.

Paper's table: binCFI ~0.987-0.992, classic CFI ~0.996-0.999, MCFI the
best of all on both architectures.  The tiny numeric differences hide
orders of magnitude of attack surface — which is why Table 3 is
reported alongside.
"""

from benchmarks.conftest import write_result
from repro.baselines.policies import (
    bincfi_policy,
    chunk_policy,
    classic_cfi_policy,
    mcfi_policy,
)
from repro.experiments import air_comparison, compiled
from repro.metrics.air import air_table
from repro.workloads.spec import BENCHMARKS


def test_air_table(benchmark):
    airs = benchmark.pedantic(lambda: air_comparison(BENCHMARKS),
                              rounds=1, iterations=1)
    order = ("chunk16", "binCFI", "classic-CFI", "MCFI")
    lines = [f"{'policy':12s} {'mean AIR':>10s}"]
    for name in order:
        lines.append(f"{name:12s} {airs[name]:10.5f}")
    lines.append("")
    lines.append(f"{'benchmark':12s} " +
                 " ".join(f"{p:>12s}" for p in order))
    for bench in BENCHMARKS:
        program = compiled(bench, "x64", True)
        aux = program.module.aux
        size = len(program.module.code)
        per = air_table([mcfi_policy(aux), classic_cfi_policy(aux),
                         bincfi_policy(aux),
                         chunk_policy(aux, program.module.base, size)],
                        target_space=size)
        lines.append(f"{bench:12s} " + " ".join(
            f"{per[p].air:12.5f}" for p in order))
    write_result("air_comparison", "\n".join(lines))

    assert airs["MCFI"] >= airs["classic-CFI"] >= airs["binCFI"] \
        >= airs["chunk16"]
    assert airs["MCFI"] > 0.99          # fine-grained
    assert airs["chunk16"] < airs["binCFI"]


def test_air_computation_speed(benchmark):
    from repro.baselines.policies import mcfi_policy
    from repro.experiments import compiled
    from repro.metrics.air import air_of_policy
    program = compiled("gcc", "x64", True)
    policy = mcfi_policy(program.module.aux)
    size = len(program.module.code)
    result = benchmark(lambda: air_of_policy(policy, size))
    assert result.air > 0.9
