"""Table 2 — K1/K2 classification of remaining violations.

Paper: five benchmarks retain violations; K1 cases (incompatible
function-pointer initializations) need source fixes only when the
pointer type is actually dispatched through; K2 cases (cast away and
back) never needed fixes.
"""

from benchmarks.conftest import write_result
from repro.experiments import table2_analysis
from repro.workloads.spec import workload


def test_table2(benchmark):
    rows = benchmark.pedantic(table2_analysis, rounds=1, iterations=1)
    assert set(rows) == {"perlbench", "bzip2", "gcc", "libquantum",
                         "milc"}
    lines = [f"{'benchmark':12s} {'K1':>4s} {'K2':>4s} {'K1-fixed':>9s}"]
    for name, row in rows.items():
        lines.append(f"{name:12s} {row['K1']:4d} {row['K2']:4d} "
                     f"{row['K1-fixed']:9d}")
        assert row == workload(name).expected_table2
    # gcc has a dead K1 case needing no fix (the paper's 14 cases)
    assert rows["gcc"]["K1"] > rows["gcc"]["K1-fixed"]
    write_result("table2_k1k2", "\n".join(lines))


def test_classification_speed(benchmark):
    from repro.analysis.analyzer import analyze_source
    source = workload("gcc").source
    report = benchmark(lambda: analyze_source(source, name="gcc"))
    assert report.k1 == 3
