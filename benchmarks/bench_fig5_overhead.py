"""Fig. 5 — MCFI execution overhead, no update transactions.

Paper: "the average overhead is around 4-6% on x86-32 and x86-64",
with call-heavy benchmarks (perlbench, gcc) highest and loop-heavy
numeric codes (mcf, lbm, milc) near zero.

The benchmark times one full instrumented VM run of each workload; the
artifact table reports the cycle-model overhead of every selected
benchmark against its uninstrumented twin.
"""

import pytest

from benchmarks.conftest import selected_benchmarks, write_result
from repro.experiments import compiled, fig5_overhead
from repro.metrics.overhead import arithmetic_mean_overhead
from repro.runtime.runtime import Runtime


def test_fig5_table(benchmark):
    """Regenerate the Fig. 5 series and persist it."""
    results = benchmark.pedantic(
        lambda: fig5_overhead(selected_benchmarks(), archs=("x64",)),
        rounds=1, iterations=1)
    flat = {name: result for (name, _), result in results.items()}
    lines = [f"{'benchmark':12s} {'native cycles':>14s} "
             f"{'mcfi cycles':>12s} {'overhead':>9s}"]
    for name, result in flat.items():
        lines.append(f"{name:12s} {result.native_cycles:14d} "
                     f"{result.mcfi_cycles:12d} "
                     f"{result.overhead_pct:8.2f}%")
    lines.append(f"{'average':12s} {'':14s} {'':12s} "
                 f"{arithmetic_mean_overhead(flat):8.2f}%")
    text = "\n".join(lines)
    write_result("fig5_overhead_x64", text)

    mean = arithmetic_mean_overhead(flat)
    assert 0.0 < mean < 15.0  # paper band: ~5%
    for result in flat.values():
        assert result.overhead_pct >= -0.5


@pytest.mark.parametrize("name", ["perlbench", "libquantum"])
@pytest.mark.parametrize("mcfi", [False, True],
                         ids=["native", "mcfi"])
def test_execution_time(benchmark, name, mcfi):
    """Wall-clock VM execution, native vs instrumented."""
    program = compiled(name, "x64", mcfi)

    def run():
        return Runtime(program).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.ok
    benchmark.extra_info["model_cycles"] = result.cycles
    benchmark.extra_info["instructions"] = result.instructions
