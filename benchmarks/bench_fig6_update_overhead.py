"""Fig. 6 — MCFI overhead with periodic update transactions.

Paper: a separate thread refreshes all ID versions at 50 Hz (the
measured V8 code-installation rate); "the average overhead is 6-7%,
which demonstrates MCFI's transactions scale well with frequent code
updates."  Here the updater fires every ``INTERVAL`` model cycles;
check transactions that land mid-update retry, so the Fig. 6 numbers
sit above Fig. 5's.
"""

import pytest

from benchmarks.conftest import selected_benchmarks, write_result
from repro.experiments import fig5_overhead, fig6_update_overhead

INTERVAL = 60_000


def test_fig6_table(benchmark):
    names = selected_benchmarks()
    fig5 = fig5_overhead(names, archs=("x64",))
    fig6 = benchmark.pedantic(
        lambda: fig6_update_overhead(names, interval=INTERVAL),
        rounds=1, iterations=1)
    lines = [f"{'benchmark':12s} {'fig5':>8s} {'fig6':>8s} "
             f"{'updates':>8s}"]
    deltas = []
    for name in names:
        base = fig5[(name, "x64")].overhead_pct
        updated = fig6[name].overhead_pct
        deltas.append(updated - base)
        lines.append(f"{name:12s} {base:7.2f}% {updated:7.2f}% "
                     f"{fig6[name].updates:8d}")
    text = "\n".join(lines)
    write_result("fig6_update_overhead", text)

    # Updates may only add overhead, and at least one benchmark must
    # observe several update transactions.
    assert all(delta >= -0.2 for delta in deltas)
    assert any(fig6[name].updates >= 3 for name in names)
    assert sum(deltas) > 0


@pytest.mark.parametrize("name", ["gcc"])
def test_fig6_execution_time(benchmark, name):
    def run():
        return fig6_update_overhead([name], interval=INTERVAL)[name]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["updates"] = result.updates
    benchmark.extra_info["overhead_pct"] = round(result.overhead_pct, 2)
