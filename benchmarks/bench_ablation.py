"""Ablations of MCFI design choices called out in DESIGN.md.

1. **Tary representation** — dense array indexed by code address (the
   paper's choice) vs a hash map: lookup speed is why the paper pays
   the alignment no-ops for a dense table.
2. **CFG precision** — type-matching (MCFI) vs "any address-taken
   function" (classic CFI's convenience) vs two-class coarse CFI:
   equivalence-class counts and mean target-set sizes quantify what
   type information buys.
3. **Update batch size** — the ``movnti`` parallel-copy granularity:
   smaller batches lengthen the window in which checks retry.
"""

import pytest

from benchmarks.conftest import write_result
from repro.baselines.policies import (
    bincfi_policy,
    classic_cfi_policy,
    mcfi_policy,
)
from repro.experiments import compiled, fig6_update_overhead


class TestTaryRepresentation:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.core.idencoding import pack_id
        dense = [0] * 65536
        sparse = {}
        for index in range(0, 65536, 8):
            ident = pack_id(index % 1000, 0)
            dense[index] = ident
            sparse[index] = ident
        return dense, sparse

    def test_dense_array_lookup(self, benchmark, tables):
        dense, _ = tables

        def lookups():
            total = 0
            for i in range(0, 65536, 64):
                total += dense[i]
            return total

        benchmark(lookups)

    def test_hash_map_lookup(self, benchmark, tables):
        _, sparse = tables

        def lookups():
            total = 0
            for i in range(0, 65536, 64):
                total += sparse.get(i, 0)
            return total

        benchmark(lookups)


class TestCfgPrecision:
    def test_precision_ablation_table(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        lines = [f"{'benchmark':12s} {'policy':12s} {'classes':>8s} "
                 f"{'mean |T|':>9s}"]
        for name in ("perlbench", "gcc", "libquantum"):
            aux = compiled(name, "x64", True).module.aux
            for policy_fn in (mcfi_policy, classic_cfi_policy,
                              bincfi_policy):
                policy = policy_fn(aux)
                sizes = [len(t) for t in policy.branch_targets.values()]
                mean = sum(sizes) / max(len(sizes), 1)
                lines.append(f"{name:12s} {policy.name:12s} "
                             f"{policy.n_classes:8d} {mean:9.1f}")
        write_result("ablation_cfg_precision", "\n".join(lines))

    def test_type_matching_buys_classes(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        aux = compiled("gcc", "x64", True).module.aux
        mcfi = mcfi_policy(aux)
        coarse = bincfi_policy(aux)
        # two-to-three orders of magnitude in the paper; >5x here
        assert mcfi.n_classes > 5 * coarse.n_classes


class TestUpdateBatchSize:
    def test_batch_size_ablation(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        lines = [f"{'batch':>6s} {'overhead':>9s} {'updates':>8s}"]
        overheads = {}
        for batch in (16, 256):
            result = fig6_update_overhead(
                ["libquantum"], interval=40_000, burst=16,
                batch=batch)["libquantum"]
            overheads[batch] = result.overhead_pct
            lines.append(f"{batch:6d} {result.overhead_pct:8.2f}% "
                         f"{result.updates:8d}")
        write_result("ablation_update_batch", "\n".join(lines))
        assert all(value >= 0.0 for value in overheads.values())
