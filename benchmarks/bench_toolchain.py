"""Toolchain benchmarks: stage profile + incremental rebuild economics.

Two cells:

* **stage breakdown** — where the TinyC -> loaded-program pipeline
  spends its time, stage by stage (engineering profile, not a paper
  artifact);
* **incremental rebuild table** — the PR 8 tentpole artifact: one
  :class:`repro.build.BuildSession` per workload, timing the cold
  build, a warm (no-op) rebuild, and single-function body-edit
  rebuilds.  Every rebuilt image must be byte-identical to a cold
  build of the same source, and the steady-state incremental rebuild
  must be >= 20x faster than cold.  The measured table lands in
  ``benchmarks/results/toolchain_incremental.txt``.

Runnable two ways:

- under pytest (tier-1: ``python -m pytest benchmarks/bench_toolchain.py``),
- ``bench_toolchain.py --quick`` — the CI ``build-smoke`` job: one
  workload asserting the warm rebuild is >= 2x faster than cold and
  that two independent sessions produce ``cmp``-identical artifacts
  (the deterministic-build property, checked byte for byte).
"""

import sys
from pathlib import Path

if __package__ in (None, ""):  # script invocation (CI smoke job)
    _root = Path(__file__).resolve().parents[1]
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import re
import statistics
import time

import pytest

from benchmarks.conftest import selected_benchmarks, write_result
from repro.build import BuildSession, build_program
from repro.workloads.spec import workload

#: Single-function-edit rebuilds timed per workload; sources alternate
#: between the original and the edited text, so after the first pair
#: every rebuild exercises the steady-state (body-memo + splice) path.
EDIT_ROUNDS = 6

_LITERAL_RE = re.compile(r"(?<![\w.])(\d+)(?![\w.])")


def edit_one_function(source):
    """``source`` with one integer literal inside one function body
    bumped — a single-function body edit that still compiles."""
    from repro.build.source_index import index_source
    from repro.toolchain import frontend
    spans = index_source(source)
    for span in spans or ():
        if span.kind != "func":
            continue
        for match in _LITERAL_RE.finditer(span.body):
            body = (span.body[:match.start()]
                    + str(int(match.group(1)) + 1)
                    + span.body[match.end():])
            candidate = source.replace(span.text, span.head + body, 1)
            try:
                frontend(candidate, name="edit")
            except Exception:  # noqa: BLE001 — try the next literal
                continue
            return candidate
    raise RuntimeError("no safe single-function edit found")


def _image(program):
    return (bytes(program.module.code), bytes(program.data.image),
            program.entry)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def measure_workload(name):
    """Cold/warm/incremental timings + byte-identity for one workload."""
    source = workload(name).source
    edited = edit_one_function(source)
    session = BuildSession()

    cold_s, result = _timed(lambda: session.build({name: source}))
    assert result.kind == "cold"
    warm_s, result = _timed(lambda: session.build({name: source}))
    assert result.kind == "warm"

    edit_seconds = []
    for round_index in range(EDIT_ROUNDS):
        text = edited if round_index % 2 == 0 else source
        seconds, result = _timed(lambda t=text: session.build({name: t}))
        assert result.kind == "incremental", (name, result.kind)
        edit_seconds.append(seconds)
    final = result.program

    identical = _image(final) == _image(
        build_program({name: source}).program)
    incr_s = statistics.median(edit_seconds)
    return {
        "name": name,
        "cold_ms": cold_s * 1000,
        "warm_ms": warm_s * 1000,
        "first_edit_ms": edit_seconds[0] * 1000,
        "incr_ms": incr_s * 1000,
        "incr_x": cold_s / incr_s if incr_s else float("inf"),
        "identical": identical,
    }


def render_table(rows):
    lines = [
        "incremental rebuild vs cold build, one BuildSession per workload",
        f"(median of {EDIT_ROUNDS} single-function body-edit rebuilds; "
        "'identical' = byte-equal to a cold build of the same source)",
        "",
        f"{'workload':12s} {'cold ms':>9s} {'warm ms':>9s} "
        f"{'1st edit':>9s} {'incr ms':>9s} {'speedup':>9s} {'identical':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row['name']:12s} {row['cold_ms']:9.2f} {row['warm_ms']:9.3f} "
            f"{row['first_edit_ms']:9.2f} {row['incr_ms']:9.2f} "
            f"{row['incr_x']:8.1f}x {'yes' if row['identical'] else 'NO':>10s}")
    return "\n".join(lines)


def test_incremental_rebuild_table(benchmark):
    """The headline artifact: >= 20x single-function incremental win."""
    names = selected_benchmarks()
    rows = benchmark.pedantic(
        lambda: [measure_workload(name) for name in names],
        rounds=1, iterations=1)
    table = render_table(rows)
    write_result("toolchain_incremental", table)
    assert all(row["identical"] for row in rows), table
    worst = min(row["incr_x"] for row in rows)
    assert worst >= 20.0, \
        f"worst incremental speedup {worst:.1f}x < 20x\n{table}"


def test_stage_breakdown(benchmark):
    from repro.core.instrument import instrument_items
    from repro.isa.assembler import assemble
    from repro.mir.codegen import generate
    from repro.mir.lowering import lower_unit
    from repro.tinyc.lexer import tokenize
    from repro.tinyc.parser import parse
    from repro.tinyc.typecheck import check
    from repro.toolchain import BUILTIN_PRELUDE

    text = BUILTIN_PRELUDE + workload("sjeng").source

    def pipeline():
        timings = {}
        start = time.perf_counter()
        tokenize(text)
        timings["lex"] = time.perf_counter() - start

        start = time.perf_counter()
        unit = parse(text, name="sjeng")
        timings["parse"] = time.perf_counter() - start

        start = time.perf_counter()
        checked = check(unit)
        timings["typecheck"] = time.perf_counter() - start

        start = time.perf_counter()
        mir_module = lower_unit(checked)
        timings["lower"] = time.perf_counter() - start

        start = time.perf_counter()
        raw = generate(mir_module, checked, arch="x64")
        timings["codegen"] = time.perf_counter() - start

        start = time.perf_counter()
        instrumented = instrument_items(raw)
        timings["instrument"] = time.perf_counter() - start

        start = time.perf_counter()
        assemble(instrumented.items, base=0x10000,
                 extern={name: 0x2000000 for raw_ in [raw]
                         for name in list(raw_.imports)
                         + list(raw_.strings)
                         + list(raw_.globals)})
        timings["assemble"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    total = sum(timings.values())
    lines = [f"{'stage':12s} {'ms':>8s} {'share':>7s}"]
    for stage, seconds in timings.items():
        lines.append(f"{stage:12s} {seconds * 1000:8.2f} "
                     f"{100 * seconds / total:6.1f}%")
    lines.append(f"{'total':12s} {total * 1000:8.2f}")
    write_result("toolchain_stages", "\n".join(lines))
    assert total < 5.0


def test_verifier_speed(benchmark):
    from repro.core.verifier import verify_module
    from repro.experiments import compiled
    module = compiled("sjeng", "x64", True).module
    report = benchmark(lambda: verify_module(module))
    assert report.stats["checked_branches"] > 0


# -- script entry point (CI build-smoke job) --------------------------------


def _quick(name="lbm"):
    import filecmp
    import tempfile

    from repro.tools.build import artifact_hash

    source = workload(name).source
    session = BuildSession()
    cold_s, _ = _timed(lambda: session.build({name: source}))
    warm_s, result = _timed(lambda: session.build({name: source}))
    twin = build_program({name: source})
    warm_x = cold_s / warm_s if warm_s else float("inf")

    digest = artifact_hash(result.program)
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for tag, program in (("a", result.program), ("b", twin.program)):
            path = Path(tmp) / f"{tag}.img"
            path.write_bytes(bytes(program.module.code)
                             + bytes(program.data.image))
            paths.append(path)
        cmp_identical = filecmp.cmp(*paths, shallow=False)

    print(f"{name}: cold {cold_s * 1000:.2f} ms, "
          f"warm {warm_s * 1000:.3f} ms ({warm_x:.0f}x), "
          f"artifact sha256 {digest[:16]}...")
    checks = [
        (result.kind == "warm", f"rebuild kind {result.kind!r} != 'warm'"),
        (warm_x >= 2.0, f"warm rebuild only {warm_x:.1f}x < 2x faster"),
        (cmp_identical, "independent builds differ under cmp"),
        (digest == artifact_hash(twin.program),
         "artifact hash differs across sessions"),
    ]
    failed = [message for ok, message in checks if not ok]
    for message in failed:
        print(f"FAIL: {message}")
    return 1 if failed else 0


def _main(argv):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: warm >= 2x cold + deterministic "
                             "artifact bytes")
    args = parser.parse_args(argv)
    if args.quick:
        return _quick()

    rows = [measure_workload(name) for name in selected_benchmarks()]
    table = render_table(rows)
    print(table)
    write_result("toolchain_incremental", table)
    worst = min(row["incr_x"] for row in rows)
    if not all(row["identical"] for row in rows) or worst < 20.0:
        print(f"FAIL: worst speedup {worst:.1f}x or image divergence")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
