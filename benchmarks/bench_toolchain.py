"""Toolchain pipeline benchmarks: per-stage cost of the compiler.

Not a paper artifact, but the reproduction's own engineering profile:
where the TinyC -> loaded-program pipeline spends its time, stage by
stage, on a mid-sized workload.  Useful when extending the compiler.
"""

import pytest

from benchmarks.conftest import write_result
from repro.workloads.spec import workload


@pytest.fixture(scope="module")
def source():
    return workload("sjeng").source


def test_stage_breakdown(benchmark, source):
    import time
    from repro.core.instrument import instrument_items
    from repro.isa.assembler import assemble
    from repro.mir.codegen import generate
    from repro.mir.lowering import lower_unit
    from repro.tinyc.lexer import tokenize
    from repro.tinyc.parser import parse
    from repro.tinyc.typecheck import check
    from repro.toolchain import BUILTIN_PRELUDE

    text = BUILTIN_PRELUDE + source

    def pipeline():
        timings = {}
        start = time.perf_counter()
        tokenize(text)
        timings["lex"] = time.perf_counter() - start

        start = time.perf_counter()
        unit = parse(text, name="sjeng")
        timings["parse"] = time.perf_counter() - start

        start = time.perf_counter()
        checked = check(unit)
        timings["typecheck"] = time.perf_counter() - start

        start = time.perf_counter()
        mir_module = lower_unit(checked)
        timings["lower"] = time.perf_counter() - start

        start = time.perf_counter()
        raw = generate(mir_module, checked, arch="x64")
        timings["codegen"] = time.perf_counter() - start

        start = time.perf_counter()
        instrumented = instrument_items(raw)
        timings["instrument"] = time.perf_counter() - start

        start = time.perf_counter()
        assemble(instrumented.items, base=0x10000,
                 extern={name: 0x2000000 for raw_ in [raw]
                         for name in list(raw_.imports)
                         + list(raw_.strings)
                         + list(raw_.globals)})
        timings["assemble"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    total = sum(timings.values())
    lines = [f"{'stage':12s} {'ms':>8s} {'share':>7s}"]
    for stage, seconds in timings.items():
        lines.append(f"{stage:12s} {seconds * 1000:8.2f} "
                     f"{100 * seconds / total:6.1f}%")
    lines.append(f"{'total':12s} {total * 1000:8.2f}")
    write_result("toolchain_stages", "\n".join(lines))
    assert total < 5.0


def test_full_compile_link(benchmark, source):
    from repro.toolchain import compile_and_link

    program = benchmark.pedantic(
        lambda: compile_and_link({"sjeng": source}, mcfi=True),
        rounds=2, iterations=1)
    benchmark.extra_info["code_bytes"] = len(program.module.code)
    benchmark.extra_info["branch_sites"] = \
        len(program.module.aux.branch_sites)


def test_verifier_speed(benchmark):
    from repro.core.verifier import verify_module
    from repro.experiments import compiled
    module = compiled("sjeng", "x64", True).module
    stats = benchmark(lambda: verify_module(module))
    assert stats["checked_branches"] > 0
