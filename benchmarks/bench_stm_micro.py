"""Sec. 8.1 micro-benchmark — check-transaction algorithms.

Paper's normalized execution times: MCFI 1, TML 2, RWL 29, Mutex 22.
The *ordering* (MCFI fastest; TML ~2x; the LOCK-based schemes an order
of magnitude worse, with RWL worst) is the reproducible claim; the
absolute lock penalties differ between x86 LOCK-prefixed RMWs and
Python locks (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.stm_baselines import ALGORITHMS, make_workload
from repro.experiments import stm_micro

PAPER = {"MCFI": 1, "TML": 2, "RWL": 29, "Mutex": 22}


def test_stm_micro_table(benchmark):
    ratios = benchmark.pedantic(
        lambda: stm_micro(iterations=150_000), rounds=1, iterations=1)
    lines = [f"{'algorithm':8s} {'normalized':>11s} {'paper':>7s}"]
    for name in ("MCFI", "TML", "RWL", "Mutex"):
        lines.append(f"{name:8s} {ratios[name]:11.2f} {PAPER[name]:7d}")
    write_result("stm_micro", "\n".join(lines))

    assert ratios["MCFI"] == 1.0
    assert 1.0 < ratios["TML"] < 4.0        # paper: 2
    assert ratios["Mutex"] > ratios["TML"]  # locks are much slower
    assert ratios["RWL"] > ratios["Mutex"]  # paper: RWL worst


@pytest.mark.parametrize("algorithm_cls", ALGORITHMS,
                         ids=[cls.name for cls in ALGORITHMS])
def test_check_transaction_speed(benchmark, algorithm_cls):
    """Direct pytest-benchmark timing of each algorithm's fast path."""
    bary, tary = make_workload(n_sites=64, n_targets=1024)
    algorithm = algorithm_cls(64, 1024, bary, tary)
    # a known-permitted pair (ECNs match by construction)
    site, target = 5, 5 % 16

    def checks():
        check = algorithm.check
        for _ in range(1000):
            check(site, target)

    benchmark(checks)
