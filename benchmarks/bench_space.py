"""Sec. 8.1 — space overhead.

Paper: "MCFI increases the static code size by 17% on the benchmarks.
During runtime it also requires extra memory as large as the code
region to store the Bary and Tary tables."
"""

from benchmarks.conftest import write_result
from repro.experiments import space_overhead
from repro.workloads.spec import BENCHMARKS


def test_space_table(benchmark):
    results = benchmark.pedantic(lambda: space_overhead(BENCHMARKS),
                                 rounds=1, iterations=1)
    lines = [f"{'benchmark':12s} {'native B':>10s} {'mcfi B':>10s} "
             f"{'increase':>9s} {'tary B':>10s} {'bary B':>8s}"]
    for name in BENCHMARKS:
        row = results[name]
        lines.append(
            f"{name:12s} {row.native_code_bytes:10d} "
            f"{row.mcfi_code_bytes:10d} {row.code_increase_pct:8.2f}% "
            f"{row.tary_bytes:10d} {row.bary_bytes:8d}")
    mean = sum(r.code_increase_pct for r in results.values()) / len(results)
    lines.append(f"{'average':12s} {'':10s} {'':10s} {mean:8.2f}%  "
                 f"(paper: ~17%)")
    write_result("space_overhead", "\n".join(lines))

    assert 3.0 < mean < 60.0
    for row in results.values():
        # Tary mirrors the code region one-to-one (4B ID per 4B code)
        assert row.tary_bytes == row.mcfi_code_bytes


def test_link_speed(benchmark):
    """Static linking time of one full workload + libc."""
    from repro.build import build_program
    from repro.workloads.spec import workload
    source = {"libquantum": workload("libquantum").source}
    program = benchmark.pedantic(
        lambda: build_program(source, mcfi=True).program,
        rounds=2, iterations=1)
    assert program.module.size > 0
