"""SimVM dispatch-plane throughput and conformance (PR 5 tentpole).

Two artifacts in one file:

* **Throughput** — interpreted instructions/sec of the table-driven
  block dispatcher (:mod:`repro.vm.dispatch`) against the original
  monolithic ``if/elif`` chain (kept verbatim as
  ``CPU.step_reference``).  The acceptance bar is a >= 1.5x geomean
  speedup; the measured table lands in
  ``benchmarks/results/vm_dispatch.txt``.

* **Conformance** — the dispatcher must be architecturally invisible:
  identical ``exit_code``/``output``/``cycles``/``instructions``/
  ``tx_checks`` on every workload.  Closure compilation, the decoded
  basic-block cache and check-sequence fusion may only change
  wall-clock time, never an observable.

Runnable three ways:

- under pytest (tier-1: ``python -m pytest benchmarks/bench_vm_dispatch.py``),
- ``bench_vm_dispatch.py --quick`` — CI smoke: subset conformance plus
  a single-workload speedup sanity check (no 1.5x gate, CI boxes are
  noisy),
- ``bench_vm_dispatch.py --conformance`` — conformance only, exits
  non-zero on the first divergence.
"""

import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script invocation (CI smoke job)
    _root = Path(__file__).resolve().parents[1]
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import pytest

from benchmarks.conftest import selected_benchmarks, write_result
from repro.experiments import compiled
from repro.runtime.runtime import Runtime

#: Workloads for the script-mode --quick smoke: one call-heavy (many
#: fused check sequences), one loop-heavy, one floating-point.
QUICK = ("perlbench", "libquantum", "lbm")

MAX_STEPS = 200_000_000


def _run(name: str, reference: bool):
    """Execute one workload; returns (RunResult, wall seconds)."""
    runtime = Runtime(compiled(name))
    cpu = runtime.main_cpu()
    if reference:
        # Instance attribute forces CPU.run() onto the original
        # per-instruction if/elif chain.
        cpu.step = cpu.step_reference
    start = time.perf_counter()
    result = runtime.run(max_steps=MAX_STEPS)
    elapsed = time.perf_counter() - start
    assert result.ok, f"{name}: {result.violation or result.fault}"
    return result, elapsed


def observables(result):
    return (result.exit_code, result.output, result.cycles,
            result.instructions, result.tx_checks)


def check_conformance(name: str):
    """Run ``name`` both ways; return (fast, ref, mismatches)."""
    fast, _ = _run(name, reference=False)
    ref, _ = _run(name, reference=True)
    mismatches = [
        field for field, a, b in zip(
            ("exit_code", "output", "cycles", "instructions", "tx_checks"),
            observables(fast), observables(ref))
        if a != b]
    return fast, ref, mismatches


def speedup_row(name: str):
    """Measure one workload; returns a result-table row dict."""
    ref, ref_s = _run(name, reference=True)
    fast, fast_s = _run(name, reference=False)
    assert observables(fast) == observables(ref), name
    return {
        "name": name,
        "instructions": ref.instructions,
        "ref_ips": ref.instructions / ref_s,
        "fast_ips": fast.instructions / fast_s,
        "speedup": ref_s / fast_s,
    }


def format_table(rows):
    lines = [f"{'benchmark':>12s} {'instrs':>10s} {'if/elif i/s':>12s} "
             f"{'dispatch i/s':>13s} {'speedup':>8s}"]
    product = 1.0
    for row in rows:
        product *= row["speedup"]
        lines.append(
            f"{row['name']:>12s} {row['instructions']:10d} "
            f"{row['ref_ips']:12.0f} {row['fast_ips']:13.0f} "
            f"{row['speedup']:7.2f}x")
    geomean = product ** (1.0 / len(rows))
    lines.append(f"{'geomean':>12s} {'':>10s} {'':>12s} {'':>13s} "
                 f"{geomean:7.2f}x")
    return "\n".join(lines), geomean


# -- pytest entry points ----------------------------------------------------------


@pytest.mark.parametrize("name", selected_benchmarks())
def test_dispatch_conformance(name):
    """Dispatch observables are bit-identical to the if/elif chain."""
    fast, ref, mismatches = check_conformance(name)
    assert not mismatches, (
        f"{name} diverged on {mismatches}: "
        f"dispatch={observables(fast)} reference={observables(ref)}")


def test_dispatch_speedup_table(benchmark):
    """>= 1.5x geomean interpreted-instructions/sec over the chain."""
    names = selected_benchmarks()

    def sweep():
        return [speedup_row(name) for name in names]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table, geomean = format_table(rows)
    write_result("vm_dispatch", table)
    benchmark.extra_info["geomean_speedup"] = round(geomean, 3)
    assert geomean >= 1.5, f"geomean speedup {geomean:.2f}x < 1.5x\n{table}"


# -- script entry point (CI smoke) ------------------------------------------------


def _main(argv):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="subset conformance + 1-workload speedup")
    parser.add_argument("--conformance", action="store_true",
                        help="conformance checks only")
    args = parser.parse_args(argv)

    names = QUICK if (args.quick or args.conformance) else \
        selected_benchmarks()
    failed = False
    for name in names:
        fast, ref, mismatches = check_conformance(name)
        if mismatches:
            failed = True
            print(f"FAIL {name}: diverged on {mismatches}")
            print(f"  dispatch : {observables(fast)}")
            print(f"  reference: {observables(ref)}")
        else:
            print(f"ok   {name}: {fast.instructions} instrs, "
                  f"cycles/tx_checks identical")
    if failed:
        return 1
    if args.conformance:
        return 0

    rows = [speedup_row(name) for name in
            (names[:1] if args.quick else names)]
    table, geomean = format_table(rows)
    print(table)
    if not args.quick:
        write_result("vm_dispatch", table)
        if geomean < 1.5:
            print(f"FAIL: geomean speedup {geomean:.2f}x < 1.5x")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
