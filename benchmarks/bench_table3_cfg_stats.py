"""Table 3 — CFG statistics: IBs / IBTs / EQCs, x86-32 and x86-64.

Always runs all twelve benchmarks on both architecture modes.  The
paper's shape claims, checked here:

* equivalence classes number in the tens-to-thousands (two to three
  orders of magnitude above coarse CFI's handful);
* x86-64 has *fewer* EQCs than x86-32 (tail-call optimization merges
  return classes);
* gcc dominates, lbm/mcf are smallest.
"""

from benchmarks.conftest import write_result
from repro.experiments import table3_cfg_stats
from repro.workloads.spec import BENCHMARKS, workload


def test_table3(benchmark):
    stats = benchmark.pedantic(table3_cfg_stats, rounds=1, iterations=1)
    lines = [f"{'benchmark':12s} "
             f"{'IBs32':>6s} {'IBTs32':>7s} {'EQCs32':>7s}   "
             f"{'IBs64':>6s} {'IBTs64':>7s} {'EQCs64':>7s}"]
    for name in BENCHMARKS:
        s32 = stats[(name, "x32")]
        s64 = stats[(name, "x64")]
        lines.append(
            f"{name:12s} {s32['IBs']:6d} {s32['IBTs']:7d} "
            f"{s32['EQCs']:7d}   {s64['IBs']:6d} {s64['IBTs']:7d} "
            f"{s64['EQCs']:7d}")
    lines.append("")
    lines.append("paper reference (x64): " + ", ".join(
        f"{name}={workload(name).paper_table3_x64}"
        for name in ("perlbench", "gcc", "lbm")))
    write_result("table3_cfg_stats", "\n".join(lines))

    eqcs64 = {name: stats[(name, "x64")]["EQCs"] for name in BENCHMARKS}
    assert eqcs64["gcc"] == max(eqcs64.values())
    # far above coarse-grained CFI's one-or-two classes
    assert all(value > 10 for value in eqcs64.values())
    # tail calls reduce classes on x64 for the dispatch-heavy codes
    fewer = sum(1 for name in BENCHMARKS
                if stats[(name, "x64")]["EQCs"] <
                stats[(name, "x32")]["EQCs"])
    assert fewer >= 6


def test_cfg_stats_speed(benchmark):
    from repro.cfg.generator import generate_cfg
    from repro.experiments import compiled
    aux = compiled("gcc", "x64", True).module.aux
    cfg = benchmark(lambda: generate_cfg(aux))
    assert cfg.stats()["EQCs"] > 10
