"""Sec. 8.3 — ROP gadget elimination.

Paper: "MCFI can eliminate 96.93%/95.75% of ROP gadgets on
x86-32/64" (counted with rp++).  Here a gadget survives only if its
start address is a permitted indirect-branch target under the installed
policy; the elimination rate lands in the same >90% band.
"""

from benchmarks.conftest import selected_benchmarks, write_result
from repro.experiments import gadget_elimination


def test_gadget_table(benchmark):
    names = selected_benchmarks()
    reports = benchmark.pedantic(
        lambda: gadget_elimination(names, depth=4), rounds=1,
        iterations=1)
    lines = [f"{'benchmark':12s} {'native uniq':>12s} "
             f"{'mcfi uniq':>10s} {'reachable':>10s} {'eliminated':>11s}"]
    for name in names:
        row = reports[name]
        lines.append(
            f"{name:12s} {row['native_unique']:12d} "
            f"{row['mcfi_unique']:10d} {row['mcfi_reachable']:10d} "
            f"{row['elimination_pct']:10.2f}%")
    mean = sum(r["elimination_pct"] for r in reports.values()) / len(reports)
    lines.append(f"{'average':12s} {'':12s} {'':10s} {'':10s} "
                 f"{mean:10.2f}%  (paper: 96.9/95.8%)")
    write_result("gadget_elimination", "\n".join(lines))

    assert mean > 90.0
    for row in reports.values():
        assert row["native_unique"] > 0


def test_gadget_scan_speed(benchmark):
    from repro.attacks.gadgets import find_gadgets
    from repro.experiments import compiled
    module = compiled("libquantum", "x64", False).module
    code = module.code[:8192]
    gadgets = benchmark.pedantic(
        lambda: find_gadgets(code, base=module.base, depth=4),
        rounds=2, iterations=1)
    benchmark.extra_info["gadgets_found"] = len(gadgets)
