"""Table 1 — C1 violations and false-positive elimination.

Always runs over all twelve benchmarks (analysis only, no VM).  The
reproduction matches the paper's rows exactly for the ten benchmarks
with small counts, and at documented scale (1/20, 1/10) for perlbench
and gcc.
"""

from benchmarks.conftest import write_result
from repro.experiments import table1_analysis
from repro.workloads.spec import BENCHMARKS, workload

COLUMNS = ("SLOC", "VBE", "UC", "DC", "MF", "SU", "NF", "VAE")


def test_table1(benchmark):
    reports = benchmark.pedantic(table1_analysis, rounds=1, iterations=1)
    lines = [f"{'benchmark':12s} " + " ".join(f"{c:>6s}" for c in COLUMNS)]
    for name in BENCHMARKS:
        row = reports[name].table1_row()
        lines.append(f"{name:12s} " +
                     " ".join(f"{row[c]:6d}" for c in COLUMNS))
        spec = workload(name)
        for column in ("VBE", "UC", "DC", "MF", "SU", "NF", "VAE"):
            assert row[column] == spec.expected_table1[column], (
                f"{name}.{column}")
    lines.append("")
    lines.append("paper reference (absolute counts; perlbench/gcc "
                 "reproduced at 1/20 and 1/10 scale):")
    for name in BENCHMARKS:
        paper = workload(name).paper_table1
        lines.append(f"{name:12s} " +
                     " ".join(f"{paper[c]:6d}" for c in COLUMNS))
    write_result("table1_c1_violations", "\n".join(lines))


def test_analyzer_speed(benchmark):
    """The analyzer is part of the toolchain; keep it fast."""
    source = workload("perlbench").source

    def analyze():
        from repro.analysis.analyzer import analyze_source
        return analyze_source(source, name="perlbench")

    report = benchmark(analyze)
    assert report.vbe == workload("perlbench").expected_table1["VBE"]
