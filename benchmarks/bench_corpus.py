"""Differential-corpus throughput and minimizer effectiveness.

Writes ``benchmarks/results/corpus_differential.txt``: programs/sec
through the full differential matrix, divergence counts by category
(zero unexplained is the ISSUE-10 gate), and minimizer shrink ratios.

The default run uses the pinned ``gen-smoke`` seeds; ``REPRO_FULL=1``
widens the throughput sample.
"""

import time

import pytest

from benchmarks.conftest import FULL, write_result
from repro.workloads.corpus import CorpusConfig, DifferentialHarness, \
    run_set
from repro.workloads.generate import GenConfig, generate
from repro.workloads.minimize import minimize


class TestCorpusDifferential:
    @pytest.fixture(scope="class")
    def campaign(self):
        limit = None if FULL else 8
        start = time.perf_counter()
        report = run_set("gen-smoke", limit=limit)
        seconds = time.perf_counter() - start
        return report, seconds

    @pytest.fixture(scope="class")
    def shrinks(self):
        """Minimizer shrink ratios on synthetic output-preserving
        predicates (the same machinery campaign triage uses)."""
        out = []
        for seed in (1001, 1004, 1007):
            program = generate(seed, GenConfig.quick())

            def predicate(candidate):
                try:
                    return len(candidate.evaluate().output) > 0
                except Exception:  # noqa: BLE001
                    return False

            result = minimize(program, predicate, rounds=2)
            out.append((seed, result))
        return out

    def test_zero_unexplained_divergences(self, campaign):
        report, _ = campaign
        open_findings = [f for f in report.findings()
                         if f.classification == "open"]
        assert open_findings == []

    def test_throughput_and_write_artifact(self, campaign, shrinks):
        report, seconds = campaign
        members = len(report.reports)
        cells = sum(r.cells for r in report.reports)
        by_cat = report.by_category()
        lines = [
            "differential corpus harness (gen-smoke"
            + ("" if FULL else f", first {members}") + ")",
            f"programs        : {members}",
            f"matrix cells    : {cells}",
            f"wall seconds    : {seconds:.2f}",
            f"programs/sec    : {members / seconds:.2f}",
            f"cells/sec       : {cells / seconds:.2f}",
            "",
            "divergences by category:",
        ]
        if by_cat:
            for category, count in sorted(by_cat.items()):
                lines.append(f"  {category:16s} {count}")
        else:
            lines.append("  (none)")
        lines += ["", "minimizer shrink ratios "
                      "(output-preserving predicate):"]
        for seed, result in shrinks:
            lines.append(
                f"  gen{seed}: {result.original_lines} -> "
                f"{result.minimized_lines} lines "
                f"({100 * result.shrink_ratio:.0f}%, "
                f"{result.attempts} attempts)")
        write_result("corpus_differential", "\n".join(lines))
        assert members / seconds > 0

    def test_minimizer_hits_25_line_bar(self, shrinks):
        for _, result in shrinks:
            assert result.minimized_lines <= 25

    def test_one_member_benchmark(self, benchmark):
        harness = DifferentialHarness(CorpusConfig())
        benchmark.pedantic(
            lambda: harness.run_member("gen1000", quick=True),
            rounds=1, iterations=1)
