"""CFG sharpening from the points-to pass (PR 4).

For every workload, compile base vs ``optimize=True`` (the
function-pointer points-to pass: singleton devirtualization + target
hints) and quantify what the pass buys:

* equivalence-class count (EQCs) and the median/max class size;
* AIR at six decimals plus the mean resolved-target-set size (the
  four-decimal AIR of Sec. 8.3 hides these deltas);
* dynamic TxCheck counts (Bary reads executed by the VM) before/after
  — devirtualized sites stop paying the Fig. 4 check transaction.

Both builds must verify and run byte-identically: the pass is an
optimization, not a policy change.  Full dynamic runs for all twelve
workloads with ``REPRO_FULL=1``; the default subset keeps CI short.
"""

import statistics

from benchmarks.conftest import selected_benchmarks, write_result
from repro.analysis.dataflow import devirtualize_module
from repro.baselines.policies import mcfi_policy
from repro.cfg.generator import generate_cfg
from repro.core.verifier import verify_module
from repro.metrics.air import air_of_policy
from repro.metrics.cfgstats import profile
from repro.mir.lowering import lower_unit
from repro.runtime.runtime import Runtime
from repro.build import build_program
from repro.toolchain import frontend
from repro.workloads.spec import BENCHMARKS, workload


def _static_row(program):
    aux = program.module.aux
    cfg = generate_cfg(aux)
    prof = profile(aux, cfg)
    air = air_of_policy(mcfi_policy(aux), len(program.module.code))
    return {
        "eqcs": prof.eqcs,
        "class_med": prof.class_size_spread[1],
        "class_max": prof.class_size_spread[2],
        "air": air.air,
        "mean_targets": air.mean_targets,
        "ibs": prof.ibs,
        "total_targets": sum(len(t)
                             for t in cfg.branch_targets.values()),
    }


def _collect(names, dynamic):
    rows = {}
    for name in names:
        sources = {name: workload(name).source}
        base = build_program(sources, mcfi=True).program
        opt = build_program(sources, mcfi=True,
                            devirtualize=True).program
        verify_module(opt.module)   # rewritten modules still verify

        devirt = len(devirtualize_module(
            lower_unit(frontend(workload(name).source,
                                name=name))).devirtualized)

        row = {"devirt": devirt,
               "base": _static_row(base), "opt": _static_row(opt)}
        if name in dynamic:
            res_base = Runtime(base).run()
            res_opt = Runtime(opt).run()
            assert res_base.output == res_opt.output, name
            assert res_base.exit_code == res_opt.exit_code, name
            row["tx_base"] = res_base.tx_checks
            row["tx_opt"] = res_opt.tx_checks
        rows[name] = row
    return rows


def test_cfg_precision(benchmark, benchmarks_list):
    dynamic = set(benchmarks_list)
    rows = benchmark.pedantic(
        lambda: _collect(BENCHMARKS, dynamic), rounds=1, iterations=1)

    lines = [f"{'benchmark':12s} {'devirt':>6s} "
             f"{'EQCs':>9s} {'cls med/max':>11s} "
             f"{'AIR':>19s} {'mean tgts':>13s} {'TxChecks':>15s}"]
    for name in BENCHMARKS:
        row = rows[name]
        base, opt = row["base"], row["opt"]
        tx = (f"{row['tx_base']:>7d}->{row['tx_opt']:<7d}"
              if "tx_base" in row else f"{'-':>15s}")
        lines.append(
            f"{name:12s} {row['devirt']:6d} "
            f"{base['eqcs']:4d}->{opt['eqcs']:<4d} "
            f"{base['class_med']:2d}/{base['class_max']:<2d}->"
            f"{opt['class_med']:2d}/{opt['class_max']:<2d} "
            f"{base['air']:.6f}->{opt['air']:.6f} "
            f"{base['mean_targets']:5.2f}->{opt['mean_targets']:<5.2f} "
            f"{tx}")
    devirted = [n for n in BENCHMARKS if rows[n]["devirt"] > 0]
    lines.append("")
    lines.append(f"workloads with >=1 devirtualized site: "
                 f"{len(devirted)}/12 ({', '.join(devirted)})")
    write_result("cfg_precision", "\n".join(lines))

    # the paper-level claims this PR rides on
    assert len(devirted) >= 3
    for name in devirted:
        base, opt = rows[name]["base"], rows[name]["opt"]
        assert opt["eqcs"] >= base["eqcs"] - 1  # never merges classes
        # devirtualized sites leave the indirect-branch population and
        # hints only shrink sets: the attack surface strictly narrows
        # (the per-site *mean* may rise — the removed sites are the
        # small ones)
        assert opt["ibs"] < base["ibs"]
        assert opt["total_targets"] < base["total_targets"]
    # dynamic checks never increase; strictly fewer where devirtualized
    for name in dynamic:
        row = rows[name]
        assert row["tx_opt"] <= row["tx_base"]
        if row["devirt"]:
            assert row["tx_opt"] < row["tx_base"]


def test_devirtualization_speed(benchmark):
    source = workload("bzip2").source
    checked = frontend(source, name="bzip2")

    def run():
        return devirtualize_module(lower_unit(checked))

    report = benchmark(run)
    assert len(report.devirtualized) >= 1


def test_class_size_median_sanity():
    """Median/max class sizes come from the same spread the ablation
    bench reports — sanity-check the two agree for one workload."""
    program = build_program(
        {"bzip2": workload("bzip2").source}, mcfi=True).program
    aux = program.module.aux
    prof = profile(aux, generate_cfg(aux))
    sizes = {}
    for ecn in generate_cfg(aux).tary_ecns.values():
        sizes[ecn] = sizes.get(ecn, 0) + 1
    values = sorted(sizes.values())
    assert prof.class_size_spread[2] == values[-1]
    assert prof.class_size_spread[1] == int(statistics.median(values))
