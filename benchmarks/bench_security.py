"""Sec. 8.3 — the security case studies.

Paper: the GnuPG CVE-2006-6235 analogue — a hijacked function pointer
redirected to execve — "may still be possible under coarse-grained CFI,
but not fine-grained CFI"; MCFI blocks it because the types do not
match.  Return hijacking to a function entry is blocked by both.
"""

from benchmarks.conftest import write_result
from repro.experiments import security_case_study


def test_security_matrix(benchmark):
    matrix = benchmark.pedantic(security_case_study, rounds=1,
                                iterations=1)
    lines = [f"{'attack':18s} {'scheme':8s} {'hijacked':>9s} "
             f"{'blocked':>8s}"]
    for attack, outcomes in matrix.items():
        for scheme, (hijacked, blocked) in outcomes.items():
            lines.append(f"{attack:18s} {scheme:8s} "
                         f"{str(hijacked):>9s} {str(blocked):>8s}")
    write_result("security_case_study", "\n".join(lines))

    fptr = matrix["fptr-to-execve"]
    assert fptr["native"] == (True, False)
    assert fptr["binCFI"] == (True, False)   # coarse CFI fails
    assert fptr["MCFI"] == (False, True)     # type matching blocks
    ret = matrix["return-to-entry"]
    assert ret["native"] == (True, False)
    assert ret["MCFI"] == (False, True)


def test_attack_run_speed(benchmark):
    from repro.attacks.hijack import fptr_to_execve
    outcomes = benchmark.pedantic(
        lambda: fptr_to_execve(schemes=("MCFI",)), rounds=1, iterations=1)
    assert outcomes["MCFI"].blocked
