"""Multi-tenant table-service scaling (PR 6 tentpole).

Measures the :mod:`repro.service` subsystem — sharded Bary/Tary tables
plus the batched :class:`~repro.service.coalescer.UpdateCoalescer` —
against the paper's global-lock, one-transaction-per-dlopen baseline,
on the same seeded scheduler with the same tenant tasks:

* **Latency** — update latency percentiles (scheduler ticks, logical
  and deterministic) at 10/100(/1000 with ``REPRO_FULL=1``) tenants;
  acceptance: at 100 tenants the sharded+batched service is >= 3x
  faster (mean) than the baseline.
* **Integrity** — zero TxCheck escalations in every configuration, and
  the live tables decode identically to a serial one-transaction-per-
  request replay of the committed log (batching never changes *what*
  is installed, only *when*).
* **Determinism** — same seed, same parameters => byte-identical
  coalescer round trace and identical report.

The measured table lands in ``benchmarks/results/service_scaling.txt``.

Runnable two ways:

- under pytest (tier-1: ``python -m pytest benchmarks/bench_service.py``),
- ``bench_service.py --quick`` — the CI ``service-smoke`` job: a
  10-tenant run asserting coalescing factor >= 2x, seeded-trace byte
  identity across two runs, zero escalations, and serial-replay
  equality.
"""

import sys
from pathlib import Path

if __package__ in (None, ""):  # script invocation (CI smoke job)
    _root = Path(__file__).resolve().parents[1]
    for entry in (str(_root), str(_root / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from benchmarks.conftest import FULL, write_result
from repro.service import ServiceLoop
from repro.tools.service import render_scaling_table, scaling_rows

SEED = 0

#: Tenant counts for the pytest sweep; the 1000-tenant point (sharded
#: only — the baseline's full-table rewrites are quadratic and take
#: minutes there) joins under REPRO_FULL=1.
COUNTS = (10, 100, 1000) if FULL else (10, 100)

#: The CI smoke configuration: 10 tenants on 4 shards with a batching
#: window long enough that whole bursts ride one round.  Coalescing
#: tops out at tenants/shards requests per transaction, so the smoke
#: uses 4 shards to make the >= 2x bar meaningful at 10 tenants.
QUICK = dict(tenants=10, shards=4, seed=SEED, churn=2, window=10)


def _speedup(rows):
    by = {(r["tenants"], r["mode"]): r for r in rows}
    sharded = by[(100, "sharded")]["latency_mean"]
    baseline = by[(100, "global")]["latency_mean"]
    return baseline / sharded if sharded else 0.0


def test_service_scaling_table(benchmark):
    """The headline artifact: >= 3x mean-latency win at 100 tenants."""
    rows = benchmark.pedantic(
        lambda: scaling_rows(COUNTS, SEED), rounds=1, iterations=1)
    table = render_scaling_table(rows, SEED)
    write_result("service_scaling", table)
    speedup = _speedup(rows)
    benchmark.extra_info["speedup_100"] = round(speedup, 1)
    assert all(row["escalations"] == 0 for row in rows), table
    assert all(row["failed"] == 0 and row["rejected"] == 0
               for row in rows), table
    assert speedup >= 3.0, \
        f"100-tenant speedup {speedup:.1f}x < 3.0x\n{table}"


def test_service_observables_match_serial_replay():
    """Batched+sharded execution is equivalent to serial execution."""
    loop = ServiceLoop(tenants=50, shards=8, seed=SEED, churn=2)
    report = loop.run()
    assert report.escalations == 0
    assert report.checks == report.checks_allowed
    assert loop.sharded.decoded_state() == loop.replay_serial()
    # After full churn (every dlopen matched by a dlclose) the tables
    # must be empty again.
    state = loop.sharded.decoded_state()
    assert state == {"tary": {}, "bary": {}}


def test_service_trace_byte_identical():
    """Same seed + parameters => byte-identical round trace."""
    first = ServiceLoop(**QUICK)
    second = ServiceLoop(**QUICK)
    first.run()
    second.run()
    assert first.coalescer.trace_jsonl() == second.coalescer.trace_jsonl()
    assert first.report.to_dict() == second.report.to_dict()


def test_service_quick_coalescing_floor():
    """The CI smoke bar: coalescing factor >= 2x at 10 tenants."""
    report = ServiceLoop(**QUICK).run()
    assert report.coalescing_factor >= 2.0, report.to_dict()
    assert report.escalations == 0


def test_dlopen_churn_compile_latency():
    """The PR 8 service cell: each dlopen churn event re-compiles the
    tenant's (edited) module, legacy vs session.  The legacy path pays
    a cold ``build_program`` per event; a per-tenant
    :class:`repro.build.BuildSession` turns the steady state into
    incremental single-unit rebuilds — the compile must stop dominating
    the churn budget."""
    from statistics import mean

    from repro.service.tenancy import churn_compile_latencies

    tenants, rounds = 2, 3
    legacy = churn_compile_latencies(tenants, rounds, legacy=True)
    session = churn_compile_latencies(tenants, rounds)

    assert legacy["kinds"] == {"cold": tenants * rounds}
    assert session["kinds"].get("cold") == tenants
    assert (session["kinds"].get("incremental", 0)
            + session["kinds"].get("warm", 0)) == tenants * (rounds - 1)

    # Steady state: every event after the fleet's first (cold) round.
    legacy_mean = mean(legacy["seconds"][tenants:])
    steady_mean = mean(session["seconds"][tenants:])
    speedup = legacy_mean / steady_mean if steady_mean else float("inf")
    lines = [
        f"dlopen churn compile latency, {tenants} tenants x "
        f"{rounds} rounds (steady state excludes the cold round)",
        f"legacy  (cold build_program/event): "
        f"{legacy_mean * 1000:8.2f} ms/event",
        f"session (incremental BuildSession): "
        f"{steady_mean * 1000:8.2f} ms/event",
        f"speedup: {speedup:.1f}x",
    ]
    write_result("service_churn_compile", "\n".join(lines))
    assert speedup >= 5.0, "\n".join(lines)


# -- script entry point (CI service-smoke job) ------------------------------


def _main(argv):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 10 tenants, coalescing >= 2x, "
                             "trace byte-identity")
    args = parser.parse_args(argv)

    if args.quick:
        loop = ServiceLoop(**QUICK)
        twin = ServiceLoop(**QUICK)
        report = loop.run()
        twin.run()
        print(f"10 tenants / 4 shards: coalescing "
              f"{report.coalescing_factor:.2f}x, "
              f"p50 {report.latency_p50}, p99 {report.latency_p99}, "
              f"escalations {report.escalations}")
        checks = [
            (report.coalescing_factor >= 2.0,
             f"coalescing {report.coalescing_factor:.2f}x < 2x"),
            (report.escalations == 0,
             f"{report.escalations} TxCheck escalations"),
            (loop.coalescer.trace_jsonl() == twin.coalescer.trace_jsonl(),
             "seeded trace not byte-identical across runs"),
            (loop.sharded.decoded_state() == loop.replay_serial(),
             "observables diverge from serial replay"),
        ]
        failed = [message for ok, message in checks if not ok]
        for message in failed:
            print(f"FAIL: {message}")
        return 1 if failed else 0

    rows = scaling_rows(COUNTS, SEED)
    table = render_scaling_table(rows, SEED)
    print(table)
    write_result("service_scaling", table)
    speedup = _speedup(rows)
    if any(row["escalations"] for row in rows) or speedup < 3.0:
        print(f"FAIL: speedup {speedup:.1f}x or escalations present")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
