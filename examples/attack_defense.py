#!/usr/bin/env python3
"""Attack & defense matrix: MCFI vs coarse-grained CFI vs no protection.

Reproduces the paper's Sec. 8.3 security discussion end-to-end:

* **fptr-to-execve** (the GnuPG CVE-2006-6235 analogue): a concurrent
  attacker overwrites a message-handler function pointer with the
  address of an execve-like function.  Coarse CFI permits it (execve is
  a function entry); MCFI's type matching does not.
* **return-to-entry**: a stack smash redirects a return to a function
  entry.  Both CFI granularities block it; native execution is owned.
* **ROP pivot**: the attacker aims a return at a gadget that starts in
  the middle of a real instruction -- only possible at all because the
  ISA is variable-length encoded.

Run:  python examples/attack_defense.py
"""

from repro.attacks.hijack import fptr_to_execve, return_to_secret
from repro.attacks.rop import compare_schemes


def show(title, outcomes) -> None:
    print(f"\n=== {title} ===")
    print(f"{'scheme':10s} {'hijacked':>9s} {'blocked':>8s}  detail")
    for scheme, outcome in outcomes.items():
        print(f"{scheme:10s} {str(outcome.hijacked):>9s} "
              f"{str(outcome.blocked):>8s}  {outcome.detail[:60]}")


def main() -> None:
    show("function pointer -> execve (GnuPG CVE analogue)",
         fptr_to_execve())
    print("   -> binCFI fails: execve is a function entry, so the coarse")
    print("      'any entry' class admits it.  MCFI halts: the handler's")
    print("      type void(int) does not match execve's void(char*).")

    show("return address -> function entry", return_to_secret())
    print("   -> both CFI schemes keep returns inside the return-site")
    print("      class; native execution runs the attacker's target.")

    print("\n=== ROP pivot into a mid-instruction gadget ===")
    for outcome in compare_schemes(seed=3):
        print(f"{outcome.scheme:10s} pivoted={outcome.pivoted} "
              f"blocked={outcome.blocked} "
              f"gadget@{outcome.gadget_address:#x} "
              f"mid-instruction={outcome.misaligned_gadget}")
    print("   -> MCFI's Tary table has no valid ID at unaligned or")
    print("      non-target addresses, so the pivot halts at the check.")


if __name__ == "__main__":
    main()
