"""Runnable examples for the MCFI reproduction."""
