#!/usr/bin/env python3
"""Dynamic linking: the paper's headline capability.

A multithreaded program dlopens a separately compiled library while a
worker thread keeps executing indirect branches.  The dynamic linker:

1. loads and patches the library (writable, then sealed to R+X),
2. regenerates the CFG from the merged auxiliary type information,
3. runs an *update transaction* that installs the new ID tables and
   rewrites the GOT -- concurrently with the worker's check
   transactions.

Run:  python examples/dynamic_linking.py
"""

from repro.linker.dynamic_linker import DynamicLinker
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_and_link, compile_module

MAIN_SOURCE = {"main": r"""
long transform(long x);          /* provided by the plugin, via PLT */

long work_done;

void worker(long rounds) {
    long i;
    long acc = 0;
    for (i = 0; i < rounds; i++) {
        acc += classify((int)(i & 7));   /* jump-table dispatch */
        sched_yield();
    }
    work_done = acc;
}

int classify(int x) {
    switch (x) {
        case 0: return 1;
        case 1: return 2;
        case 2: return 4;
        case 3: return 8;
        default: return 0;
    }
}

int main(void) {
    long handle;
    thread_spawn(worker, 300);

    print_str("dlopen...\n");
    handle = dlopen("mathlib");
    if (handle == 0) {
        print_str("dlopen failed\n");
        return 1;
    }

    /* call through the PLT (target installed by the update tx) */
    print_str("transform(10) = ");
    print_int(transform(10));
    print_char('\n');

    /* and through a dlsym'd pointer, checked by type matching */
    {
        long sym = dlsym(handle, "transform");
        long (*f)(long) = (long (*)(long))sym;
        print_str("via dlsym     = ");
        print_int(f(11));
        print_char('\n');
    }
    return 0;
}
"""}

LIB_SOURCE = r"""
long transform(long x) {
    return x * x + 1;
}
"""


def main() -> None:
    program = compile_and_link(MAIN_SOURCE, mcfi=True,
                               allow_unresolved=["transform"])
    runtime = Runtime(program)
    linker = DynamicLinker(runtime, verify=True)
    linker.register("mathlib", compile_module(LIB_SOURCE, name="mathlib"))

    before = runtime.cfg.stats()
    print(f"CFG before dlopen: {before}")
    print(f"ID-table version : {runtime.id_tables.version}")

    result = runtime.run_scheduled(seed=11, burst=4)

    print("\n--- program output ---")
    print(result.output.decode(), end="")
    print("----------------------\n")
    after = runtime.cfg.stats()
    print(f"CFG after dlopen : {after} "
          f"(+{after['IBs'] - before['IBs']} branches, "
          f"+{after['IBTs'] - before['IBTs']} targets)")
    print(f"ID-table version : {runtime.id_tables.version} "
          f"(bumped by the update transaction)")
    print(f"exit code        : {result.exit_code}   "
          f"ok={result.ok}")
    lib = linker.loaded[1]
    print(f"library loaded at {lib.module.base:#x}, "
          f"exports {list(lib.exports)}")


if __name__ == "__main__":
    main()
