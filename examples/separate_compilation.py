#!/usr/bin/env python3
"""Separate compilation: the property the paper is named for.

Each module is compiled and *instrumented in isolation* — no knowledge
of any other module — then linked.  Classic CFI cannot do this because
its ECNs are embedded in code bytes and must be globally unique; MCFI's
IDs live in runtime tables, so instrument-once-link-anywhere works.

The same instrumented ``mathlib`` module is linked into two different
programs, and the combined CFGs differ — "the combined module enforces
a CFG that is a combination of the individual modules' CFGs".

Run:  python examples/separate_compilation.py
"""

from repro.cfg.generator import generate_cfg
from repro.core.instrument import instrument_items
from repro.core.verifier import verify_module
from repro.linker.static_linker import link
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_module
from repro.workloads.libc import LIBC_SOURCE

MATHLIB = r"""
long poly(long x) { return x * x + 3 * x + 1; }
long twice(long (*f)(long), long x) { return f(x) + f(x + 1); }
"""

APP_A = r"""
long poly(long x);
long twice(long (*f)(long), long x);
long shift(long x) { return x + 100; }
int main(void) {
    print_str("A: ");
    print_int(twice(poly, 2) + twice(shift, 1));
    print_char('\n');
    return 0;
}
"""

APP_B = r"""
long poly(long x);
long twice(long (*f)(long), long x);
long negate(long x) { return -x; }
long scale(long x) { return 10 * x; }
int main(void) {
    print_str("B: ");
    print_int(twice(negate, 5) + twice(scale, 5) + poly(1));
    print_char('\n');
    return 0;
}
"""


def main() -> None:
    # Compile each module independently.  Note: instrumenting mathlib
    # requires nothing from app A, app B, or libc.
    mathlib = compile_module(MATHLIB, name="mathlib")
    libc = compile_module(LIBC_SOURCE, name="libc")
    app_a = compile_module(APP_A, name="app_a")
    app_b = compile_module(APP_B, name="app_b")

    standalone = instrument_items(mathlib)
    print(f"mathlib instrumented in isolation: "
          f"{len(standalone.sites)} branch sites, "
          f"{sum(1 for _ in standalone.items)} asm items")

    # Link the SAME mathlib into two different programs.
    for app, name in ((app_a, "A"), (app_b, "B")):
        program = link([app, mathlib, libc], mcfi=True)
        verify_module(program.module)      # modular verification
        cfg = generate_cfg(program.module.aux)
        result = Runtime(program).run()
        taken = sorted(f.name for f in
                       program.module.aux.functions.values()
                       if f.address_taken and f.module != "libc")
        print(f"\nprogram {name}: output={result.output!r} "
              f"exit={result.exit_code}")
        print(f"  CFG {cfg.stats()}  address-taken={taken}")
        # twice()'s indirect call targets exactly the type-matched,
        # address-taken functions of THIS link -- the combined CFG.
        icall = next(s for s in program.module.aux.branch_sites
                     if s.kind == "icall" and s.fn == "twice")
        targets = sorted(
            fname for fname, f in program.module.aux.functions.items()
            if f.entry in cfg.branch_targets[icall.site])
        print(f"  twice()'s indirect call may target: {targets}")


if __name__ == "__main__":
    main()
