#!/usr/bin/env python3
"""The Sec. 6 porting workflow: analyzer-guided source fixing.

The paper's process for making C code compatible with type-matching
CFG generation: run the analyzer, triage the remaining violations
(K1 vs K2), and fix true K1 cases with equivalently-typed wrapper
functions — their gcc splay-tree example.  This example replays that
workflow on a miniature of the same code:

1. the *legacy* source initializes a key-comparison pointer with
   ``strcmp`` (wrong type) — the analyzer reports a K1 needing a fix,
   and under MCFI the program halts at the comparator call;
2. the *fixed* source adds the paper's wrapper — the analyzer still
   sees the (now benign) history, and the program runs.

Run:  python examples/porting_workflow.py
"""

from repro.analysis.analyzer import analyze_source
from repro.analysis.report import classification_detail, fix_guidance
from repro.toolchain import compile_and_run

LEGACY = r"""
/* A generic splay-tree-ish container with a comparator pointer,
   initialized with a function of the WRONG type (gcc's actual bug). */

typedef int (*keycmp)(unsigned long, unsigned long);

int str_like_cmp(char *a, char *b) {
    return (int)(strlen(a) - strlen(b));
}

keycmp compare;

long lookup(unsigned long a, unsigned long b) {
    if (compare(a, b) <= 0) { return 1; }
    return 0;
}

int main(void) {
    compare = (keycmp)str_like_cmp;   /* K1: incompatible types */
    print_int(lookup((unsigned long)"xx", (unsigned long)"yyy"));
    return 0;
}
"""

FIXED = r"""
typedef int (*keycmp)(unsigned long, unsigned long);

int str_like_cmp(char *a, char *b) {
    return (int)(strlen(a) - strlen(b));
}

/* the paper's fix: a wrapper with the pointer's exact type */
int str_like_cmp_wrap(unsigned long a, unsigned long b) {
    return str_like_cmp((char *)a, (char *)b);
}

keycmp compare;

long lookup(unsigned long a, unsigned long b) {
    if (compare(a, b) <= 0) { return 1; }
    return 0;
}

int main(void) {
    compare = str_like_cmp_wrap;
    print_int(lookup((unsigned long)"xx", (unsigned long)"yyy"));
    return 0;
}
"""


def main() -> None:
    print("=== step 1: analyze the legacy source ===")
    report = analyze_source(LEGACY, name="legacy")
    print(f"VBE={report.vbe}  VAE={report.vae}  "
          f"K1={report.k1} (of which {report.k1_fixed} need fixes)  "
          f"K2={report.k2}")
    print(classification_detail(report))
    for line in fix_guidance(report):
        print("fix:", line)

    print("\n=== step 2: the legacy program under MCFI ===")
    result = compile_and_run({"legacy": LEGACY}, mcfi=True)
    print(f"outcome: {result.violation or result.output}")
    print("(the comparator call halts: no address-taken function "
          "matches the pointer's type)")

    print("\n=== step 3: apply the wrapper fix and re-run ===")
    fixed_report = analyze_source(FIXED, name="fixed")
    print(f"analyzer after fix: K1 cases needing fixes = "
          f"{fixed_report.k1_fixed}")
    result = compile_and_run({"fixed": FIXED}, mcfi=True)
    print(f"outcome: output={result.output!r} exit={result.exit_code} "
          f"ok={result.ok}")
    print("\nThis is the Table 2 story: 6 lines for perlbench, ~30 for "
          "gcc, 1 for\nlibquantum — and every K2 case needed nothing.")


if __name__ == "__main__":
    main()
