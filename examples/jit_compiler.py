#!/usr/bin/env python3
"""JIT code installation under MCFI — the paper's "extreme test".

Sec. 8.1: "A rather extreme test for whether MCFI's transactions scale
in a parallel environment is in a Just-In-Time compilation environment,
where code is generated and installed on-the-fly, and as a result, ID
tables need to be updated frequently.  However, our implementation has
not covered a JIT environment yet."  This example covers it.

A guest interpreter profiles its hottest opcodes and asks the runtime
to JIT-compile specialized handlers.  Each installation flows through
the full pipeline — compile, instrument, *verify*, seal W^X, merge
auxiliary info, regenerate the CFG, publish via an update transaction —
while the installed handlers are immediately callable through
type-checked function pointers.  A handler of the wrong type is
rejected by the very first call.

Run:  python examples/jit_compiler.py
"""

from repro.runtime.jit import JitEngine
from repro.runtime.runtime import Runtime
from repro.toolchain import compile_and_link

GUEST = {"main": r"""
/* A tiny calculator VM that JIT-specializes its operations. */

long interp_add(long a, long b) { return a + b; }
long interp_mul(long a, long b) { return a * b; }

int main(void) {
    long (*ops[4])(long, long);
    long total = 0;
    long i;

    /* start interpreted */
    ops[0] = interp_add;
    ops[1] = interp_mul;

    /* ... then JIT-compile specialized versions at runtime */
    ops[2] = (long (*)(long, long))jit_compile(
        "long jit_fma(long a, long b) { return a * b + a; }", "jit_fma");
    ops[3] = (long (*)(long, long))jit_compile(
        "long jit_mix(long a, long b) { return (a ^ b) + (a & b); }",
        "jit_mix");
    if (ops[2] == 0 || ops[3] == 0) {
        print_str("jit failed\n");
        return 1;
    }

    for (i = 0; i < 16; i++) {
        total += ops[i & 3]((long)i, (long)(i + 2));
    }
    print_str("total ");
    print_int(total);
    print_char('\n');

    /* JIT spraying does not help an attacker: installing a function of
       a DIFFERENT type and calling it through this table halts. */
    ops[0] = (long (*)(long, long))jit_compile(
        "long sprayed(char *cmd) { return 0; }", "sprayed");
    print_str("calling type-confused jitted code...\n");
    ops[0](1, 2);
    print_str("UNREACHABLE\n");
    return 0;
}
"""}


def main() -> None:
    program = compile_and_link(GUEST, mcfi=True)
    runtime = Runtime(program)
    engine = JitEngine(runtime, verify=True)

    result = runtime.run()
    print("--- guest output ---")
    print(result.output.decode(), end="")
    print("--------------------")
    print(f"JIT installs : {engine.stats.installs} "
          f"({engine.stats.compiled_bytes} bytes of generated code, "
          f"each verified before sealing)")
    print(f"table version: {runtime.id_tables.version} "
          f"(one update transaction per installation)")
    print(f"outcome      : {result.violation}")
    print("The sprayed handler has type long(char*); the dispatch table "
          "has type\nlong(long,long) — the check transaction refuses "
          "the transfer.")


if __name__ == "__main__":
    main()
